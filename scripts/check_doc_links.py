"""Docs link check: every relative link in the repo's markdown resolves.

Scans README.md and docs/**/*.md for markdown links/images and fails
(exit 1) when a relative target does not exist in the checkout.
External links (http/https/mailto) and pure in-page anchors are
skipped — this is a rot check for file references, not a crawler.

Run from anywhere:  python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files() -> list[Path]:
    docs = [REPO / "README.md"]
    docs.extend(sorted((REPO / "docs").glob("**/*.md")))
    return [d for d in docs if d.exists()]


def check(path: Path) -> list[str]:
    problems = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            candidate = target.split("#", 1)[0]
            if not candidate:
                continue
            resolved = (path.parent / candidate).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{number}: broken link -> {target}"
                )
    return problems


def main() -> int:
    files = doc_files()
    problems = [p for f in files for p in check(f)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""LRUCache unit tests: eviction order, stats, degenerate sizes."""

import pytest

from repro.cache import LRUCache
from repro.errors import ReproError


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_overwrite_updates_value(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1.0)
        cache.put("a", 2.0)
        assert cache.get("a") == 2.0
        assert len(cache) == 1


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # refresh a; b becomes stalest
        cache.put("c", 3)   # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_peek_does_not_refresh(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")     # no recency refresh: a stays stalest
        cache.put("c", 3)   # evicts a
        assert "a" not in cache and "b" in cache

    def test_eviction_counted(self):
        cache = LRUCache(maxsize=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats().evictions == 1


class TestStatsAndEdges:
    def test_stats_and_hit_rate(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_empty_cache_hit_rate_is_zero(self):
        assert LRUCache().stats().hit_rate == 0.0

    def test_peek_touches_no_counters(self):
        cache = LRUCache(maxsize=4)
        cache.peek("a")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_zero_maxsize_disables_storage(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert "a" not in cache
        assert cache.get("a") is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ReproError):
            LRUCache(maxsize=-1)

    def test_iteration_yields_keys(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert list(cache) == ["a", "b"]


class TestTTLCache:
    """TTLCache: LRU semantics plus deterministic-clock expiry."""

    def _clocked(self, ttl=10.0, maxsize=4):
        from repro.cache import TTLCache

        now = [0.0]
        cache = TTLCache(maxsize=maxsize, ttl_seconds=ttl, clock=lambda: now[0])
        return cache, now

    def test_roundtrip_before_expiry(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put("a", 1.0)
        now[0] = 9.9
        assert cache.get("a") == 1.0
        assert "a" in cache

    def test_entry_expires(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put("a", 1.0)
        now[0] = 10.0
        assert cache.get("a") is None
        assert "a" not in cache
        assert cache.expirations == 1
        assert len(cache) == 0  # reaped on access

    def test_put_refreshes_deadline(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put("a", 1.0)
        now[0] = 8.0
        cache.put("a", 2.0)  # new deadline: 18.0
        now[0] = 12.0
        assert cache.get("a") == 2.0

    def test_peek_ignores_expired(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put("a", 1.0)
        now[0] = 11.0
        assert cache.peek("a") is None

    def test_no_ttl_means_pure_lru(self):
        from repro.cache import TTLCache

        cache = TTLCache(maxsize=2, ttl_seconds=None, clock=lambda: 1e12)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts b (LRU), not by time
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_purge_expired(self):
        cache, now = self._clocked(ttl=5.0, maxsize=8)
        for i in range(3):
            cache.put(i, i)
        now[0] = 3.0
        cache.put("young", 1)
        now[0] = 6.0  # the first three are expired, "young" is not
        assert cache.purge_expired() == 3
        assert len(cache) == 1 and "young" in cache

    def test_size_bound_still_applies(self):
        cache, now = self._clocked(ttl=100.0, maxsize=2)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 2
        assert cache.stats().evictions == 3

    def test_invalid_params_rejected(self):
        from repro.cache import TTLCache

        with pytest.raises(ReproError):
            TTLCache(maxsize=-1)
        with pytest.raises(ReproError):
            TTLCache(ttl_seconds=0.0)

"""Unit and property tests for q-error metrics (paper Table 1 rows)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.metrics import (
    MIN_CARDINALITY,
    Counter,
    Gauge,
    LatencySummary,
    percentile,
    QErrorSummary,
    format_table,
    geometric_mean_qerror,
    qerror,
    qerrors,
    relative_error,
    summarize_estimates,
    summarize_qerrors,
)

positive = st.floats(min_value=1e-3, max_value=1e12, allow_nan=False)


class TestQError:
    def test_exact_estimate_is_one(self):
        assert qerror(100.0, 100.0) == 1.0

    def test_overestimate(self):
        assert qerror(200.0, 100.0) == pytest.approx(2.0)

    def test_underestimate(self):
        assert qerror(50.0, 100.0) == pytest.approx(2.0)

    def test_zero_truth_clamped(self):
        # truth clamps to MIN_CARDINALITY, so q = estimate.
        assert qerror(10.0, 0.0) == pytest.approx(10.0)

    def test_zero_estimate_clamped(self):
        assert qerror(0.0, 10.0) == pytest.approx(10.0)

    def test_negative_estimate_clamped(self):
        assert qerror(-5.0, 10.0) == pytest.approx(10.0)

    @given(positive, positive)
    def test_symmetry(self, a, b):
        assert qerror(a, b) == pytest.approx(qerror(b, a), rel=1e-9)

    @given(positive, positive)
    def test_at_least_one(self, a, b):
        assert qerror(a, b) >= 1.0

    @given(positive)
    def test_identity(self, a):
        assert qerror(a, a) == pytest.approx(1.0)

    @given(positive, st.floats(min_value=1.0, max_value=1e6))
    def test_scaling_factor(self, truth, factor):
        truth = max(truth, MIN_CARDINALITY)
        assert qerror(truth * factor, truth) == pytest.approx(factor, rel=1e-9)


class TestQErrorsVector:
    def test_matches_scalar(self):
        est = [10.0, 20.0, 5.0]
        tru = [10.0, 10.0, 10.0]
        expected = [qerror(e, t) for e, t in zip(est, tru)]
        assert np.allclose(qerrors(est, tru), expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(ReproError):
            qerrors([1.0, 2.0], [1.0])


class TestSummary:
    def test_summary_fields(self):
        errors = np.arange(1, 101, dtype=float)  # 1..100
        summary = summarize_qerrors(errors)
        assert summary.median == pytest.approx(50.5)
        assert summary.max == 100.0
        assert summary.mean == pytest.approx(50.5)
        assert summary.count == 100
        assert summary.p90 >= summary.median
        assert summary.p99 >= summary.p95 >= summary.p90

    def test_row_order_matches_paper(self):
        summary = summarize_qerrors([1.0, 2.0, 3.0])
        assert QErrorSummary.COLUMNS == ("median", "90th", "95th", "99th", "max", "mean")
        assert summary.row()[0] == summary.median
        assert summary.row()[-1] == summary.mean

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            summarize_qerrors([])

    def test_below_one_raises(self):
        with pytest.raises(ReproError):
            summarize_qerrors([0.5])

    def test_as_dict(self):
        summary = summarize_qerrors([2.0, 4.0])
        d = summary.as_dict()
        assert d["median"] == pytest.approx(3.0)
        assert d["max"] == 4.0

    def test_summarize_estimates(self):
        summary = summarize_estimates([10.0, 40.0], [10.0, 10.0])
        assert summary.max == pytest.approx(4.0)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=50))
    def test_percentile_ordering_property(self, errors):
        summary = summarize_qerrors(errors)
        assert 1.0 <= summary.median <= summary.p90 + 1e-9
        assert summary.p90 <= summary.p95 <= summary.p99 <= summary.max + 1e-9
        assert summary.mean <= summary.max + 1e-9

    @given(st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=50))
    def test_mean_is_strictly_contained_in_sample_range(self, errors):
        # Strict containment, zero tolerance: np.mean's pairwise
        # summation can land 1 ULP outside [min, max] (the old code
        # clamped to hide it); the exact-fallback mean cannot.
        summary = summarize_qerrors(errors)
        assert min(errors) <= summary.mean <= summary.max

    def test_mean_containment_ulp_regression(self):
        # np.mean([3.3] * 6) lands one ULP above the sample max, so
        # this exact input failed strict containment before the
        # exact-mean fix (the old code clamped it instead).
        assert float(np.mean(np.array([3.3] * 6))) > 3.3  # the trap exists
        summary = summarize_qerrors([3.3] * 6)
        assert summary.mean == 3.3
        assert summary.max == 3.3


class TestFormatting:
    def test_format_table_contains_all_rows(self):
        rows = {
            "Deep Sketch": summarize_qerrors([1.5, 2.0]),
            "PostgreSQL": summarize_qerrors([10.0, 20.0]),
        }
        text = format_table(rows)
        assert "Deep Sketch" in text
        assert "PostgreSQL" in text
        assert "median" in text

    def test_str_is_single_line(self):
        assert "\n" not in str(summarize_qerrors([1.0, 2.0]))


class TestAuxMetrics:
    def test_relative_error_signs(self):
        assert relative_error(150.0, 100.0) == pytest.approx(0.5)
        assert relative_error(50.0, 100.0) == pytest.approx(-0.5)

    def test_geometric_mean(self):
        assert geometric_mean_qerror([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty_raises(self):
        with pytest.raises(ReproError):
            geometric_mean_qerror([])


class TestServingTelemetry:
    """The primitives the serving engine wires its stats() through."""

    def test_counter_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_is_thread_safe(self):
        import threading

        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_gauge_set_and_adjust(self):
        gauge = Gauge()
        gauge.set(7)
        assert gauge.value == 7
        gauge.adjust(-3)
        assert gauge.value == 4

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile([], 0.99) == 0.0

    def test_latency_summary_shape_and_values(self):
        summary = LatencySummary(window=16)
        for v in (0.010, 0.020, 0.030, 0.040):
            summary.observe(v)
        s = summary.summary()
        assert s["count"] == 4.0
        assert s["p50"] == 0.020
        assert s["max"] == 0.040
        assert s["p99"] == 0.040
        assert len(summary) == 4

    def test_latency_summary_window_is_bounded(self):
        summary = LatencySummary(window=4)
        for v in range(10):
            summary.observe(float(v))
        s = summary.summary()
        assert s["count"] == 4.0
        assert s["p50"] == 7.0  # only the newest four remain

    def test_latency_summary_empty(self):
        s = LatencySummary().summary()
        assert s == {"count": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_latency_summary_rejects_bad_window(self):
        with pytest.raises(ReproError):
            LatencySummary(window=0)

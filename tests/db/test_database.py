"""Database catalog and FK-graph tests."""

import pytest

from repro.db import ForeignKey
from repro.errors import SchemaError


class TestCatalog:
    def test_table_lookup(self, tiny_db):
        assert tiny_db.table("title").n_rows == 6
        with pytest.raises(SchemaError):
            tiny_db.table("nope")

    def test_duplicate_table_rejected(self, tiny_db):
        with pytest.raises(SchemaError):
            tiny_db.add_table(tiny_db.table("title"))

    def test_table_names_sorted(self, tiny_db):
        assert tiny_db.table_names() == ["movie_info", "movie_keyword", "title"]

    def test_total_rows(self, tiny_db):
        assert tiny_db.total_rows() == 6 + 8 + 5

    def test_fk_unknown_table_rejected(self, tiny_db):
        with pytest.raises(SchemaError):
            tiny_db.add_foreign_key(ForeignKey("ghost", "x", "title", "id"))

    def test_fk_unknown_column_rejected(self, tiny_db):
        with pytest.raises(SchemaError):
            tiny_db.add_foreign_key(
                ForeignKey("movie_keyword", "nope", "title", "id")
            )


class TestJoinTopology:
    def test_schema_graph_edges(self, tiny_db):
        graph = tiny_db.schema_graph()
        assert graph.has_edge("movie_keyword", "title")
        assert graph.has_edge("movie_info", "title")
        assert not graph.has_edge("movie_keyword", "movie_info")

    def test_join_edge_between(self, tiny_db):
        fk = tiny_db.join_edge_between("movie_keyword", "title")
        assert fk.column == "movie_id"
        assert fk.ref_column == "id"
        # order of arguments must not matter
        fk2 = tiny_db.join_edge_between("title", "movie_keyword")
        assert fk2 == fk

    def test_join_edge_missing(self, tiny_db):
        with pytest.raises(SchemaError):
            tiny_db.join_edge_between("movie_keyword", "movie_info")

    def test_ambiguous_join_rejected(self, tiny_db):
        tiny_db.add_foreign_key(
            ForeignKey("movie_keyword", "keyword_id", "title", "id")
        )
        with pytest.raises(SchemaError):
            tiny_db.join_edge_between("movie_keyword", "title")

    def test_imdb_fk_catalog(self, imdb_small):
        # every JOB-light fact table links to title
        for fact in ("movie_keyword", "movie_info", "movie_info_idx",
                     "movie_companies", "cast_info"):
            fk = imdb_small.join_edge_between(fact, "title")
            assert fk.ref_column == "id"

"""Schema declaration and Table integrity tests."""

import numpy as np
import pytest

from repro.db import Column, ColumnSchema, DType, Table, TableSchema
from repro.errors import SchemaError


def make_table(ids, years=None, year_valid=None):
    schema = TableSchema(
        "t",
        [
            ColumnSchema("id", DType.INT64),
            ColumnSchema("year", DType.INT64, nullable=True),
        ],
        primary_key="id",
    )
    years = years if years is not None else list(range(len(ids)))
    return Table(
        schema,
        {
            "id": Column.from_ints("id", ids),
            "year": Column.from_ints("year", years, valid=year_valid),
        },
    )


class TestTableSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnSchema("a", DType.INT64)] * 2)

    def test_bad_identifier_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("has space", [])
        with pytest.raises(SchemaError):
            ColumnSchema("1bad", DType.INT64)

    def test_pk_must_be_declared(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnSchema("a", DType.INT64)], primary_key="b")

    def test_column_lookup(self):
        schema = TableSchema("t", [ColumnSchema("a", DType.INT64)])
        assert schema.column("a").dtype is DType.INT64
        assert schema.has_column("a")
        assert not schema.has_column("z")
        with pytest.raises(SchemaError):
            schema.column("z")


class TestTable:
    def test_valid_table(self):
        t = make_table([1, 2, 3])
        assert t.n_rows == 3
        assert len(t) == 3

    def test_missing_column_rejected(self):
        schema = TableSchema("t", [ColumnSchema("id", DType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {})

    def test_undeclared_column_rejected(self):
        schema = TableSchema("t", [ColumnSchema("id", DType.INT64)])
        with pytest.raises(SchemaError):
            Table(
                schema,
                {
                    "id": Column.from_ints("id", [1]),
                    "extra": Column.from_ints("extra", [1]),
                },
            )

    def test_row_count_mismatch_rejected(self):
        schema = TableSchema(
            "t", [ColumnSchema("a", DType.INT64), ColumnSchema("b", DType.INT64)]
        )
        with pytest.raises(SchemaError):
            Table(
                schema,
                {
                    "a": Column.from_ints("a", [1, 2]),
                    "b": Column.from_ints("b", [1]),
                },
            )

    def test_dtype_mismatch_rejected(self):
        schema = TableSchema("t", [ColumnSchema("a", DType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {"a": Column.from_floats("a", [1.0])})

    def test_null_in_non_nullable_rejected(self):
        schema = TableSchema("t", [ColumnSchema("a", DType.INT64)])
        with pytest.raises(SchemaError):
            Table(
                schema,
                {"a": Column.from_ints("a", [1], valid=np.array([False]))},
            )

    def test_duplicate_pk_rejected(self):
        with pytest.raises(SchemaError):
            make_table([1, 1, 2])

    def test_null_pk_rejected(self):
        schema = TableSchema(
            "t", [ColumnSchema("id", DType.INT64, nullable=True)], primary_key="id"
        )
        with pytest.raises(SchemaError):
            Table(
                schema,
                {"id": Column.from_ints("id", [1, 2], valid=np.array([True, False]))},
            )

    def test_sample_size_capped(self):
        t = make_table(list(range(10)))
        assert t.sample(100, rng=0).n_rows == 10
        assert t.sample(4, rng=0).n_rows == 4

    def test_sample_rows_come_from_table(self):
        t = make_table(list(range(100)))
        sample = t.sample(10, rng=1)
        assert set(sample.column("id").values) <= set(range(100))
        # without replacement: all distinct
        assert len(set(sample.column("id").values)) == 10

    def test_take_row_decode(self):
        t = make_table([1, 2, 3], years=[10, 20, 30])
        sub = t.take(np.array([2]))
        assert sub.row(0) == {"id": 3, "year": 30}

    def test_null_decode(self):
        t = make_table([1], years=[99], year_valid=np.array([False]))
        assert t.row(0)["year"] is None

"""COUNT(*) executor tests: known answers, cross-checks, and properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import (
    Column,
    ColumnSchema,
    Database,
    DType,
    ForeignKey,
    Table,
    TableSchema,
    count_factorized,
    count_hash_join,
    execute_count,
)
from repro.errors import QueryError
from repro.workload import JoinEdge, Predicate, Query, TableRef

from tests.helpers import brute_force_count


def q(tables, joins=(), predicates=()):
    return Query(tables=tuple(tables), joins=tuple(joins), predicates=tuple(predicates))


class TestSingleTable:
    def test_unfiltered(self, tiny_db):
        query = q([TableRef("title", "t")])
        assert execute_count(tiny_db, query) == 6

    def test_filtered(self, tiny_db):
        query = q([TableRef("title", "t")], predicates=[Predicate("t", "year", "=", 2005)])
        assert execute_count(tiny_db, query) == 2

    def test_null_excluded_from_range(self, tiny_db):
        query = q([TableRef("title", "t")], predicates=[Predicate("t", "year", ">", 0)])
        assert execute_count(tiny_db, query) == 5  # row 5 has NULL year

    def test_empty_result(self, tiny_db):
        query = q([TableRef("title", "t")], predicates=[Predicate("t", "year", ">", 9999)])
        assert execute_count(tiny_db, query) == 0


class TestJoins:
    def test_two_way(self, tiny_db):
        query = q(
            [TableRef("title", "t"), TableRef("movie_keyword", "mk")],
            joins=[JoinEdge("mk", "movie_id", "t", "id")],
        )
        assert execute_count(tiny_db, query) == 8

    def test_two_way_filtered(self, tiny_db):
        query = q(
            [TableRef("title", "t"), TableRef("movie_keyword", "mk")],
            joins=[JoinEdge("mk", "movie_id", "t", "id")],
            predicates=[Predicate("mk", "keyword_id", "=", 7)],
        )
        # keyword 7 rows: movies 1, 2, 3 -> 3 join rows
        assert execute_count(tiny_db, query) == 3

    def test_star_three_way(self, tiny_db):
        query = q(
            [
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("movie_info", "mi"),
            ],
            joins=[
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("mi", "movie_id", "t", "id"),
            ],
        )
        # per-movie: mk counts {1:2,2:1,3:2,4:1,6:2}, mi counts {2:1,3:2,4:1,5:1}
        # product summed over movies: 2*0+1*1+2*2+1*1+0+0 = 6
        assert execute_count(tiny_db, query) == 6
        assert brute_force_count(tiny_db, query) == 6

    def test_cross_product_components(self, tiny_db):
        query = q([TableRef("title", "t"), TableRef("movie_info", "mi")])
        assert execute_count(tiny_db, query) == 6 * 5

    def test_methods_agree(self, tiny_db):
        query = q(
            [TableRef("title", "t"), TableRef("movie_keyword", "mk")],
            joins=[JoinEdge("mk", "movie_id", "t", "id")],
            predicates=[Predicate("t", "year", ">", 2001)],
        )
        assert count_factorized(tiny_db, query) == count_hash_join(tiny_db, query)

    def test_explicit_methods(self, tiny_db):
        query = q([TableRef("title", "t")])
        assert execute_count(tiny_db, query, method="factorized") == 6
        assert execute_count(tiny_db, query, method="hash") == 6
        with pytest.raises(QueryError):
            execute_count(tiny_db, query, method="quantum")

    def test_validation_unknown_column(self, tiny_db):
        query = q(
            [TableRef("title", "t")], predicates=[Predicate("t", "ghost", "=", 1)]
        )
        with pytest.raises(QueryError):
            execute_count(tiny_db, query)

    def test_validation_unknown_table(self, tiny_db):
        query = q([TableRef("ghost", "g")])
        with pytest.raises(QueryError):
            execute_count(tiny_db, query)


class TestNullJoinKeys:
    def test_null_keys_never_join(self):
        db = Database("nulls")
        left = Table(
            TableSchema(
                "left_t",
                [ColumnSchema("k", DType.INT64, nullable=True)],
            ),
            {
                "k": Column.from_ints(
                    "k", [1, 1, 0], valid=np.array([True, True, False])
                )
            },
        )
        right = Table(
            TableSchema(
                "right_t",
                [ColumnSchema("k", DType.INT64, nullable=True)],
            ),
            {
                "k": Column.from_ints(
                    "k", [1, 0], valid=np.array([True, False])
                )
            },
        )
        db.add_table(left)
        db.add_table(right)
        query = q(
            [TableRef("left_t", "a"), TableRef("right_t", "b")],
            joins=[JoinEdge("a", "k", "b", "k")],
        )
        # Only the two valid 1s on the left match the single valid 1 right.
        assert execute_count(db, query) == 2
        assert count_hash_join(db, query) == 2


class TestCyclicJoins:
    @pytest.fixture
    def triangle_db(self):
        """Three tables joined in a cycle a-b, b-c, a-c."""
        db = Database("tri")
        for name in ("ta", "tb", "tc"):
            db.add_table(
                Table(
                    TableSchema(
                        name,
                        [
                            ColumnSchema("x", DType.INT64),
                            ColumnSchema("y", DType.INT64),
                        ],
                    ),
                    {
                        "x": Column.from_ints("x", [1, 1, 2, 3]),
                        "y": Column.from_ints("y", [1, 2, 2, 3]),
                    },
                )
            )
        return db

    def test_cycle_falls_back_to_hash(self, triangle_db):
        query = q(
            [TableRef("ta", "a"), TableRef("tb", "b"), TableRef("tc", "c")],
            joins=[
                JoinEdge("a", "x", "b", "x"),
                JoinEdge("b", "y", "c", "y"),
                JoinEdge("a", "y", "c", "x"),
            ],
        )
        expected = brute_force_count(triangle_db, query)
        assert execute_count(triangle_db, query) == expected
        with pytest.raises(QueryError):
            count_factorized(triangle_db, query)

    def test_multi_edge_composite_join(self, triangle_db):
        query = q(
            [TableRef("ta", "a"), TableRef("tb", "b")],
            joins=[JoinEdge("a", "x", "b", "x"), JoinEdge("a", "y", "b", "y")],
        )
        expected = brute_force_count(triangle_db, query)
        assert execute_count(triangle_db, query) == expected
        assert count_factorized(triangle_db, query) == expected


# ----------------------------------------------------------------------
# property: factorized == hash join == brute force on random tiny inputs
# ----------------------------------------------------------------------


@st.composite
def random_star_instances(draw):
    """A random 3-table star database plus a random query over it."""
    n_dim = draw(st.integers(min_value=1, max_value=6))
    fact_a = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n_dim + 2),  # fk (may dangle)
                st.integers(min_value=0, max_value=3),          # attr
            ),
            max_size=10,
        )
    )
    fact_b = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n_dim + 2),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=10,
        )
    )
    dim_attr = draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=n_dim, max_size=n_dim)
    )
    predicates = []
    for alias, column in (("d", "attr"), ("a", "attr"), ("b", "attr")):
        if draw(st.booleans()):
            predicates.append(
                Predicate(
                    alias,
                    column,
                    draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"])),
                    draw(st.integers(min_value=0, max_value=3)),
                )
            )
    n_joined = draw(st.integers(min_value=0, max_value=2))
    return n_dim, fact_a, fact_b, dim_attr, predicates, n_joined


@settings(max_examples=60, deadline=None)
@given(random_star_instances())
def test_executors_agree_with_brute_force(instance):
    n_dim, fact_a, fact_b, dim_attr, predicates, n_joined = instance

    db = Database("prop")
    db.add_table(
        Table(
            TableSchema(
                "dim",
                [ColumnSchema("id", DType.INT64), ColumnSchema("attr", DType.INT64)],
                primary_key="id",
            ),
            {
                "id": Column.from_ints("id", range(1, n_dim + 1)),
                "attr": Column.from_ints("attr", dim_attr),
            },
        )
    )
    for name, rows in (("fact_a", fact_a), ("fact_b", fact_b)):
        db.add_table(
            Table(
                TableSchema(
                    name,
                    [ColumnSchema("fk", DType.INT64), ColumnSchema("attr", DType.INT64)],
                ),
                {
                    "fk": Column.from_ints("fk", [r[0] for r in rows]),
                    "attr": Column.from_ints("attr", [r[1] for r in rows]),
                },
            )
        )

    aliases = {"d": "dim", "a": "fact_a", "b": "fact_b"}
    used = ["d"] + (["a"] if n_joined >= 1 else []) + (["b"] if n_joined >= 2 else [])
    tables = [TableRef(aliases[al], al) for al in used]
    joins = [JoinEdge(al, "fk", "d", "id") for al in used if al != "d"]
    preds = [p for p in predicates if p.alias in used]
    query = Query(tables=tuple(tables), joins=tuple(joins), predicates=tuple(preds))

    expected = brute_force_count(db, query)
    assert count_factorized(db, query) == expected
    assert count_hash_join(db, query) == expected
    assert execute_count(db, query) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_imdb_query_methods_agree(seed):
    """Factorized and hash executors agree on generated IMDb queries."""
    # Uses a module-level cached small IMDb to keep the property fast.
    global _PROP_DB
    try:
        db = _PROP_DB
    except NameError:
        from repro.datasets import ImdbConfig, generate_imdb

        db = _PROP_DB = generate_imdb(ImdbConfig(scale=0.05, seed=3))
    from repro.workload import TrainingQueryGenerator, spec_for_imdb

    generator = TrainingQueryGenerator(db, spec_for_imdb(), seed=seed)
    query = generator.draw()
    assert count_factorized(db, query) == count_hash_join(db, query)

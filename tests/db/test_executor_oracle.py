"""Executor oracle cross-checks on randomized join graphs.

The exact executor is the reproduction's ground-truth labeler (its
counts train every sketch), so before any speedup work it gets pinned
down three ways on randomized small instances:

* ``count_factorized`` (acyclic only) vs the row-by-row brute force;
* ``count_hash_join`` (general) vs the brute force, on both acyclic
  *star/chain* graphs and *cyclic* (triangle) graphs;
* ``execute_count``'s auto dispatch vs both.

Instances are tiny (a few rows per table) so the brute-force cross
product stays cheap while still exercising NULL join keys, empty
filters, dangling foreign keys, and duplicate join values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import (
    Column,
    ColumnSchema,
    Database,
    DType,
    Table,
    TableSchema,
    count_factorized,
    count_hash_join,
    execute_count,
)
from repro.errors import QueryError
from repro.workload import JoinEdge, Predicate, Query, TableRef

from tests.helpers import brute_force_count

# ----------------------------------------------------------------------
# randomized instance builders
# ----------------------------------------------------------------------

#: Join-key values are drawn from a small domain (plus NULLs) so joins
#: produce real matches, dangles, and duplicates in every run.
_key_values = st.one_of(st.none(), st.integers(min_value=0, max_value=3))
_attr_values = st.integers(min_value=0, max_value=2)


def _int_column(name, values):
    valid = np.array([v is not None for v in values], dtype=bool)
    data = np.array([v if v is not None else 0 for v in values], dtype=np.int64)
    return Column(name, DType.INT64, data, valid)


def _table(name, columns: dict[str, list]) -> Table:
    schema = TableSchema(
        name,
        [ColumnSchema(col, DType.INT64, nullable=True) for col in columns],
    )
    return Table(schema, {col: _int_column(col, vals) for col, vals in columns.items()})


@st.composite
def star_instances(draw):
    """Fact table joining 1-3 dimension tables on separate key columns."""
    n_dims = draw(st.integers(min_value=1, max_value=3))
    n_fact = draw(st.integers(min_value=0, max_value=6))
    db = Database("star")

    fact_cols = {"a": draw(st.lists(_attr_values, min_size=n_fact, max_size=n_fact))}
    joins, tables = [], [TableRef("fact", "f")]
    for d in range(n_dims):
        key_col = f"k{d}"
        fact_cols[key_col] = draw(
            st.lists(_key_values, min_size=n_fact, max_size=n_fact)
        )
        n_dim = draw(st.integers(min_value=0, max_value=5))
        db.add_table(
            _table(
                f"dim{d}",
                {
                    "id": draw(st.lists(_key_values, min_size=n_dim, max_size=n_dim)),
                    "a": draw(st.lists(_attr_values, min_size=n_dim, max_size=n_dim)),
                },
            )
        )
        alias = f"d{d}"
        tables.append(TableRef(f"dim{d}", alias))
        joins.append(JoinEdge("f", key_col, alias, "id"))
    db.add_table(_table("fact", fact_cols))

    predicates = []
    if draw(st.booleans()):
        predicates.append(Predicate("f", "a", draw(st.sampled_from(["=", ">"])), 1))
    if draw(st.booleans()):
        predicates.append(Predicate("d0", "a", "=", draw(_attr_values)))
    query = Query(tables=tuple(tables), joins=tuple(joins), predicates=tuple(predicates))
    return db, query


@st.composite
def chain_instances(draw):
    """a -> b -> c chain: count messages must pass through b."""
    sizes = [draw(st.integers(min_value=0, max_value=5)) for _ in range(3)]
    db = Database("chain")
    db.add_table(
        _table("ta", {"id": draw(st.lists(_key_values, min_size=sizes[0], max_size=sizes[0]))})
    )
    db.add_table(
        _table(
            "tb",
            {
                "a_id": draw(st.lists(_key_values, min_size=sizes[1], max_size=sizes[1])),
                "id": draw(st.lists(_key_values, min_size=sizes[1], max_size=sizes[1])),
            },
        )
    )
    db.add_table(
        _table(
            "tc",
            {
                "b_id": draw(st.lists(_key_values, min_size=sizes[2], max_size=sizes[2])),
                "a": draw(st.lists(_attr_values, min_size=sizes[2], max_size=sizes[2])),
            },
        )
    )
    predicates = []
    if draw(st.booleans()):
        predicates.append(Predicate("c", "a", "<", 2))
    query = Query(
        tables=(TableRef("ta", "a"), TableRef("tb", "b"), TableRef("tc", "c")),
        joins=(JoinEdge("a", "id", "b", "a_id"), JoinEdge("b", "id", "c", "b_id")),
        predicates=tuple(predicates),
    )
    return db, query


@st.composite
def triangle_instances(draw):
    """A cyclic 3-clique: out of count_factorized's reach by design."""
    db = Database("tri")
    tables = []
    for name in ("x", "y", "z"):
        n = draw(st.integers(min_value=0, max_value=5))
        db.add_table(
            _table(
                f"t{name}",
                {
                    "u": draw(st.lists(_key_values, min_size=n, max_size=n)),
                    "v": draw(st.lists(_key_values, min_size=n, max_size=n)),
                },
            )
        )
        tables.append(TableRef(f"t{name}", name))
    query = Query(
        tables=tuple(tables),
        joins=(
            JoinEdge("x", "u", "y", "u"),
            JoinEdge("y", "v", "z", "u"),
            JoinEdge("x", "v", "z", "v"),
        ),
    )
    return db, query


# ----------------------------------------------------------------------
# cross-checks
# ----------------------------------------------------------------------


class TestAcyclicOracle:
    @settings(max_examples=60, deadline=None)
    @given(instance=star_instances())
    def test_star_three_way_agreement(self, instance):
        db, query = instance
        truth = brute_force_count(db, query)
        assert count_factorized(db, query) == truth
        assert count_hash_join(db, query) == truth
        assert execute_count(db, query) == truth

    @settings(max_examples=40, deadline=None)
    @given(instance=chain_instances())
    def test_chain_three_way_agreement(self, instance):
        db, query = instance
        truth = brute_force_count(db, query)
        assert count_factorized(db, query) == truth
        assert count_hash_join(db, query) == truth
        assert execute_count(db, query) == truth


class TestCyclicOracle:
    @settings(max_examples=40, deadline=None)
    @given(instance=triangle_instances())
    def test_triangle_hash_join_matches_brute_force(self, instance):
        db, query = instance
        truth = brute_force_count(db, query)
        assert count_hash_join(db, query) == truth
        assert execute_count(db, query) == truth  # auto falls back to hash

    @settings(max_examples=10, deadline=None)
    @given(instance=triangle_instances())
    def test_factorized_refuses_cycles(self, instance):
        db, query = instance
        with pytest.raises(QueryError):
            count_factorized(db, query)


class TestDisconnectedOracle:
    @settings(max_examples=30, deadline=None)
    @given(
        na=st.integers(min_value=0, max_value=4),
        nb=st.integers(min_value=0, max_value=4),
        data=st.data(),
    )
    def test_cross_product_multiplies(self, na, nb, data):
        db = Database("cross")
        db.add_table(
            _table("ta", {"a": data.draw(st.lists(_attr_values, min_size=na, max_size=na))})
        )
        db.add_table(
            _table("tb", {"a": data.draw(st.lists(_attr_values, min_size=nb, max_size=nb))})
        )
        query = Query(
            tables=(TableRef("ta", "a"), TableRef("tb", "b")),
            predicates=(Predicate("a", "a", ">", 0),),
        )
        truth = brute_force_count(db, query)
        assert count_factorized(db, query) == truth
        assert count_hash_join(db, query) == truth
        assert execute_count(db, query) == truth

"""ANALYZE statistics tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Column, analyze_column, analyze_database, analyze_table
from repro.errors import SchemaError


class TestAnalyzeColumn:
    def test_basic_facts(self):
        col = Column.from_ints("x", [1, 1, 1, 2, 2, 3])
        stats = analyze_column(col)
        assert stats.n_rows == 6
        assert stats.n_distinct == 3
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0
        assert stats.null_frac == 0.0

    def test_mcv_ordering(self):
        col = Column.from_ints("x", [5] * 10 + [7] * 5 + [9] * 2 + [1])
        stats = analyze_column(col, mcv_size=2)
        assert stats.mcv_values.tolist() == [5.0, 7.0]
        assert stats.mcv_freqs[0] == pytest.approx(10 / 18)

    def test_singletons_excluded_from_mcv(self):
        # Values occurring once are not "most common" on non-unique data.
        col = Column.from_ints("x", [5, 5, 1, 2, 3])
        stats = analyze_column(col, mcv_size=3)
        assert 5.0 in stats.mcv_values
        assert 1.0 not in stats.mcv_values

    def test_null_fraction(self):
        col = Column.from_ints(
            "x", [1, 2, 3, 4], valid=np.array([True, True, False, False])
        )
        stats = analyze_column(col)
        assert stats.null_frac == pytest.approx(0.5)
        assert stats.n_distinct == 2

    def test_all_null(self):
        col = Column.from_ints("x", [1, 2], valid=np.array([False, False]))
        stats = analyze_column(col)
        assert stats.n_distinct == 0
        assert stats.null_frac == 1.0

    def test_histogram_bounds_sorted(self):
        rng = np.random.default_rng(0)
        col = Column.from_ints("x", rng.integers(0, 10_000, 5000))
        stats = analyze_column(col, histogram_bins=20)
        bounds = stats.histogram_bounds
        assert len(bounds) == 21
        assert np.all(np.diff(bounds) >= 0)

    def test_histogram_is_equi_depth(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1000, 8000).astype(int)
        col = Column.from_ints("x", values)
        stats = analyze_column(col, mcv_size=0, histogram_bins=10)
        counts = []
        for lo, hi in zip(stats.histogram_bounds[:-1], stats.histogram_bounds[1:]):
            counts.append(((values >= lo) & (values < hi)).sum())
        counts = np.array(counts[:-1])  # last bin boundary is inclusive-ish
        assert counts.std() / counts.mean() < 0.2

    def test_string_column_over_codes(self):
        col = Column.from_strings("s", ["a", "a", "b", "c"])
        stats = analyze_column(col)
        assert stats.n_distinct == 3
        assert stats.min_value == 0.0
        assert stats.max_value == 2.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=200))
    def test_invariants_property(self, values):
        stats = analyze_column(Column.from_ints("x", values))
        assert stats.n_distinct == len(set(values))
        assert stats.min_value == min(values)
        assert stats.max_value == max(values)
        assert stats.mcv_total_freq <= 1.0 + 1e-9
        # MCV + remaining + nulls account for every row.
        assert (
            stats.mcv_total_freq + stats.remaining_frac + stats.null_frac
            == pytest.approx(1.0)
        )


class TestAnalyzeTable:
    def test_all_columns_covered(self, tiny_db):
        stats = analyze_table(tiny_db.table("title"))
        assert set(stats.columns) == {"id", "year"}
        assert stats.n_rows == 6

    def test_missing_column_raises(self, tiny_db):
        stats = analyze_table(tiny_db.table("title"))
        with pytest.raises(SchemaError):
            stats.column("ghost")

    def test_analyze_database(self, tiny_db):
        stats = analyze_database(tiny_db)
        assert set(stats) == {"title", "movie_keyword", "movie_info"}

"""Chain-join executor properties (the TPC-H-shaped join paths).

The star-join properties live in test_executor.py; these cover the
complementary topology: chains ``dim -> mid -> fact`` where count
messages must pass *through* an interior node, and mixed star+chain
snowflakes (the paper's keyword example query shape:
``keyword <- movie_keyword -> title``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import (
    Column,
    ColumnSchema,
    Database,
    DType,
    Table,
    TableSchema,
    count_factorized,
    count_hash_join,
    execute_count,
)
from repro.workload import JoinEdge, Predicate, Query, TableRef

from tests.helpers import brute_force_count


@st.composite
def chain_instances(draw):
    """customer(1..n_c) <- orders(cust fk) <- lineitem(order fk)."""
    n_cust = draw(st.integers(min_value=1, max_value=4))
    orders = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n_cust + 1),  # cust fk
                st.integers(min_value=0, max_value=2),           # priority
            ),
            max_size=8,
        )
    )
    lines = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=len(orders) + 1),  # order fk
                st.integers(min_value=1, max_value=5),                # quantity
            ),
            max_size=12,
        )
    )
    preds = []
    if draw(st.booleans()):
        preds.append(Predicate("o", "priority", "=", draw(st.integers(0, 2))))
    if draw(st.booleans()):
        preds.append(
            Predicate("l", "quantity", draw(st.sampled_from(["<", ">", "="])),
                      draw(st.integers(1, 5)))
        )
    depth = draw(st.integers(min_value=2, max_value=3))
    return n_cust, orders, lines, preds, depth


def _build_chain_db(n_cust, orders, lines):
    db = Database("chain")
    db.add_table(
        Table(
            TableSchema(
                "customer",
                [ColumnSchema("id", DType.INT64)],
                primary_key="id",
            ),
            {"id": Column.from_ints("id", range(1, n_cust + 1))},
        )
    )
    db.add_table(
        Table(
            TableSchema(
                "orders",
                [
                    ColumnSchema("id", DType.INT64),
                    ColumnSchema("cust_id", DType.INT64),
                    ColumnSchema("priority", DType.INT64),
                ],
                primary_key="id",
            ),
            {
                "id": Column.from_ints("id", range(1, len(orders) + 1)),
                "cust_id": Column.from_ints("cust_id", [o[0] for o in orders]),
                "priority": Column.from_ints("priority", [o[1] for o in orders]),
            },
        )
    )
    db.add_table(
        Table(
            TableSchema(
                "lineitem",
                [
                    ColumnSchema("id", DType.INT64),
                    ColumnSchema("order_id", DType.INT64),
                    ColumnSchema("quantity", DType.INT64),
                ],
                primary_key="id",
            ),
            {
                "id": Column.from_ints("id", range(1, len(lines) + 1)),
                "order_id": Column.from_ints("order_id", [l[0] for l in lines]),
                "quantity": Column.from_ints("quantity", [l[1] for l in lines]),
            },
        )
    )
    return db


@settings(max_examples=60, deadline=None)
@given(chain_instances())
def test_chain_executors_agree_with_brute_force(instance):
    n_cust, orders, lines, preds, depth = instance
    db = _build_chain_db(n_cust, orders, lines)
    if depth == 2:
        tables = (TableRef("orders", "o"), TableRef("lineitem", "l"))
        joins = (JoinEdge("l", "order_id", "o", "id"),)
    else:
        tables = (
            TableRef("customer", "c"),
            TableRef("orders", "o"),
            TableRef("lineitem", "l"),
        )
        joins = (
            JoinEdge("o", "cust_id", "c", "id"),
            JoinEdge("l", "order_id", "o", "id"),
        )
    query = Query(
        tables=tables,
        joins=joins,
        predicates=tuple(p for p in preds if p.alias in {t.alias for t in tables}),
    )
    expected = brute_force_count(db, query)
    assert count_factorized(db, query) == expected
    assert count_hash_join(db, query) == expected


class TestSnowflake:
    """The paper's example shape: keyword <- movie_keyword -> title."""

    def test_keyword_snowflake_count(self, imdb_small):
        query = Query(
            tables=(
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("keyword", "k"),
            ),
            joins=(
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("mk", "keyword_id", "k", "id"),
            ),
        )
        # Both executors agree, and the unfiltered snowflake equals |mk|
        # (both joins are FK joins with full integrity).
        expected = imdb_small.table("movie_keyword").n_rows
        assert count_factorized(imdb_small, query) == expected
        assert count_hash_join(imdb_small, query) == expected

    def test_role_dimension_join(self, imdb_small):
        query = Query(
            tables=(TableRef("cast_info", "ci"), TableRef("role_type", "rt")),
            joins=(JoinEdge("ci", "role_id", "rt", "id"),),
            predicates=(Predicate("rt", "role", "=", "actor"),),
        )
        count = execute_count(imdb_small, query)
        ci_role1 = int(
            (imdb_small.table("cast_info").column("role_id").values == 1).sum()
        )
        assert count == ci_role1

    def test_company_type_dimension_join(self, imdb_small):
        query = Query(
            tables=(
                TableRef("movie_companies", "mc"),
                TableRef("company_type", "ct"),
            ),
            joins=(JoinEdge("mc", "company_type_id", "ct", "id"),),
            predicates=(Predicate("ct", "kind", "=", "distributors"),),
        )
        count = execute_count(imdb_small, query)
        mc_type2 = int(
            (imdb_small.table("movie_companies").column("company_type_id").values == 2).sum()
        )
        assert count == mc_type2

    def test_five_table_snowflake(self, imdb_small):
        """Star around title plus two dimension hops — the widest shape
        the demo's UI can assemble from clicks."""
        query = Query(
            tables=(
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("keyword", "k"),
                TableRef("movie_companies", "mc"),
                TableRef("company_type", "ct"),
            ),
            joins=(
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("mk", "keyword_id", "k", "id"),
                JoinEdge("mc", "movie_id", "t", "id"),
                JoinEdge("mc", "company_type_id", "ct", "id"),
            ),
            predicates=(Predicate("t", "production_year", ">", 2000),),
        )
        fact = count_factorized(imdb_small, query)
        hash_count = count_hash_join(imdb_small, query)
        assert fact == hash_count
        assert fact > 0

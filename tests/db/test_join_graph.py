"""Join-graph analysis tests (pair grouping, acyclicity, components)."""

import pytest

from repro.db.join_graph import (
    build_join_graph,
    connected_components,
    is_acyclic,
    pair_joins,
    validate_join_graph,
)
from repro.errors import QueryError
from repro.workload import JoinEdge, Query, TableRef


def query_with(joins, aliases):
    return Query(
        tables=tuple(TableRef(f"table_{a}", a) for a in aliases),
        joins=tuple(joins),
    )


class TestPairJoins:
    def test_single_edge(self):
        q = query_with([JoinEdge("a", "x", "b", "y")], ["a", "b"])
        pairs = pair_joins(q)
        assert len(pairs) == 1
        pair = pairs[frozenset(("a", "b"))]
        assert pair.sides_for("a") == (["x"], ["y"])
        assert pair.sides_for("b") == (["y"], ["x"])
        assert pair.other("a") == "b"

    def test_composite_edge_grouped(self):
        q = query_with(
            [JoinEdge("a", "x", "b", "x"), JoinEdge("a", "y", "b", "y")],
            ["a", "b"],
        )
        pairs = pair_joins(q)
        assert len(pairs) == 1
        own, other = pairs[frozenset(("a", "b"))].sides_for("a")
        assert sorted(own) == ["x", "y"]
        assert sorted(other) == ["x", "y"]

    def test_alias_not_in_pair_rejected(self):
        q = query_with([JoinEdge("a", "x", "b", "y")], ["a", "b"])
        pair = pair_joins(q)[frozenset(("a", "b"))]
        with pytest.raises(QueryError):
            pair.sides_for("zz")
        with pytest.raises(QueryError):
            pair.other("zz")


class TestGraphShape:
    def test_star_is_acyclic(self):
        q = query_with(
            [JoinEdge("b", "fk", "a", "id"), JoinEdge("c", "fk", "a", "id")],
            ["a", "b", "c"],
        )
        assert is_acyclic(build_join_graph(q))

    def test_triangle_is_cyclic(self):
        q = query_with(
            [
                JoinEdge("a", "x", "b", "x"),
                JoinEdge("b", "y", "c", "y"),
                JoinEdge("a", "z", "c", "z"),
            ],
            ["a", "b", "c"],
        )
        assert not is_acyclic(build_join_graph(q))

    def test_composite_edges_do_not_create_cycle(self):
        # Two join conditions between the same pair are ONE edge.
        q = query_with(
            [JoinEdge("a", "x", "b", "x"), JoinEdge("a", "y", "b", "y")],
            ["a", "b"],
        )
        assert is_acyclic(build_join_graph(q))

    def test_components(self):
        q = query_with([JoinEdge("a", "x", "b", "x")], ["a", "b", "c"])
        components = connected_components(build_join_graph(q))
        assert sorted(map(sorted, components)) == [["a", "b"], ["c"]]

    def test_validate_connected(self):
        q = query_with([], ["a", "b"])
        with pytest.raises(QueryError):
            validate_join_graph(q, require_connected=True)
        validate_join_graph(q, require_connected=False)  # cross product ok

"""IN-predicate semantics across the stack: column, executor, baseline.

The templated workload generator emits IN predicates, so membership
evaluation must agree between the vectorized column kernel, the exact
executor, the PostgreSQL-style baseline, and the featurizer's one-slot
literal summary.
"""

import numpy as np
import pytest

from repro.baselines.postgres import PostgresEstimator, predicate_selectivity
from repro.db import Column, execute_count
from repro.db.statistics import analyze_database
from repro.errors import QueryError
from repro.workload import Predicate, Query, TableRef, make_join


@pytest.fixture()
def numeric_col():
    return Column.from_ints(
        "x", [1, 5, 10, 0], valid=np.array([True, True, True, False])
    )


@pytest.fixture()
def string_col():
    return Column.from_strings("s", ["b", None, "a", "b", "c"])


class TestColumnEvaluate:
    def test_numeric_membership(self, numeric_col):
        mask = numeric_col.evaluate("in", (1, 10, 999))
        assert mask.tolist() == [True, False, True, False]

    def test_null_rows_never_qualify(self, numeric_col):
        # Row 3 holds the member value 0 but is NULL.
        mask = numeric_col.evaluate("in", (0,))
        assert mask.tolist() == [False, False, False, False]

    def test_no_members_present_matches_nothing(self, numeric_col):
        assert not numeric_col.evaluate("in", (999, -1)).any()

    def test_equivalent_to_equality_disjunction(self, numeric_col):
        combined = numeric_col.evaluate("=", 1) | numeric_col.evaluate("=", 10)
        assert (numeric_col.evaluate("in", (1, 10)) == combined).all()

    def test_string_membership(self, string_col):
        mask = string_col.evaluate("in", ("a", "b"))
        assert mask.tolist() == [True, False, True, True, False]

    def test_absent_string_members_shrink_the_disjunction(self, string_col):
        with_absent = string_col.evaluate("in", ("a", "zzz"))
        assert (with_absent == string_col.evaluate("in", ("a",))).all()

    def test_all_members_absent_matches_nothing(self, string_col):
        assert not string_col.evaluate("in", ("nope", "zzz")).any()

    def test_scalar_literal_rejected(self, numeric_col):
        with pytest.raises(QueryError):
            numeric_col.evaluate("in", 5)
        with pytest.raises(QueryError):
            numeric_col.evaluate("in", "abc")

    def test_wrong_kind_member_rejected(self, numeric_col, string_col):
        with pytest.raises(QueryError):
            numeric_col.evaluate("in", ("a",))
        with pytest.raises(QueryError):
            string_col.evaluate("in", (1,))


class TestExecutor:
    def test_single_table_in_count(self, tiny_db):
        # keyword_id values: [7, 8, 7, 9, 7, 8, 9, 9] -> {7, 9} hits 6.
        q = Query(
            tables=(TableRef("movie_keyword", "mk"),),
            predicates=(Predicate("mk", "keyword_id", "in", (7, 9)),),
        )
        assert execute_count(tiny_db, q) == 6

    def test_in_equals_sum_of_equalities(self, tiny_db):
        # Disjoint members: the IN count is the sum of '=' counts.
        def count(pred):
            return execute_count(
                tiny_db,
                Query(tables=(TableRef("movie_keyword", "mk"),), predicates=(pred,)),
            )

        assert count(Predicate("mk", "keyword_id", "in", (7, 8))) == count(
            Predicate("mk", "keyword_id", "=", 7)
        ) + count(Predicate("mk", "keyword_id", "=", 8))

    def test_join_with_in_matches_brute_force(self, tiny_db):
        q = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(make_join("mk", "movie_id", "t", "id"),),
            predicates=(
                Predicate("mk", "keyword_id", "in", (8, 9)),
                Predicate("t", "year", ">=", 2005),
            ),
        )
        title = tiny_db.table("title")
        mk = tiny_db.table("movie_keyword")
        expected = 0
        for i in range(len(mk.column("movie_id"))):
            if mk.column("keyword_id").decode(i) not in (8, 9):
                continue
            for j in range(len(title.column("id"))):
                year = title.column("year").decode(j)
                if year is None or year < 2005:
                    continue
                if title.column("id").decode(j) == mk.column("movie_id").decode(i):
                    expected += 1
        assert expected > 0
        assert execute_count(tiny_db, q) == expected


class TestPostgresBaseline:
    def test_in_selectivity_sums_member_equalities(self, tiny_db):
        stats = analyze_database(tiny_db)["movie_keyword"]

        def sel(pred):
            return predicate_selectivity(
                tiny_db, stats, "movie_keyword", pred
            )

        members = sel(Predicate("mk", "keyword_id", "in", (7, 9)))
        separate = sel(Predicate("mk", "keyword_id", "=", 7)) + sel(
            Predicate("mk", "keyword_id", "=", 9)
        )
        assert members == pytest.approx(min(separate, 1.0))

    def test_in_selectivity_monotone_in_members(self, tiny_db):
        stats = analyze_database(tiny_db)["movie_keyword"]
        small = predicate_selectivity(
            tiny_db, stats, "movie_keyword",
            Predicate("mk", "keyword_id", "in", (7,)),
        )
        large = predicate_selectivity(
            tiny_db, stats, "movie_keyword",
            Predicate("mk", "keyword_id", "in", (7, 8, 9)),
        )
        assert 0.0 < small <= large <= 1.0

    def test_estimator_handles_in_queries(self, imdb_small):
        estimator = PostgresEstimator(imdb_small)
        q = Query(
            tables=(TableRef("title", "t"), TableRef("movie_info", "mi")),
            joins=(make_join("mi", "movie_id", "t", "id"),),
            predicates=(Predicate("mi", "info_type_id", "in", (1, 2, 3)),),
        )
        estimate = estimator.estimate(q)
        assert np.isfinite(estimate)
        assert estimate >= 1.0


class TestFeaturizer:
    def test_in_literal_normalizes_to_member_mean(self, trained_sketch):
        sketch, _ = trained_sketch
        featurizer = sketch.featurizer
        key = "title.production_year"
        db_column = None
        members = (1960, 2000)
        expected = np.mean(
            [featurizer.normalize_literal(db_column, key, m) for m in members]
        )
        assert featurizer.normalize_literal(db_column, key, members) == pytest.approx(
            float(expected)
        )

    def test_sketch_estimates_in_queries(self, trained_sketch):
        sketch, _ = trained_sketch
        q = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", "in", (1995, 2005)),),
        )
        estimate = sketch.estimate(q, use_cache=False)
        assert np.isfinite(estimate)
        assert estimate >= 1.0

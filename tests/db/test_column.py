"""Column storage and predicate evaluation tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Column, DType
from repro.errors import QueryError, SchemaError


class TestConstruction:
    def test_from_ints(self):
        col = Column.from_ints("x", [1, 2, 3])
        assert col.dtype is DType.INT64
        assert len(col) == 3
        assert col.valid.all()

    def test_from_floats(self):
        col = Column.from_floats("x", [1.5, 2.5])
        assert col.dtype is DType.FLOAT64

    def test_from_strings_with_nulls(self):
        col = Column.from_strings("s", ["b", None, "a", "b"])
        assert col.dtype is DType.STRING
        assert col.dictionary == ["a", "b"]
        assert not col.valid[1]
        assert col.decode(0) == "b"
        assert col.decode(1) is None

    def test_string_without_dictionary_rejected(self):
        with pytest.raises(SchemaError):
            Column("s", DType.STRING, np.zeros(2, dtype=np.int64))

    def test_numeric_with_dictionary_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", DType.INT64, np.zeros(2, dtype=np.int64), dictionary=["a"])

    def test_mask_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Column.from_ints("x", [1, 2], valid=np.array([True]))


class TestPredicates:
    @pytest.fixture
    def col(self):
        return Column.from_ints(
            "x", [1, 5, 10, 0], valid=np.array([True, True, True, False])
        )

    @pytest.mark.parametrize(
        "op,literal,expected",
        [
            ("=", 5, [False, True, False, False]),
            ("<", 5, [True, False, False, False]),
            (">", 5, [False, False, True, False]),
            ("<=", 5, [True, True, False, False]),
            (">=", 5, [False, True, True, False]),
            ("<>", 5, [True, False, True, False]),
        ],
    )
    def test_numeric_operators(self, col, op, literal, expected):
        assert col.evaluate(op, literal).tolist() == expected

    def test_null_never_qualifies(self, col):
        # The 4th value is 0 but NULL; even `< 100` must exclude it.
        assert col.evaluate("<", 100).tolist() == [True, True, True, False]

    def test_unknown_operator(self, col):
        with pytest.raises(QueryError):
            col.evaluate("~", 5)

    def test_string_literal_on_numeric_rejected(self, col):
        with pytest.raises(QueryError):
            col.evaluate("=", "five")

    def test_bool_literal_rejected(self, col):
        with pytest.raises(QueryError):
            col.evaluate("=", True)


class TestStringPredicates:
    @pytest.fixture
    def col(self):
        return Column.from_strings("s", ["apple", "banana", None, "apple"])

    def test_equality(self, col):
        assert col.evaluate("=", "apple").tolist() == [True, False, False, True]

    def test_inequality_excludes_null(self, col):
        assert col.evaluate("<>", "apple").tolist() == [False, True, False, False]

    def test_absent_literal_equality_empty(self, col):
        assert not col.evaluate("=", "cherry").any()

    def test_absent_literal_inequality_all_non_null(self, col):
        assert col.evaluate("<>", "cherry").tolist() == [True, True, False, True]

    def test_range_on_string_rejected(self, col):
        with pytest.raises(QueryError):
            col.evaluate("<", "banana")

    def test_numeric_literal_on_string_rejected(self, col):
        with pytest.raises(QueryError):
            col.evaluate("=", 5)


class TestSummaries:
    def test_min_max_skips_nulls(self):
        col = Column.from_ints(
            "x", [100, 2, 3], valid=np.array([False, True, True])
        )
        assert col.min_max() == (2.0, 3.0)

    def test_min_max_all_null(self):
        col = Column.from_ints("x", [1], valid=np.array([False]))
        assert col.min_max() == (0.0, 1.0)

    def test_n_distinct(self):
        assert Column.from_ints("x", [1, 1, 2, 3]).n_distinct() == 3

    def test_null_fraction(self):
        col = Column.from_ints("x", [1, 2], valid=np.array([True, False]))
        assert col.null_fraction() == pytest.approx(0.5)

    def test_take_preserves_dictionary(self):
        col = Column.from_strings("s", ["a", "b", "c"])
        sub = col.take(np.array([2, 0]))
        assert sub.decode(0) == "c"
        assert sub.dictionary == col.dictionary


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=40),
    st.integers(min_value=-100, max_value=100),
    st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
)
def test_predicate_matches_python_semantics(values, literal, op):
    """Vectorized evaluation must agree with row-at-a-time python."""
    import operator

    ops = {
        "=": operator.eq,
        "<": operator.lt,
        ">": operator.gt,
        "<=": operator.le,
        ">=": operator.ge,
        "<>": operator.ne,
    }
    col = Column.from_ints("x", values)
    expected = [ops[op](v, literal) for v in values]
    assert col.evaluate(op, literal).tolist() == expected

"""SQL printer/parser tests, including the round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import parse_sql, to_sql
from repro.errors import ParseError
from repro.workload import JoinEdge, Predicate, Query, TableRef


class TestParsing:
    def test_minimal(self):
        q = parse_sql("SELECT COUNT(*) FROM title t;")
        assert q.tables == (TableRef("title", "t"),)
        assert q.joins == ()
        assert q.predicates == ()

    def test_alias_defaults_to_table(self):
        q = parse_sql("SELECT COUNT(*) FROM title;")
        assert q.tables == (TableRef("title", "title"),)

    def test_join_and_predicates(self):
        q = parse_sql(
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2000 "
            "AND mk.keyword_id=42;"
        )
        assert len(q.tables) == 2
        assert len(q.joins) == 1
        assert len(q.predicates) == 2
        assert Predicate("t", "production_year", ">", 2000) in q.predicates

    def test_case_insensitive_keywords(self):
        q = parse_sql("select count(*) from title t where t.id=1;")
        assert len(q.predicates) == 1

    def test_string_literal_with_escape(self):
        q = parse_sql("SELECT COUNT(*) FROM k WHERE k.name='o''brien';")
        assert q.predicates[0].literal == "o'brien"

    def test_float_literal(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE t.x<1.5;")
        assert q.predicates[0].literal == 1.5
        assert isinstance(q.predicates[0].literal, float)

    def test_negative_literal(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE t.x>-3;")
        assert q.predicates[0].literal == -3

    def test_all_operators(self):
        for op in ("=", "<", ">", "<=", ">=", "<>"):
            q = parse_sql(f"SELECT COUNT(*) FROM t WHERE t.x{op}5;")
            assert q.predicates[0].op == op

    def test_semicolon_optional(self):
        assert parse_sql("SELECT COUNT(*) FROM t") == parse_sql(
            "SELECT COUNT(*) FROM t;"
        )

    def test_in_list_numeric(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE t.kind_id IN (3, 1, 2);")
        assert q.predicates[0].op == "in"
        assert q.predicates[0].literal == (1, 2, 3)  # canonicalized

    def test_in_list_strings(self):
        q = parse_sql("SELECT COUNT(*) FROM k WHERE k.name IN ('b', 'a');")
        assert q.predicates[0].literal == ("a", "b")

    def test_in_list_single_member(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE t.x IN (7);")
        assert q.predicates[0].literal == (7,)

    def test_in_keyword_case_insensitive(self):
        q = parse_sql("select count(*) from t where t.x in (1, 2);")
        assert q.predicates[0].op == "in"

    def test_in_members_deduplicated(self):
        q = parse_sql("SELECT COUNT(*) FROM t WHERE t.x IN (5, 5, 3);")
        assert q.predicates[0].literal == (3, 5)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "SELECT * FROM t;",
            "SELECT COUNT(*) FROM;",
            "SELECT COUNT(*) FROM t WHERE;",
            "SELECT COUNT(*) FROM t WHERE t.x;",
            "SELECT COUNT(*) FROM t WHERE t.x=;",
            "SELECT COUNT(*) FROM t WHERE t.x<t.y;",  # non-equi join
            "SELECT COUNT(*) FROM t t1, t t2 WHERE t1.x=t2.x extra",
            "SELECT COUNT(*) FROM t WHERE t.x=5 OR t.y=2;",
            "SELECT COUNT(*) FROM t WHERE x=5;",  # unqualified column
            "SELECT COUNT(*) FROM t WHERE t.x IN ();",  # empty IN list
            "SELECT COUNT(*) FROM t WHERE t.x IN (1, 2;",  # unclosed
            "SELECT COUNT(*) FROM t WHERE t.x IN 1;",  # missing parens
            "SELECT COUNT(*) FROM t WHERE t.x IN (1,, 2);",
        ],
    )
    def test_rejects_invalid(self, bad):
        with pytest.raises(ParseError):
            parse_sql(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_sql("SELECT COUNT(*) FROM t WHERE t.x @ 5;")
        assert "offset" in str(err.value)


class TestPrinting:
    def test_string_escaping_roundtrip(self):
        q = Query(
            tables=(TableRef("k", "k"),),
            predicates=(Predicate("k", "name", "=", "it's"),),
        )
        assert parse_sql(to_sql(q)) == q

    def test_float_printed_as_float(self):
        q = Query(
            tables=(TableRef("t", "t"),),
            predicates=(Predicate("t", "x", "<", 5.0),),
        )
        parsed = parse_sql(to_sql(q))
        assert isinstance(parsed.predicates[0].literal, float)

    def test_in_roundtrip_numeric_and_string(self):
        for literal in ((3, 1, 4), ("it's", "plain")):
            q = Query(
                tables=(TableRef("t", "t"),),
                predicates=(Predicate("t", "x", "in", literal),),
            )
            assert "IN (" in to_sql(q)
            assert parse_sql(to_sql(q)) == q


# ----------------------------------------------------------------------
# round-trip property: parse(print(q)) == q over random queries
# ----------------------------------------------------------------------

names = st.sampled_from(["t", "mk", "mi", "ci", "mc"])
columns = st.sampled_from(["id", "movie_id", "year", "kind_id"])
ops = st.sampled_from(["=", "<", ">", "<=", ">=", "<>"])
strings = st.one_of(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
        max_size=8,
    ),
    st.just("with'quote"),
)
literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    strings,
)
# IN lists: members all numeric or all string (the Predicate contract).
in_lists = st.one_of(
    st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=1, max_size=4),
    st.lists(strings, min_size=1, max_size=4),
)


@st.composite
def random_queries(draw):
    aliases = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    tables = tuple(TableRef(f"table_{a}", a) for a in aliases)
    joins = []
    for i in range(1, len(aliases)):
        joins.append(JoinEdge(aliases[i], draw(columns), aliases[0], draw(columns)))
    n_preds = draw(st.integers(min_value=0, max_value=3))
    predicates = []
    for _ in range(n_preds):
        alias = draw(st.sampled_from(aliases))
        if draw(st.booleans()):
            predicates.append(
                Predicate(alias, draw(columns), "in", tuple(draw(in_lists)))
            )
            continue
        literal = draw(literals)
        op = "=" if isinstance(literal, str) else draw(ops)
        predicates.append(Predicate(alias, draw(columns), op, literal))
    return Query(tables=tables, joins=tuple(joins), predicates=tuple(predicates))


@settings(max_examples=120, deadline=None)
@given(random_queries())
def test_sql_roundtrip_property(query):
    assert parse_sql(to_sql(query)) == query

"""Tests for layers, modules, and the mlp builder."""

import numpy as np
import pytest

from repro.errors import ReproError, SerializationError
from repro.nn import (
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    mlp,
)


class TestLinear:
    def test_output_shape_2d(self):
        layer = Linear(4, 3, rng=0)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_output_shape_3d_set_module(self):
        layer = Linear(4, 3, rng=0)
        assert layer(Tensor(np.zeros((5, 7, 4)))).shape == (5, 7, 3)

    def test_wrong_input_dim_raises(self):
        layer = Linear(4, 3, rng=0)
        with pytest.raises(ReproError):
            layer(Tensor(np.zeros((5, 2))))

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=1)
        b = Linear(4, 3, rng=1)
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_bad_dims_raise(self):
        with pytest.raises(ReproError):
            Linear(0, 3)

    def test_gradients_flow(self):
        layer = Linear(2, 1, rng=0)
        out = layer(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert np.allclose(layer.weight.grad, [[3.0], [3.0]])
        assert np.allclose(layer.bias.grad, [3.0])


class TestActivations:
    def test_relu_module(self):
        assert np.allclose(ReLU()(Tensor([-1.0, 2.0])).numpy(), [0.0, 2.0])

    def test_sigmoid_module(self):
        assert Sigmoid()(Tensor([0.0])).numpy()[0] == pytest.approx(0.5)

    def test_tanh_module(self):
        assert Tanh()(Tensor([0.0])).numpy()[0] == pytest.approx(0.0)


class TestDropout:
    def test_identity_in_eval_mode(self):
        d = Dropout(0.9, rng=0)
        d.eval()
        x = np.ones((4, 4))
        assert np.array_equal(d(Tensor(x)).numpy(), x)

    def test_scales_in_train_mode(self):
        d = Dropout(0.5, rng=0)
        out = d(Tensor(np.ones((100, 100)))).numpy()
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < (out > 0).mean() < 0.7

    def test_zero_probability_is_identity(self):
        d = Dropout(0.0)
        x = np.ones((3, 3))
        assert np.array_equal(d(Tensor(x)).numpy(), x)

    def test_invalid_probability(self):
        with pytest.raises(ReproError):
            Dropout(1.0)


class TestSequentialAndMlp:
    def test_sequential_applies_in_order(self):
        net = Sequential(Linear(2, 2, rng=0), ReLU())
        out = net(Tensor(np.ones((1, 2))))
        assert np.all(out.numpy() >= 0)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ReproError):
            Sequential()

    def test_mlp_structure(self):
        net = mlp([4, 8, 1], rng=0, final_activation=Sigmoid)
        out = net(Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 1)
        assert np.all((out.numpy() >= 0) & (out.numpy() <= 1))

    def test_mlp_needs_two_dims(self):
        with pytest.raises(ReproError):
            mlp([4])

    def test_mlp_deterministic(self):
        a = mlp([3, 5, 2], rng=9)
        b = mlp([3, 5, 2], rng=9)
        x = Tensor(np.ones((1, 3)))
        assert np.array_equal(a(x).numpy(), b(x).numpy())


class TestModuleRegistry:
    def test_named_parameters_dotted(self):
        net = Sequential(Linear(2, 3, rng=0), ReLU(), Linear(3, 1, rng=0))
        names = dict(net.named_parameters())
        assert "0.weight" in names
        assert "2.bias" in names

    def test_num_parameters(self):
        net = Linear(4, 3, rng=0)
        assert net.num_parameters() == 4 * 3 + 3

    def test_duplicate_registration_rejected(self):
        m = Module()
        m.register_parameter("w", np.zeros(2))
        with pytest.raises(ReproError):
            m.register_parameter("w", np.zeros(2))

    def test_state_dict_roundtrip(self):
        a = mlp([3, 4, 1], rng=0)
        b = mlp([3, 4, 1], rng=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        assert np.array_equal(a(x).numpy(), b(x).numpy())

    def test_state_dict_missing_key_rejected(self):
        a = mlp([3, 4, 1], rng=0)
        state = a.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(SerializationError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_rejected(self):
        a = mlp([3, 4, 1], rng=0)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((99, 99))
        with pytest.raises(SerializationError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2, rng=0), Dropout(0.5))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_zero_grad_clears(self):
        layer = Linear(2, 1, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

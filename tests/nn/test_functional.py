"""Tests for masked_mean — the set-pooling primitive of MSCN."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.nn import Tensor, masked_mean


class TestMaskedMean:
    def test_full_mask_equals_plain_mean(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        mask = np.ones((2, 3))
        out = masked_mean(Tensor(x), mask).numpy()
        assert np.allclose(out, x.mean(axis=1))

    def test_partial_mask_ignores_padding(self):
        x = np.zeros((1, 3, 2))
        x[0, 0] = [2.0, 4.0]
        x[0, 1] = [4.0, 8.0]
        x[0, 2] = [999.0, 999.0]  # padded garbage
        mask = np.array([[1.0, 1.0, 0.0]])
        out = masked_mean(Tensor(x), mask).numpy()
        assert np.allclose(out, [[3.0, 6.0]])

    def test_empty_set_yields_zeros(self):
        x = np.full((1, 2, 3), 7.0)
        mask = np.zeros((1, 2))
        out = masked_mean(Tensor(x), mask).numpy()
        assert np.allclose(out, 0.0)

    def test_wrong_rank_raises(self):
        with pytest.raises(ReproError):
            masked_mean(Tensor(np.zeros((2, 3))), np.ones((2, 3)))

    def test_wrong_mask_shape_raises(self):
        with pytest.raises(ReproError):
            masked_mean(Tensor(np.zeros((2, 3, 4))), np.ones((2, 4)))

    def test_gradient_respects_mask(self):
        x = Tensor(np.ones((1, 3, 2)), requires_grad=True)
        mask = np.array([[1.0, 1.0, 0.0]])
        masked_mean(x, mask).sum().backward()
        # Padded element receives zero gradient; valid ones share 1/2 each.
        assert np.allclose(x.grad[0, 2], 0.0)
        assert np.allclose(x.grad[0, 0], 0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
    )
    def test_permutation_invariance(self, batch, set_size, dim):
        """Set semantics: pooling must not care about element order."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(batch, set_size, dim))
        mask = (rng.random((batch, set_size)) < 0.8).astype(float)
        out1 = masked_mean(Tensor(x), mask).numpy()
        perm = rng.permutation(set_size)
        out2 = masked_mean(Tensor(x[:, perm, :]), mask[:, perm]).numpy()
        assert np.allclose(out1, out2)

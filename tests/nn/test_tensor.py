"""Unit tests for the autodiff engine's forward values and gradients."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.nn import Tensor, concat, maximum, stack_rows


def grad_of(fn, x: np.ndarray) -> np.ndarray:
    """Analytic gradient of scalar-valued fn at x via the engine."""
    t = Tensor(x, requires_grad=True)
    out = fn(t)
    out.backward()
    return t.grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn over a raw array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.astype(np.float64).ravel()
    for i in range(flat.size):
        bump = np.zeros_like(flat)
        bump[i] = eps
        hi = fn(Tensor((flat + bump).reshape(x.shape))).item()
        lo = fn(Tensor((flat - bump).reshape(x.shape))).item()
        grad.ravel()[i] = (hi - lo) / (2 * eps)
    return grad


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.numpy(), [4.0, 6.0])

    def test_scalar_broadcast(self):
        out = Tensor([1.0, 2.0]) + 1.0
        assert np.allclose(out.numpy(), [2.0, 3.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        assert np.allclose((a @ b).numpy(), [[11.0]])

    def test_batched_matmul(self):
        a = Tensor(np.ones((2, 3, 4)))
        b = Tensor(np.ones((4, 5)))
        assert (a @ b).shape == (2, 3, 5)

    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        assert np.allclose(out.numpy(), [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        out = Tensor([-100.0, 0.0, 100.0]).sigmoid().numpy()
        assert np.all((out >= 0) & (out <= 1))
        assert out[1] == pytest.approx(0.5)

    def test_sigmoid_extreme_no_overflow(self):
        out = Tensor([1e4, -1e4]).sigmoid().numpy()
        assert np.isfinite(out).all()

    def test_mean_axis(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(t.mean(axis=0).numpy(), [2.0, 3.0])
        assert np.allclose(t.mean(axis=1).numpy(), [1.5, 3.5])
        assert t.mean().item() == pytest.approx(2.5)

    def test_concat(self):
        out = concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=1)
        assert np.allclose(out.numpy(), [[1.0, 2.0]])

    def test_maximum(self):
        out = maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.numpy(), [3.0, 5.0])

    def test_clip(self):
        out = Tensor([-1.0, 0.5, 2.0]).clip(0.0, 1.0)
        assert np.allclose(out.numpy(), [0.0, 0.5, 1.0])

    def test_stack_rows(self):
        out = stack_rows([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])])
        assert out.shape == (2, 2)

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).transpose().shape == (3, 2)


class TestBackwardExact:
    """Closed-form gradient checks for individual ops."""

    def test_add_grad(self):
        x = np.array([1.0, 2.0])
        g = grad_of(lambda t: (t + t).sum(), x)
        assert np.allclose(g, [2.0, 2.0])

    def test_mul_grad(self):
        x = np.array([3.0])
        g = grad_of(lambda t: (t * t).sum(), x)
        assert np.allclose(g, [6.0])

    def test_div_grad(self):
        x = np.array([2.0])
        g = grad_of(lambda t: (1.0 / t).sum(), x)
        assert np.allclose(g, [-0.25])

    def test_pow_grad(self):
        x = np.array([3.0])
        g = grad_of(lambda t: (t**2).sum(), x)
        assert np.allclose(g, [6.0])

    def test_exp_log_inverse_grad(self):
        x = np.array([1.3])
        g = grad_of(lambda t: t.exp().log().sum(), x)
        assert np.allclose(g, [1.0])

    def test_relu_grad_zero_below(self):
        x = np.array([-2.0, 3.0])
        g = grad_of(lambda t: t.relu().sum(), x)
        assert np.allclose(g, [0.0, 1.0])

    def test_abs_grad(self):
        x = np.array([-2.0, 3.0])
        g = grad_of(lambda t: t.abs().sum(), x)
        assert np.allclose(g, [-1.0, 1.0])

    def test_broadcast_grad_sums(self):
        # (2,3) + (3,) : the (3,) gradient must sum over the batch axis.
        b = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((2, 3)))
        (x + b).sum().backward()
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_matmul_grad(self):
        w = Tensor(np.array([[1.0], [2.0]]), requires_grad=True)
        x = Tensor(np.array([[3.0, 4.0]]))
        (x @ w).sum().backward()
        assert np.allclose(w.grad, [[3.0], [4.0]])

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.sum().backward()
        assert np.allclose(x.grad, [7.0])

    def test_maximum_grad_routes_to_larger(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_clip_grad_zero_outside(self):
        x = np.array([-1.0, 0.5, 2.0])
        g = grad_of(lambda t: t.clip(0.0, 1.0).sum(), x)
        assert np.allclose(g, [0.0, 1.0, 0.0])


class TestBackwardNumeric:
    """Spot checks against central differences for composite expressions."""

    @pytest.mark.parametrize(
        "fn",
        [
            lambda t: (t.sigmoid() * t).sum(),
            lambda t: t.tanh().mean(),
            lambda t: ((t * t).relu() + t.exp()).sum(),
            lambda t: (t.reshape(4, 1) @ Tensor(np.ones((1, 3)))).sum(),
            lambda t: (t / (t * t + 1.0)).sum(),
        ],
    )
    def test_composite(self, fn):
        x = np.array([0.3, -0.7, 1.2, 0.05])
        assert np.allclose(grad_of(fn, x), numeric_grad(fn, x), atol=1e-5)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.sum().backward()
        assert x.grad is not None


class TestErrors:
    def test_backward_without_grad_raises(self):
        with pytest.raises(ReproError):
            Tensor([1.0]).backward()

    def test_bad_grad_shape_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ReproError):
            t.backward(np.ones(3))

    def test_tensor_exponent_rejected(self):
        with pytest.raises(ReproError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_empty_concat_rejected(self):
        with pytest.raises(ReproError):
            concat([])

    def test_transpose_requires_2d(self):
        with pytest.raises(ReproError):
            Tensor([1.0]).transpose()

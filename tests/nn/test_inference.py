"""Compiled InferenceSession vs the autograd forward.

The acceptance bar for the compiled serving path: predictions agree
with ``MSCN.forward`` to <= 1e-12 relative in float64 and <= 1e-6
relative in float32, across batch sizes (1 / 7 / 256), ragged set
sizes, empty join/predicate sets, and zero-allocation buffer reuse
must never leak state between calls.
"""

import threading

import numpy as np
import pytest

from repro.core.batches import Batch, collate
from repro.core.featurization import QueryFeatures
from repro.core.mscn import MSCN
from repro.errors import ReproError
from repro.nn import InferenceSession

TABLE_DIM, JOIN_DIM, PRED_DIM, HIDDEN = 12, 4, 7, 16


@pytest.fixture(scope="module")
def model():
    model = MSCN(TABLE_DIM, JOIN_DIM, PRED_DIM, hidden_units=HIDDEN, seed=42)
    model.eval()
    return model


def random_batch(rng, batch_size, max_tables=4, max_joins=3, max_preds=5):
    """Collate a ragged batch (set sizes vary per query; empties included)."""
    features = []
    for _ in range(batch_size):
        n_t = int(rng.integers(1, max_tables + 1))
        n_j = int(rng.integers(1, max_joins + 1))
        n_p = int(rng.integers(1, max_preds + 1))
        features.append(
            QueryFeatures(
                tables=rng.normal(size=(n_t, TABLE_DIM)),
                # Zero rows model the "empty set, active mask bit"
                # encoding the featurizer uses for joins/predicates.
                joins=np.zeros((1, JOIN_DIM)) if n_j == 1 else rng.normal(size=(n_j, JOIN_DIM)),
                predicates=rng.normal(size=(n_p, PRED_DIM)),
            )
        )
    return collate(features)


class TestParity:
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_float64(self, model, batch_size):
        rng = np.random.default_rng(batch_size)
        batch = random_batch(rng, batch_size)
        reference = model(batch).numpy()
        compiled = InferenceSession(model, dtype=np.float64).run(batch)
        assert compiled.dtype == np.float64
        np.testing.assert_allclose(compiled, reference, rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_float32(self, model, batch_size):
        rng = np.random.default_rng(100 + batch_size)
        batch = random_batch(rng, batch_size)
        reference = model(batch).numpy()
        compiled = InferenceSession(model, dtype=np.float32).run(batch)
        assert compiled.dtype == np.float64  # output contract: always f64
        np.testing.assert_allclose(compiled, reference, rtol=1e-6, atol=1e-7)

    def test_float32_collated_input(self, model):
        """A batch already collated at float32 feeds the session directly."""
        rng = np.random.default_rng(5)
        batch = random_batch(rng, 9)
        session = InferenceSession(model, dtype=np.float32)
        from_f64 = session.run(batch)
        from_f32 = session.run(batch.astype(np.float32))
        np.testing.assert_allclose(from_f32, from_f64, rtol=1e-6, atol=1e-7)

    def test_all_padding_row_matches_autograd(self, model):
        """A fully masked-out set (count clamped to 1) agrees across paths."""
        batch = Batch(
            tables=np.random.default_rng(1).normal(size=(2, 2, TABLE_DIM)),
            table_mask=np.array([[1.0, 1.0], [1.0, 0.0]]),
            joins=np.zeros((2, 1, JOIN_DIM)),
            join_mask=np.zeros((2, 1)),  # entirely empty join sets
            predicates=np.random.default_rng(2).normal(size=(2, 1, PRED_DIM)),
            predicate_mask=np.ones((2, 1)),
        )
        reference = model(batch).numpy()
        compiled = InferenceSession(model).run(batch)
        np.testing.assert_allclose(compiled, reference, rtol=1e-12, atol=0.0)


class TestBufferPool:
    def test_repeated_shapes_reuse_buffers(self, model):
        rng = np.random.default_rng(0)
        session = InferenceSession(model)
        batch = random_batch(rng, 8)
        session.run(batch)
        pool_ids = {key: id(buf) for key, buf in session._pool().items()}
        assert pool_ids, "first run should have populated the pool"
        session.run(batch)
        session.run(batch)
        after = {key: id(buf) for key, buf in session._pool().items()}
        for key, ident in pool_ids.items():
            assert after[key] == ident, f"buffer {key} was reallocated"

    def test_returned_array_is_not_a_pooled_buffer(self, model):
        rng = np.random.default_rng(3)
        session = InferenceSession(model)
        batch = random_batch(rng, 4)
        first = session.run(batch)
        kept = first.copy()
        second = session.run(batch)  # same shape: pooled buffers reused
        np.testing.assert_array_equal(first, kept)
        np.testing.assert_array_equal(second, kept)
        first[:] = -1.0  # mutating the caller's copy must not corrupt state
        np.testing.assert_array_equal(session.run(batch), kept)

    def test_pools_are_thread_local(self, model):
        session = InferenceSession(model)
        rng = np.random.default_rng(7)
        batch = random_batch(rng, 6)
        expected = session.run(batch)
        results = []
        errors = []

        def worker():
            try:
                for _ in range(20):
                    results.append(session.run(batch))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got in results:
            np.testing.assert_array_equal(got, expected)


class TestSnapshotSemantics:
    def test_weights_are_snapshotted(self, model):
        rng = np.random.default_rng(11)
        batch = random_batch(rng, 5)
        session = InferenceSession(model)
        before = session.run(batch)
        param = model.out_mlp.layers[-1].bias
        original = param.data.copy()
        try:
            # In-place update, exactly like the optimizers' `p.data -= ...`:
            # the session must hold a copy, not an alias of the live array.
            param.data += 1.0
            np.testing.assert_array_equal(session.run(batch), before)
            recompiled = InferenceSession(model)
            fresh = recompiled.run(batch)
            assert not np.array_equal(fresh, before)
            np.testing.assert_allclose(
                fresh, model(batch).numpy(), rtol=1e-12, atol=0.0
            )
        finally:
            param.data[:] = original

    def test_mscn_compile_helper(self, model):
        session = model.compile()
        assert isinstance(session, InferenceSession)
        assert session.dtype == np.float64
        assert model.compile("float32").dtype == np.float32

    def test_unsupported_dtype_rejected(self, model):
        with pytest.raises(ReproError):
            InferenceSession(model, dtype=np.int32)

    def test_non_mlp_module_rejected(self, model):
        from repro.nn.layers import Linear, ReLU, Sequential

        class Odd:
            hidden_units = 4
            table_dim = join_dim = predicate_dim = 4
            table_mlp = Sequential(Linear(4, 4), ReLU())  # one Linear only

        with pytest.raises(ReproError):
            InferenceSession(Odd())


class TestPickling:
    """Sessions ship to process-pool serving workers via pickle."""

    def test_roundtrip_preserves_forward_exactly(self, model):
        import pickle

        rng = np.random.default_rng(11)
        batch = random_batch(rng, 9)
        session = InferenceSession(model)
        expected = session.run(batch)
        restored = pickle.loads(pickle.dumps(session))
        np.testing.assert_array_equal(restored.run(batch), expected)
        assert restored.dtype == session.dtype
        assert restored.hidden_units == session.hidden_units

    def test_roundtrip_preserves_dtype_mode(self, model):
        import pickle

        session = InferenceSession(model, dtype=np.float32)
        restored = pickle.loads(pickle.dumps(session))
        assert restored.dtype == np.dtype(np.float32)
        rng = np.random.default_rng(12)
        batch = random_batch(rng, 3)
        np.testing.assert_array_equal(restored.run(batch), session.run(batch))

    def test_restored_session_has_fresh_private_pools(self, model):
        import pickle

        session = InferenceSession(model)
        rng = np.random.default_rng(13)
        session.run(random_batch(rng, 2))  # populate this thread's pool
        restored = pickle.loads(pickle.dumps(session))
        assert restored._pool() == {}  # pools never travel in the pickle
        assert restored._pools is not session._pools

    def test_pickle_is_a_weight_copy(self, model):
        import pickle

        rng = np.random.default_rng(14)
        batch = random_batch(rng, 4)
        session = InferenceSession(model)
        expected = session.run(batch)
        blob = pickle.dumps(session)
        # Mutating the original's snapshot must not reach the replica
        # restored afterwards (the pickle captured the bytes already).
        session._table_mlp.w1 += 1.0
        restored = pickle.loads(blob)
        np.testing.assert_array_equal(restored.run(batch), expected)
        session._table_mlp.w1 -= 1.0

"""Optimizer tests: convergence on convex problems and config validation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.nn import Adam, SGD, Tensor


def quadratic_loss(param: Tensor) -> Tensor:
    """(p - 3)^2 summed; unique minimum at p == 3."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward happened; must not crash or move p
        assert np.allclose(p.data, 1.0)

    def test_invalid_lr(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ReproError):
            SGD([p], lr=0.0)

    def test_invalid_momentum(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ReproError):
            SGD([p], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, Adam's first step is ~lr regardless of
        # gradient scale — the signature property of the update rule.
        p = Tensor(np.array([1000.0]), requires_grad=True)
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        assert abs(p.data[0] - 1000.0) == pytest.approx(0.01, rel=1e-3)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero data gradient
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_invalid_betas(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ReproError):
            Adam([p], betas=(1.0, 0.999))

    def test_empty_params_rejected(self):
        with pytest.raises(ReproError):
            Adam([])

    def test_param_without_requires_grad_rejected(self):
        with pytest.raises(ReproError):
            Adam([Tensor(np.ones(1))])

"""Loss function tests, including the q-error loss identity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.nn import MSELoss, QErrorLoss, Tensor


class TestMSE:
    def test_zero_at_perfect_fit(self):
        loss = MSELoss()(Tensor([0.5, 0.2]), np.array([0.5, 0.2]))
        assert loss.item() == pytest.approx(0.0)

    def test_value(self):
        loss = MSELoss()(Tensor([1.0, 0.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            MSELoss()(Tensor([1.0]), np.array([1.0, 2.0]))

    def test_gradient_direction(self):
        pred = Tensor(np.array([1.0]), requires_grad=True)
        MSELoss()(pred, np.array([0.0])).backward()
        assert pred.grad[0] > 0  # moving down reduces the loss


class TestQErrorLoss:
    def test_perfect_prediction_gives_one(self):
        loss_fn = QErrorLoss(log_max_card=np.log(1000.0))
        loss = loss_fn(Tensor([0.3]), np.array([0.3]))
        assert loss.item() == pytest.approx(1.0)

    def test_equals_cardinality_ratio(self):
        # pred/true normalized gap of d corresponds to a factor exp(d*L).
        span = np.log(10_000.0)
        loss_fn = QErrorLoss(log_max_card=span)
        gap = 0.25
        loss = loss_fn(Tensor([0.5 + gap]), np.array([0.5]))
        assert loss.item() == pytest.approx(np.exp(gap * span), rel=1e-9)

    def test_symmetric_over_and_under(self):
        loss_fn = QErrorLoss(log_max_card=5.0)
        over = loss_fn(Tensor([0.7]), np.array([0.5])).item()
        under = loss_fn(Tensor([0.3]), np.array([0.5])).item()
        assert over == pytest.approx(under)

    def test_invalid_span(self):
        with pytest.raises(ReproError):
            QErrorLoss(log_max_card=0.0)

    def test_gradient_signs(self):
        loss_fn = QErrorLoss(log_max_card=5.0)
        over = Tensor(np.array([0.8]), requires_grad=True)
        loss_fn(over, np.array([0.5])).backward()
        assert over.grad[0] > 0
        under = Tensor(np.array([0.2]), requires_grad=True)
        loss_fn(under, np.array([0.5])).backward()
        assert under.grad[0] < 0

    def test_clamp_prevents_overflow(self):
        # Wild predictions outside [0,1] are clamped before the exp.
        loss_fn = QErrorLoss(log_max_card=50.0)
        loss = loss_fn(Tensor([10.0]), np.array([0.0]))
        assert np.isfinite(loss.item())

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_at_least_one(self, pred, target):
        loss_fn = QErrorLoss(log_max_card=8.0)
        loss = loss_fn(Tensor([pred]), np.array([target]))
        assert loss.item() >= 1.0 - 1e-9

    def test_batch_mean(self):
        loss_fn = QErrorLoss(log_max_card=1.0)
        a = loss_fn(Tensor([0.5, 0.5]), np.array([0.5, 0.5])).item()
        assert a == pytest.approx(1.0)

"""Weight serialization round-trips and failure modes."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn import (
    Sigmoid,
    Tensor,
    load_module,
    mlp,
    save_module,
    state_dict_from_bytes,
    state_dict_to_bytes,
)


class TestBytesRoundtrip:
    def test_state_roundtrip(self):
        net = mlp([3, 8, 1], rng=0)
        blob = state_dict_to_bytes(net.state_dict(), meta={"kind": "test"})
        state, meta = state_dict_from_bytes(blob)
        assert meta == {"kind": "test"}
        for name, value in net.state_dict().items():
            assert np.array_equal(state[name], value)

    def test_loaded_model_predicts_identically(self):
        a = mlp([4, 6, 1], rng=0, final_activation=Sigmoid)
        b = mlp([4, 6, 1], rng=123, final_activation=Sigmoid)
        state, _ = state_dict_from_bytes(state_dict_to_bytes(a.state_dict()))
        b.load_state_dict(state)
        x = Tensor(np.linspace(0, 1, 8).reshape(2, 4))
        assert np.array_equal(a(x).numpy(), b(x).numpy())

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            state_dict_from_bytes(b"not a payload at all")

    def test_missing_header_rejected(self):
        import io

        buffer = io.BytesIO()
        np.savez(buffer, foo=np.ones(3))
        with pytest.raises(SerializationError):
            state_dict_from_bytes(buffer.getvalue())


class TestFileRoundtrip:
    def test_save_load_module(self, tmp_path):
        path = str(tmp_path / "model.npz")
        a = mlp([3, 5, 1], rng=0)
        size = save_module(a, path, meta={"epochs": 3})
        assert size > 0
        b = mlp([3, 5, 1], rng=7)
        meta = load_module(b, path)
        assert meta == {"epochs": 3}
        x = Tensor(np.ones((1, 3)))
        assert np.array_equal(a(x).numpy(), b(x).numpy())

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_module(mlp([3, 5, 1], rng=0), path)
        with pytest.raises(SerializationError):
            load_module(mlp([4, 5, 1], rng=0), path)

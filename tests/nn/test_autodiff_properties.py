"""Property-based gradient checking: engine gradients must agree with
central-difference numerical gradients for randomly composed expressions."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.nn import Tensor

# Moderate magnitudes keep the numerical differentiation well-conditioned.
elements = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, width=64)
small_arrays = st.lists(elements, min_size=1, max_size=6).map(
    lambda xs: np.asarray(xs, dtype=np.float64)
)


def numeric_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    for i in range(x.size):
        bump = np.zeros_like(x)
        bump.ravel()[i] = eps
        grad.ravel()[i] = (fn(x + bump) - fn(x - bump)) / (2 * eps)
    return grad


def check(fn_tensor, fn_raw, x, atol=2e-4):
    t = Tensor(x, requires_grad=True)
    out = fn_tensor(t)
    out.backward()
    expected = numeric_grad(fn_raw, x)
    assert np.allclose(t.grad, expected, atol=atol), (t.grad, expected)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_sigmoid_chain(x):
    check(
        lambda t: (t.sigmoid() * 3.0).sum(),
        lambda v: float((1 / (1 + np.exp(-v)) * 3.0).sum()),
        x,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_tanh_square(x):
    check(
        lambda t: (t.tanh() * t.tanh()).sum(),
        lambda v: float((np.tanh(v) ** 2).sum()),
        x,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_exp_mean(x):
    check(
        lambda t: t.exp().mean(),
        lambda v: float(np.exp(v).mean()),
        x,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_rational(x):
    check(
        lambda t: (t / (t * t + 2.0)).sum(),
        lambda v: float((v / (v * v + 2.0)).sum()),
        x,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays, small_arrays)
def test_outer_product_sum(x, y):
    # x (n,1) @ y (1,m) — checks matmul gradients with broadcasting shapes.
    def fn_tensor(t):
        return (t.reshape(t.size, 1) @ Tensor(y.reshape(1, y.size))).sum()

    def fn_raw(v):
        return float((v.reshape(v.size, 1) @ y.reshape(1, y.size)).sum())

    check(fn_tensor, fn_raw, x)


@settings(max_examples=40, deadline=None)
@given(st.lists(elements, min_size=4, max_size=4))
def test_mlp_like_expression(vals):
    """A 2-layer MLP-shaped expression wrt its weight matrix."""
    x = np.asarray(vals, dtype=np.float64).reshape(2, 2)

    w2 = np.array([[0.5], [-0.25]])

    def fn_tensor(t):
        h = (Tensor(np.ones((3, 2))) @ t).relu()
        return (h @ Tensor(w2)).sigmoid().sum()

    def fn_raw(v):
        h = np.maximum(np.ones((3, 2)) @ v, 0.0)
        return float((1 / (1 + np.exp(-(h @ w2)))).sum())

    # ReLU kinks make numerical gradients unreliable near zero: skip
    # inputs whose pre-activation lands within the finite-difference
    # neighbourhood of the kink.
    x = x + 0.1 * np.sign(x) + 0.05
    pre_activation = np.ones((3, 2)) @ x
    assume(np.all(np.abs(pre_activation) > 1e-3))
    check(fn_tensor, fn_raw, x, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_grad_linear_in_cotangent(x):
    """backward(2g) accumulates exactly twice backward(g)."""
    t1 = Tensor(x, requires_grad=True)
    y1 = t1 * x  # elementwise, non-scalar output
    y1.backward(np.ones_like(x))
    t2 = Tensor(x, requires_grad=True)
    y2 = t2 * x
    y2.backward(2.0 * np.ones_like(x))
    assert np.allclose(2.0 * t1.grad, t2.grad)

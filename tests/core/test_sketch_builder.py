"""DeepSketch + SketchBuilder tests (the end-to-end core pipeline)."""

import numpy as np
import pytest

from repro.core import DeepSketch, SketchBuilder, SketchConfig, STAGES
from repro.db import execute_count, parse_sql
from repro.errors import FeaturizationError, SketchError
from repro.workload import Predicate, Query, TableRef, spec_for_imdb


@pytest.fixture(scope="module")
def sketch_and_report(request):
    return request.getfixturevalue("trained_sketch")


class TestBuilder:
    def test_report_stages(self, sketch_and_report):
        _, report = sketch_and_report
        assert set(report.stage_seconds) == set(STAGES)
        assert report.total_seconds > 0

    def test_zero_queries_dropped_counted(self, sketch_and_report):
        _, report = sketch_and_report
        assert report.n_queries_generated == 800
        assert 0 <= report.n_zero_cardinality_dropped < 800

    def test_training_attached(self, sketch_and_report):
        _, report = sketch_and_report
        assert report.training is not None
        assert len(report.training.epochs) == 6

    def test_progress_events(self, imdb_small):
        events = []
        builder = SketchBuilder(
            imdb_small,
            spec_for_imdb(),
            config=SketchConfig(
                n_training_queries=100, epochs=2, sample_size=50, hidden_units=8
            ),
            progress=events.append,
        )
        builder.build("progress-test")
        stages_seen = [e.stage for e in events]
        for stage in STAGES:
            assert stage in stages_seen
        # train stage fires once per epoch
        assert sum(1 for e in events if e.stage == "train") == 2
        assert all(0.0 <= e.fraction <= 1.0 for e in events)

    def test_config_validation(self):
        with pytest.raises(SketchError):
            SketchConfig(sample_size=0)
        with pytest.raises(SketchError):
            SketchConfig(n_training_queries=5)


class TestSketchEstimation:
    def test_estimate_structured_query(self, sketch_and_report):
        sketch, _ = sketch_and_report
        query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", ">", 2000),),
        )
        estimate = sketch.estimate(query)
        assert estimate >= 1.0
        assert np.isfinite(estimate)

    def test_estimate_sql_string(self, sketch_and_report):
        sketch, _ = sketch_and_report
        estimate = sketch.estimate(
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2005;"
        )
        assert estimate >= 1.0

    def test_estimate_many_matches_single(self, sketch_and_report):
        sketch, _ = sketch_and_report
        queries = [
            Query(
                tables=(TableRef("title", "t"),),
                predicates=(Predicate("t", "production_year", "=", year),),
            )
            for year in (1990, 2000, 2010)
        ]
        batched = sketch.estimate_many(queries)
        singles = np.array([sketch.estimate(q) for q in queries])
        assert np.allclose(batched, singles)

    def test_estimate_many_empty(self, sketch_and_report):
        sketch, _ = sketch_and_report
        assert sketch.estimate_many([]).size == 0

    def test_estimates_are_learned_not_constant(self, sketch_and_report):
        sketch, _ = sketch_and_report
        narrow = sketch.estimate(
            "SELECT COUNT(*) FROM title t WHERE t.production_year=2015;"
        )
        wide = sketch.estimate(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>1900;"
        )
        assert wide > narrow

    def test_reasonable_accuracy_on_training_distribution(
        self, sketch_and_report, imdb_small
    ):
        """The trained sketch must beat wild guessing on simple queries."""
        from repro.metrics import qerror
        from repro.workload import TrainingQueryGenerator

        sketch, _ = sketch_and_report
        generator = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=123)
        errors = []
        for query in generator.draw_many(60):
            truth = execute_count(imdb_small, query)
            if truth == 0:
                continue
            errors.append(qerror(sketch.estimate(query), truth))
        assert np.median(errors) < 10.0

    def test_query_outside_vocabulary_rejected(self, sketch_and_report):
        sketch, _ = sketch_and_report
        with pytest.raises(SketchError):
            sketch.estimate("SELECT COUNT(*) FROM keyword k;")

    def test_range_operators_servable(self, sketch_and_report):
        """The demo's year-grouping templates issue >=/< range queries
        against the sketch; those operators must featurize even though
        training only used {=, <, >}."""
        sketch, _ = sketch_and_report
        estimate = sketch.estimate(
            "SELECT COUNT(*) FROM title t "
            "WHERE t.production_year>=2000 AND t.production_year<2010;"
        )
        assert estimate >= 1.0

    def test_tables_property(self, sketch_and_report):
        sketch, _ = sketch_and_report
        assert "title" in sketch.tables
        assert "movie_keyword" in sketch.tables


class TestSketchSerialization:
    def test_bytes_roundtrip_estimates_identical(self, sketch_and_report):
        sketch, _ = sketch_and_report
        clone = DeepSketch.from_bytes(sketch.to_bytes())
        sql = (
            "SELECT COUNT(*) FROM title t, cast_info ci "
            "WHERE ci.movie_id=t.id AND ci.role_id=1;"
        )
        assert clone.estimate(sql) == pytest.approx(sketch.estimate(sql))
        assert clone.name == sketch.name
        assert clone.metadata == sketch.metadata

    def test_file_roundtrip(self, sketch_and_report, tmp_path):
        sketch, _ = sketch_and_report
        path = str(tmp_path / "sketch.bin")
        size = sketch.save(path)
        assert size == sketch.footprint_bytes()
        clone = DeepSketch.load(path)
        assert clone.samples.sample_size == sketch.samples.sample_size

    def test_footprint_is_compact(self, sketch_and_report):
        """Paper: 'Deep Sketches feature a small footprint size (a few
        MiBs)' — at our reduced sample size it must be well under one."""
        sketch, _ = sketch_and_report
        assert sketch.footprint_bytes() < 4 * 1024 * 1024

    def test_corrupt_payload_rejected(self):
        with pytest.raises(Exception) as err:
            DeepSketch.from_bytes(b"garbage")
        # SerializationError or SketchError, both under ReproError.
        from repro.errors import ReproError

        assert isinstance(err.value, ReproError)

    def test_repr_mentions_name(self, sketch_and_report):
        sketch, _ = sketch_and_report
        assert "test-sketch" in repr(sketch)

"""Trainer tests: loss decreases, validation tracking, configuration."""

import numpy as np
import pytest

from repro.core import (
    MSCN,
    Featurizer,
    Trainer,
    TrainingConfig,
    TrainingSet,
    validation_qerrors,
)
from repro.core.featurization import QueryFeatures
from repro.errors import TrainingError


def synthetic_dataset(n=120, seed=0):
    """A learnable synthetic task: label is a linear readout of features."""
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for _ in range(n):
        tables = rng.random((2, 4))
        joins = rng.random((1, 3))
        predicates = rng.random((2, 5))
        features.append(QueryFeatures(tables, joins, predicates))
        signal = tables.mean() * 0.5 + predicates.mean() * 0.5
        labels.append(np.clip(signal, 0.0, 1.0))
    return TrainingSet(features, np.array(labels))


@pytest.fixture
def featurizer():
    f = Featurizer(
        tables=["a", "b"], joins=["j"], columns=["a.x"], operators=["="],
        sample_size=2, column_bounds={"a.x": (0.0, 1.0)},
    )
    f.fit_labels(np.array([1.0, 10_000.0]))
    return f


class TestConfig:
    def test_invalid_epochs(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)

    def test_invalid_loss(self):
        with pytest.raises(TrainingError):
            TrainingConfig(loss="huber")


class TestTrainer:
    def make_trainer(self, featurizer, loss="qerror", epochs=8):
        model = MSCN(table_dim=4, join_dim=3, predicate_dim=5, hidden_units=16, seed=0)
        return Trainer(
            model,
            featurizer,
            TrainingConfig(epochs=epochs, batch_size=32, loss=loss),
        )

    def test_loss_decreases(self, featurizer):
        trainer = self.make_trainer(featurizer)
        result = trainer.fit(synthetic_dataset())
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss

    def test_mse_loss_variant(self, featurizer):
        trainer = self.make_trainer(featurizer, loss="mse", epochs=5)
        result = trainer.fit(synthetic_dataset())
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss

    def test_epoch_count_and_fields(self, featurizer):
        trainer = self.make_trainer(featurizer, epochs=4)
        result = trainer.fit(synthetic_dataset())
        assert len(result.epochs) == 4
        for i, stats in enumerate(result.epochs, start=1):
            assert stats.epoch == i
            assert stats.val_qerror_mean >= 1.0
            assert stats.val_qerror_median >= 1.0
            assert stats.seconds >= 0.0

    def test_callback_invoked_per_epoch(self, featurizer):
        trainer = self.make_trainer(featurizer, epochs=3)
        calls = []
        trainer.fit(synthetic_dataset(), callback=calls.append)
        assert [c.epoch for c in calls] == [1, 2, 3]

    def test_validation_summary_present(self, featurizer):
        trainer = self.make_trainer(featurizer, epochs=2)
        result = trainer.fit(synthetic_dataset())
        assert result.validation_summary is not None
        assert result.validation_summary.median >= 1.0

    def test_curves(self, featurizer):
        trainer = self.make_trainer(featurizer, epochs=3)
        result = trainer.fit(synthetic_dataset())
        assert result.loss_curve().shape == (3,)
        assert result.val_curve().shape == (3,)
        assert result.final_val_mean_qerror == result.epochs[-1].val_qerror_mean

    def test_too_small_dataset_rejected(self, featurizer):
        trainer = self.make_trainer(featurizer)
        with pytest.raises(TrainingError):
            trainer.fit(synthetic_dataset(n=5))

    def test_deterministic_given_seed(self, featurizer):
        r1 = self.make_trainer(featurizer, epochs=2).fit(synthetic_dataset(), seed=4)
        r2 = self.make_trainer(featurizer, epochs=2).fit(synthetic_dataset(), seed=4)
        assert r1.epochs[-1].train_loss == pytest.approx(r2.epochs[-1].train_loss)

    def test_validation_qerrors_all_at_least_one(self, featurizer):
        model = MSCN(4, 3, 5, hidden_units=8, seed=0)
        errors = validation_qerrors(model, featurizer, synthetic_dataset(n=30))
        assert (errors >= 1.0).all()


class TestEarlyStopping:
    def make_trainer(self, featurizer, patience, epochs=40):
        model = MSCN(table_dim=4, join_dim=3, predicate_dim=5, hidden_units=16, seed=0)
        return Trainer(
            model,
            featurizer,
            TrainingConfig(epochs=epochs, batch_size=32, patience=patience),
        )

    def test_stops_before_budget_with_tight_patience(self, featurizer):
        trainer = self.make_trainer(featurizer, patience=1)
        result = trainer.fit(synthetic_dataset())
        # Validation is noisy, so patience=1 stops at the first plateau,
        # well before 40 epochs on this small task.
        assert result.stopped_early
        assert len(result.epochs) < 40

    def test_no_patience_runs_all_epochs(self, featurizer):
        trainer = self.make_trainer(featurizer, patience=None, epochs=5)
        result = trainer.fit(synthetic_dataset())
        assert not result.stopped_early
        assert len(result.epochs) == 5

    def test_invalid_patience(self):
        with pytest.raises(TrainingError):
            TrainingConfig(patience=0)

"""Featurization tests: one-hot layout, normalization, vocabularies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Featurizer
from repro.errors import FeaturizationError
from repro.sampling import query_bitmaps
from repro.workload import (
    JoinEdge,
    Predicate,
    Query,
    TableRef,
    spec_for_imdb,
)


@pytest.fixture(scope="module")
def featurizer(request):
    imdb = request.getfixturevalue("imdb_small")
    f = Featurizer.build(imdb, spec_for_imdb(), sample_size=100)
    f.fit_labels(np.array([1.0, 10.0, 100.0, 100_000.0]))
    return f


def star_query(predicates=()):
    return Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=tuple(predicates),
    )


class TestVocabularies:
    def test_tables_sorted(self, featurizer):
        assert featurizer.tables == sorted(featurizer.tables)
        assert "title" in featurizer.tables

    def test_joins_are_fk_signatures(self, featurizer):
        assert "movie_keyword.movie_id=title.id" in featurizer.joins
        # dimension-table joins outside the spec's table set are excluded
        assert not any("keyword.id" in j for j in featurizer.joins)

    def test_predicate_columns(self, featurizer):
        assert "title.production_year" in featurizer.columns
        assert "cast_info.role_id" in featurizer.columns

    def test_dims(self, featurizer):
        assert featurizer.table_dim == len(featurizer.tables) + 100
        assert featurizer.join_dim == len(featurizer.joins)
        assert (
            featurizer.predicate_dim
            == len(featurizer.columns) + len(featurizer.operators) + 1
        )


class TestLabelNormalization:
    def test_bounds_from_fit(self, featurizer):
        assert featurizer.min_log_label == pytest.approx(0.0)
        assert featurizer.max_log_label == pytest.approx(np.log(100_000.0))

    def test_roundtrip(self, featurizer):
        for cardinality in (1.0, 5.0, 123.0, 99_999.0):
            norm = featurizer.normalize_label(cardinality)
            assert 0.0 <= norm <= 1.0
            assert featurizer.denormalize_label(norm) == pytest.approx(
                cardinality, rel=1e-9
            )

    def test_clipping_outside_range(self, featurizer):
        assert featurizer.normalize_label(10**9) == 1.0
        assert featurizer.normalize_label(0.5) == 0.0

    def test_empty_fit_rejected(self, featurizer):
        with pytest.raises(FeaturizationError):
            Featurizer(
                tables=[], joins=[], columns=[], operators=["="],
                sample_size=10, column_bounds={},
            ).fit_labels(np.array([]))

    def test_vectorized_normalize_matches_scalar(self, featurizer):
        cards = np.array([0.25, 1.0, 7.0, 123.0, 99_999.0, 1e9])
        vector = featurizer.normalize_label(cards)
        assert isinstance(vector, np.ndarray) and vector.dtype == np.float64
        scalar = [featurizer.normalize_label(float(c)) for c in cards]
        np.testing.assert_array_equal(vector, scalar)  # bit-identical

    def test_vectorized_denormalize_matches_scalar(self, featurizer):
        values = np.array([-0.1, 0.0, 0.33, 0.5, 1.0, 1.7])
        vector = featurizer.denormalize_label(values)
        assert isinstance(vector, np.ndarray) and vector.dtype == np.float64
        scalar = [featurizer.denormalize_label(float(v)) for v in values]
        np.testing.assert_array_equal(vector, scalar)  # bit-identical

    def test_scalar_inputs_still_return_floats(self, featurizer):
        assert isinstance(featurizer.normalize_label(42), float)
        assert isinstance(featurizer.denormalize_label(0.5), float)
        assert isinstance(featurizer.denormalize_label(np.float64(0.5)), float)

    def test_vectorized_roundtrip(self, featurizer):
        cards = np.array([1.0, 5.0, 123.0, 99_999.0])
        np.testing.assert_allclose(
            featurizer.denormalize_label(featurizer.normalize_label(cards)),
            cards,
            rtol=1e-9,
        )


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1.0, max_value=1e8))
def test_label_roundtrip_property(cardinality):
    f = Featurizer(
        tables=["t"], joins=[], columns=[], operators=["="],
        sample_size=1, column_bounds={},
    )
    f.fit_labels(np.array([1.0, 1e8]))
    norm = f.normalize_label(cardinality)
    assert 0.0 <= norm <= 1.0
    assert f.denormalize_label(norm) == pytest.approx(cardinality, rel=1e-6)


class TestQueryFeaturization:
    def test_shapes(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        query = star_query([Predicate("t", "production_year", ">", 2000)])
        features = featurizer.featurize_query(
            query, query_bitmaps(imdb_samples, query), db=imdb
        )
        assert features.tables.shape == (2, featurizer.table_dim)
        assert features.joins.shape == (1, featurizer.join_dim)
        assert features.predicates.shape == (1, featurizer.predicate_dim)

    def test_table_one_hot_plus_bitmap(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        query = star_query()
        features = featurizer.featurize_query(
            query, query_bitmaps(imdb_samples, query), db=imdb
        )
        n_tables = len(featurizer.tables)
        for row in features.tables:
            assert row[:n_tables].sum() == 1.0  # exactly one table bit
            assert np.all((row[n_tables:] == 0) | (row[n_tables:] == 1))

    def test_empty_join_set_is_zero_row(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        query = Query(tables=(TableRef("title", "t"),))
        features = featurizer.featurize_query(
            query, query_bitmaps(imdb_samples, query), db=imdb
        )
        assert features.joins.shape == (1, featurizer.join_dim)
        assert not features.joins.any()

    def test_empty_predicate_set_is_zero_row(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        features = featurizer.featurize_query(
            star_query(), query_bitmaps(imdb_samples, star_query()), db=imdb
        )
        assert not features.predicates.any()

    def test_literal_normalized_to_unit_interval(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        lo, hi = featurizer.column_bounds["title.production_year"]
        mid_year = int((lo + hi) / 2)
        query = star_query([Predicate("t", "production_year", "=", mid_year)])
        features = featurizer.featurize_query(
            query, query_bitmaps(imdb_samples, query), db=imdb
        )
        value = features.predicates[0, -1]
        assert 0.4 < value < 0.6

    def test_unknown_table_rejected(self, featurizer, imdb_samples):
        query = Query(tables=(TableRef("keyword", "k"),))
        with pytest.raises(FeaturizationError):
            featurizer.featurize_query(query, {"k": np.zeros(100)})

    def test_unknown_column_rejected(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        with pytest.raises(FeaturizationError):
            featurizer.featurize_query(query, query_bitmaps(imdb_samples, query), db=imdb)

    def test_unknown_operator_rejected(self, request, featurizer, imdb_samples):
        imdb = request.getfixturevalue("imdb_small")
        restricted = Featurizer.from_manifest(featurizer.to_manifest())
        restricted.operators = ["="]  # simulate a narrow legacy sketch
        query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", "<>", 2000),),
        )
        with pytest.raises(FeaturizationError):
            restricted.featurize_query(query, query_bitmaps(imdb_samples, query), db=imdb)

    def test_full_operator_vocabulary(self, featurizer):
        """Templates need >=/</IN even when training used only {=, <, >}."""
        assert set(featurizer.operators) == {
            "=", "<", ">", "<=", ">=", "<>", "in",
        }

    def test_missing_bitmap_rejected(self, featurizer):
        with pytest.raises(FeaturizationError):
            featurizer.featurize_query(star_query(), {"t": np.zeros(100)})

    def test_wrong_bitmap_shape_rejected(self, featurizer):
        with pytest.raises(FeaturizationError):
            featurizer.featurize_query(
                star_query(), {"t": np.zeros(7), "mk": np.zeros(7)}
            )


class TestManifestRoundtrip:
    def test_roundtrip(self, featurizer):
        restored = Featurizer.from_manifest(featurizer.to_manifest())
        assert restored.tables == featurizer.tables
        assert restored.joins == featurizer.joins
        assert restored.columns == featurizer.columns
        assert restored.column_bounds == featurizer.column_bounds
        assert restored.max_log_label == featurizer.max_log_label

    def test_malformed_rejected(self):
        with pytest.raises(FeaturizationError):
            Featurizer.from_manifest({"tables": []})

"""MSCN model tests: shapes, set semantics, gradients, serialization."""

import numpy as np
import pytest

from repro.core import MSCN, collate
from repro.core.featurization import QueryFeatures
from repro.errors import TrainingError


def features(n_tables=2, n_joins=1, n_preds=2, td=6, jd=4, pd=5, rng=None):
    rng = rng or np.random.default_rng(0)
    return QueryFeatures(
        tables=rng.random((n_tables, td)),
        joins=rng.random((n_joins, jd)),
        predicates=rng.random((n_preds, pd)),
    )


@pytest.fixture
def model():
    return MSCN(table_dim=6, join_dim=4, predicate_dim=5, hidden_units=16, seed=0)


class TestForward:
    def test_output_shape_and_range(self, model):
        batch = collate([features(), features(n_tables=3)])
        out = model(batch)
        assert out.shape == (2,)
        assert np.all((out.numpy() > 0) & (out.numpy() < 1))

    def test_deterministic(self, model):
        batch = collate([features()])
        assert model(batch).numpy() == model(batch).numpy()

    def test_same_seed_same_model(self):
        a = MSCN(6, 4, 5, hidden_units=8, seed=3)
        b = MSCN(6, 4, 5, hidden_units=8, seed=3)
        batch = collate([features()])
        assert np.array_equal(a(batch).numpy(), b(batch).numpy())

    def test_invalid_hidden_units(self):
        with pytest.raises(TrainingError):
            MSCN(6, 4, 5, hidden_units=0)


class TestSetSemantics:
    def test_permutation_invariance(self, model):
        """Reordering set elements must not change the estimate —
        the core Deep Sets property of the architecture."""
        rng = np.random.default_rng(7)
        f = features(n_tables=4, n_joins=3, n_preds=3, rng=rng)
        batch1 = collate([f])
        shuffled = QueryFeatures(
            tables=f.tables[::-1].copy(),
            joins=f.joins[[2, 0, 1]].copy(),
            predicates=f.predicates[[1, 2, 0]].copy(),
        )
        batch2 = collate([shuffled])
        assert np.allclose(model(batch1).numpy(), model(batch2).numpy())

    def test_padding_does_not_change_output(self, model):
        f = features(n_tables=2)
        alone = model(collate([f])).numpy()[0]
        padded = model(collate([f, features(n_tables=5)])).numpy()[0]
        assert alone == pytest.approx(padded, abs=1e-12)


class TestGradients:
    def test_all_parameters_receive_gradients(self, model):
        batch = collate([features(), features()])
        loss = (model(batch) * 1.0).sum()
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
            assert np.isfinite(param.grad).all()

    def test_num_parameters_formula(self, model):
        h = 16
        expected = (
            (6 * h + h) + (h * h + h)      # table mlp
            + (4 * h + h) + (h * h + h)    # join mlp
            + (5 * h + h) + (h * h + h)    # predicate mlp
            + (3 * h * h + h) + (h * 1 + 1)  # output mlp
        )
        assert model.num_parameters() == expected


class TestArchitectureRoundtrip:
    def test_roundtrip(self, model):
        arch = model.architecture()
        clone = MSCN.from_architecture(arch)
        clone.load_state_dict(model.state_dict())
        batch = collate([features()])
        assert np.array_equal(model(batch).numpy(), clone(batch).numpy())

    def test_malformed_rejected(self):
        with pytest.raises(TrainingError):
            MSCN.from_architecture({"table_dim": 5})

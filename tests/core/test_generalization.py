"""Template-level generalization evaluation and experiment."""

import math

import pytest

from repro.core import (
    SketchConfig,
    evaluate_on_suite,
    run_generalization_experiment,
)
from repro.errors import TrainingError
from repro.workload import (
    SuiteConfig,
    generate_template_suite,
    spec_for_imdb,
)


@pytest.fixture(scope="module")
def labeled(request):
    imdb = request.getfixturevalue("imdb_small")
    suite = generate_template_suite(
        imdb,
        spec_for_imdb(max_joins=2),
        SuiteConfig(n_templates=6, queries_per_template=12, max_joins=2),
        seed=31,
    )
    return suite.label(imdb, min_queries_per_template=4)


@pytest.fixture(scope="module")
def report(request, labeled):
    imdb = request.getfixturevalue("imdb_small")
    return run_generalization_experiment(
        imdb,
        spec_for_imdb(max_joins=2),
        labeled,
        sketch_config=SketchConfig(sample_size=50, epochs=2, hidden_units=16, seed=1),
        test_fraction=0.34,
        holdout_fraction=0.25,
        seed=17,
        name="gen-test",
    )


class TestEvaluateOnSuite:
    def test_per_template_chunking(self, trained_sketch, labeled):
        sketch, _ = trained_sketch
        result = evaluate_on_suite(sketch, labeled)
        assert set(result.per_template) == set(labeled.names)
        counts = {name: s.count for name, s in result.per_template.items()}
        assert counts == {e.name: len(e) for e in labeled.templates}
        assert result.overall.count == labeled.n_queries

    def test_qerrors_are_finite_and_at_least_one(self, trained_sketch, labeled):
        sketch, _ = trained_sketch
        result = evaluate_on_suite(sketch, labeled)
        for summary in result.per_template.values():
            assert math.isfinite(summary.max)
            assert summary.median >= 1.0

    def test_tails_block_shape(self, trained_sketch, labeled):
        sketch, _ = trained_sketch
        tails = evaluate_on_suite(sketch, labeled).tails()
        for block in tails.values():
            assert set(block) == {"p50", "p95", "p99", "max", "count"}

    def test_unlabeled_suite_rejected(self, trained_sketch, labeled):
        from repro.workload import TemplateQueries, TemplateSuite

        sketch, _ = trained_sketch
        unlabeled = TemplateSuite(
            templates=tuple(
                TemplateQueries(template=e.template, queries=e.queries)
                for e in labeled.templates
            )
        )
        with pytest.raises(TrainingError, match="labeled"):
            evaluate_on_suite(sketch, unlabeled)


class TestExperiment:
    def test_template_sides_are_disjoint(self, report, labeled):
        assert not set(report.train_templates) & set(report.test_templates)
        assert sorted(report.train_templates + report.test_templates) == sorted(
            labeled.names
        )

    def test_in_template_evaluates_training_templates_only(self, report):
        assert set(report.in_template.per_template) <= set(report.train_templates)
        assert set(report.cross_template.per_template) == set(report.test_templates)

    def test_cross_template_p99_is_worst_template(self, report):
        worst = max(s.p99 for s in report.cross_template.per_template.values())
        assert report.cross_template_p99 == worst

    def test_sketch_trained_on_subset(self, report, labeled):
        assert 0 < report.n_train_queries < labeled.n_queries

    def test_json_reports_both_splits(self, report):
        payload = report.to_json()
        assert payload["cross_template"]["p99"] == report.cross_template_p99
        for side in ("in_template", "cross_template"):
            assert payload[side]["per_template"]
            assert payload[side]["overall"]["median"] >= 1.0

"""Batch collation and training-set tests."""

import numpy as np
import pytest

from repro.core import TrainingSet, collate
from repro.core.featurization import QueryFeatures
from repro.errors import TrainingError


def fake_features(n_tables=2, n_joins=1, n_preds=1, td=5, jd=3, pd=4, fill=1.0):
    return QueryFeatures(
        tables=np.full((n_tables, td), fill),
        joins=np.full((n_joins, jd), fill),
        predicates=np.full((n_preds, pd), fill),
    )


class TestCollate:
    def test_padding_to_batch_max(self):
        batch = collate([fake_features(n_tables=1), fake_features(n_tables=3)])
        assert batch.tables.shape == (2, 3, 5)
        assert batch.table_mask.tolist() == [[1, 0, 0], [1, 1, 1]]

    def test_padded_region_is_zero(self):
        batch = collate([fake_features(n_preds=1, fill=9.0), fake_features(n_preds=2, fill=9.0)])
        assert np.all(batch.predicates[0, 1] == 0.0)

    def test_mask_counts_real_elements(self):
        batch = collate([fake_features(n_joins=2), fake_features(n_joins=1)])
        assert batch.join_mask.sum(axis=1).tolist() == [2.0, 1.0]

    def test_empty_batch_rejected(self):
        with pytest.raises(TrainingError):
            collate([])

    def test_inconsistent_dims_rejected(self):
        with pytest.raises(TrainingError):
            collate([fake_features(td=5), fake_features(td=6)])

    def test_batch_size_property(self):
        batch = collate([fake_features()] * 4)
        assert batch.size == 4


class TestTrainingSet:
    def make_set(self, n=20):
        features = [fake_features() for _ in range(n)]
        labels = np.linspace(0, 1, n)
        return TrainingSet(features, labels)

    def test_length(self):
        assert len(self.make_set(13)) == 13

    def test_label_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            TrainingSet([fake_features()], np.array([0.1, 0.2]))

    def test_split_sizes(self):
        train, val = self.make_set(20).split(0.25, seed=0)
        assert len(val) == 5
        assert len(train) == 15

    def test_split_disjoint_and_complete(self):
        ds = self.make_set(10)
        # label values identify rows (all distinct)
        train, val = ds.split(0.3, seed=1)
        combined = sorted(np.concatenate([train.labels, val.labels]).tolist())
        assert combined == sorted(ds.labels.tolist())

    def test_split_invalid_fraction(self):
        with pytest.raises(TrainingError):
            self.make_set().split(0.0)
        with pytest.raises(TrainingError):
            self.make_set().split(1.0)

    def test_minibatches_cover_everything(self):
        ds = self.make_set(17)
        seen = []
        for batch, labels in ds.minibatches(5, shuffle=False):
            assert batch.size == len(labels)
            seen.extend(labels.tolist())
        assert sorted(seen) == sorted(ds.labels.tolist())

    def test_minibatch_shuffle_deterministic(self):
        ds = self.make_set(16)
        a = [l.tolist() for _, l in ds.minibatches(4, seed=3)]
        b = [l.tolist() for _, l in ds.minibatches(4, seed=3)]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            list(self.make_set().minibatches(0))

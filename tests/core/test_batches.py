"""Batch collation and training-set tests."""

import threading

import numpy as np
import pytest

from repro.core import TrainingSet, collate
from repro.core.batches import CollateScratch
from repro.core.featurization import QueryFeatures
from repro.errors import TrainingError


def fake_features(n_tables=2, n_joins=1, n_preds=1, td=5, jd=3, pd=4, fill=1.0):
    return QueryFeatures(
        tables=np.full((n_tables, td), fill),
        joins=np.full((n_joins, jd), fill),
        predicates=np.full((n_preds, pd), fill),
    )


class TestCollate:
    def test_padding_to_batch_max(self):
        batch = collate([fake_features(n_tables=1), fake_features(n_tables=3)])
        assert batch.tables.shape == (2, 3, 5)
        assert batch.table_mask.tolist() == [[1, 0, 0], [1, 1, 1]]

    def test_padded_region_is_zero(self):
        batch = collate([fake_features(n_preds=1, fill=9.0), fake_features(n_preds=2, fill=9.0)])
        assert np.all(batch.predicates[0, 1] == 0.0)

    def test_mask_counts_real_elements(self):
        batch = collate([fake_features(n_joins=2), fake_features(n_joins=1)])
        assert batch.join_mask.sum(axis=1).tolist() == [2.0, 1.0]

    def test_empty_batch_rejected(self):
        with pytest.raises(TrainingError):
            collate([])

    def test_inconsistent_dims_rejected(self):
        with pytest.raises(TrainingError):
            collate([fake_features(td=5), fake_features(td=6)])

    def test_batch_size_property(self):
        batch = collate([fake_features()] * 4)
        assert batch.size == 4

    def test_default_dtype_is_float64(self):
        batch = collate([fake_features()])
        assert batch.dtype == np.float64
        assert batch.table_mask.dtype == np.float64

    def test_float32_opt_in(self):
        batch = collate([fake_features(), fake_features(n_preds=3)], dtype=np.float32)
        for array in (batch.tables, batch.table_mask, batch.joins,
                      batch.join_mask, batch.predicates, batch.predicate_mask):
            assert array.dtype == np.float32
        reference = collate([fake_features(), fake_features(n_preds=3)])
        np.testing.assert_array_equal(batch.tables, reference.tables)
        np.testing.assert_array_equal(batch.predicate_mask, reference.predicate_mask)

    def test_astype_roundtrip(self):
        batch = collate([fake_features(fill=0.5)])
        f32 = batch.astype(np.float32)
        assert f32.dtype == np.float32
        np.testing.assert_array_equal(f32.tables, batch.tables)


class TestCollateScratch:
    def test_scratch_matches_plain_collation(self):
        features = [fake_features(n_tables=1, n_preds=2), fake_features(n_tables=3)]
        plain = collate(features)
        pooled = collate(features, scratch=CollateScratch())
        for name in ("tables", "table_mask", "joins", "join_mask",
                     "predicates", "predicate_mask"):
            np.testing.assert_array_equal(getattr(pooled, name), getattr(plain, name))

    def test_same_shape_reuses_buffers(self):
        scratch = CollateScratch()
        features = [fake_features(fill=3.0), fake_features(fill=3.0)]
        first = collate(features, scratch=scratch)
        second = collate([fake_features(fill=5.0), fake_features(fill=5.0)], scratch=scratch)
        assert second.tables is first.tables  # pooled: same buffer object
        assert np.all(second.tables == 5.0)  # fully re-zeroed and refilled

    def test_sets_with_equal_shapes_do_not_alias(self):
        # join and predicate sets with identical (B, S, d) must come from
        # distinct pooled buffers within one collation.
        features = [fake_features(n_joins=2, n_preds=2, jd=4, pd=4)]
        batch = collate(features, scratch=CollateScratch())
        assert batch.joins is not batch.predicates
        assert batch.join_mask is not batch.table_mask

    def test_scratch_is_thread_local(self):
        scratch = CollateScratch()
        features = [fake_features(fill=2.0)]
        main_batch = collate(features, scratch=scratch)
        seen = {}

        def worker():
            seen["batch"] = collate(features, scratch=scratch)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["batch"].tables is not main_batch.tables
        np.testing.assert_array_equal(seen["batch"].tables, main_batch.tables)


class TestTrainingSet:
    def make_set(self, n=20):
        features = [fake_features() for _ in range(n)]
        labels = np.linspace(0, 1, n)
        return TrainingSet(features, labels)

    def test_length(self):
        assert len(self.make_set(13)) == 13

    def test_label_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            TrainingSet([fake_features()], np.array([0.1, 0.2]))

    def test_split_sizes(self):
        train, val = self.make_set(20).split(0.25, seed=0)
        assert len(val) == 5
        assert len(train) == 15

    def test_split_disjoint_and_complete(self):
        ds = self.make_set(10)
        # label values identify rows (all distinct)
        train, val = ds.split(0.3, seed=1)
        combined = sorted(np.concatenate([train.labels, val.labels]).tolist())
        assert combined == sorted(ds.labels.tolist())

    def test_split_invalid_fraction(self):
        with pytest.raises(TrainingError):
            self.make_set().split(0.0)
        with pytest.raises(TrainingError):
            self.make_set().split(1.0)

    def test_minibatches_cover_everything(self):
        ds = self.make_set(17)
        seen = []
        for batch, labels in ds.minibatches(5, shuffle=False):
            assert batch.size == len(labels)
            seen.extend(labels.tolist())
        assert sorted(seen) == sorted(ds.labels.tolist())

    def test_minibatch_shuffle_deterministic(self):
        ds = self.make_set(16)
        a = [l.tolist() for _, l in ds.minibatches(4, seed=3)]
        b = [l.tolist() for _, l in ds.minibatches(4, seed=3)]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            list(self.make_set().minibatches(0))


class TestPrecollation:
    """Minibatches now come from one dataset-wide padded batch."""

    def ragged_set(self, n=19):
        rng = np.random.default_rng(4)
        features = [
            fake_features(
                n_tables=int(rng.integers(1, 4)),
                n_joins=int(rng.integers(1, 3)),
                n_preds=int(rng.integers(1, 5)),
                fill=float(i + 1),
            )
            for i in range(n)
        ]
        return TrainingSet(features, np.linspace(0, 1, n))

    def test_precollated_is_cached(self):
        ds = self.ragged_set()
        assert ds.precollated() is ds.precollated()

    def test_minibatches_match_legacy_collation(self):
        """Each yielded batch equals collating those queries directly,
        modulo extra all-zero masked padding out to dataset maxima."""
        ds = self.ragged_set()
        order = np.arange(len(ds))
        for start, (batch, labels) in zip(
            range(0, len(ds), 5), ds.minibatches(5, shuffle=False)
        ):
            idx = order[start : start + 5]
            legacy = collate([ds.features[i] for i in idx])
            for name in ("tables", "joins", "predicates"):
                wide = getattr(batch, name)
                narrow = getattr(legacy, name)
                s = narrow.shape[1]
                np.testing.assert_array_equal(wide[:, :s, :], narrow)
                assert np.all(wide[:, s:, :] == 0.0)
            for name in ("table_mask", "join_mask", "predicate_mask"):
                wide = getattr(batch, name)
                narrow = getattr(legacy, name)
                s = narrow.shape[1]
                np.testing.assert_array_equal(wide[:, :s], narrow)
                assert np.all(wide[:, s:] == 0.0)
            np.testing.assert_array_equal(labels, ds.labels[idx])

    def test_model_outputs_unchanged_by_dataset_padding(self):
        """Dataset-maxima padding is invisible through the masked mean."""
        from repro.core.mscn import MSCN

        ds = self.ragged_set()
        model = MSCN(5, 3, 4, hidden_units=8, seed=0)
        model.eval()
        for (batch, _), start in zip(
            ds.minibatches(7, shuffle=False), range(0, len(ds), 7)
        ):
            legacy = collate(ds.features[start : start + 7])
            np.testing.assert_allclose(
                model(batch).numpy(), model(legacy).numpy(), rtol=1e-12
            )

    def test_shuffled_epochs_cover_everything(self):
        ds = self.ragged_set()
        seen = []
        for batch, labels in ds.minibatches(4, shuffle=True, seed=8):
            assert batch.size == len(labels)
            # fill value identifies the query each padded row came from
            row_fill = batch.tables[:, 0, 0]
            np.testing.assert_array_equal(
                row_fill, [float(np.argmin(np.abs(ds.labels - l)) + 1) for l in labels]
            )
            seen.extend(labels.tolist())
        assert sorted(seen) == sorted(ds.labels.tolist())

    def test_shuffle_scratch_reused_across_epochs(self):
        ds = self.ragged_set()
        list(ds.minibatches(4, seed=1))
        scratch = ds._shuffled
        assert scratch is not None
        list(ds.minibatches(4, seed=2))
        assert ds._shuffled is scratch

    def test_interleaved_shuffled_iterators_stay_independent(self):
        """A second live shuffled iteration must not overwrite batches the
        first one already yielded (the scratch is claimed per iteration)."""
        ds = self.ragged_set()
        it1 = ds.minibatches(4, shuffle=True, seed=1)
        batch1, labels1 = next(it1)
        snapshot = batch1.tables.copy()
        it2 = ds.minibatches(4, shuffle=True, seed=2)
        next(it2)  # a shared scratch would overwrite batch1's views here
        np.testing.assert_array_equal(batch1.tables, snapshot)
        # both iterations still cover their full (distinct) orders
        seen1 = labels1.tolist() + [l for _, ls in it1 for l in ls.tolist()]
        assert sorted(seen1) == sorted(ds.labels.tolist())

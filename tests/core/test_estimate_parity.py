"""Batching parity and cache semantics for DeepSketch estimation.

The acceptance bar for the serving fast path: ``estimate_many`` must
return the same values as a loop of single ``estimate`` calls, on
arbitrary workloads (including zero-tuple and single-table queries),
and the LRU cache must return hits without touching the model while
being invalidated by the manager on drop/rebuild.

Batched BLAS kernels may round differently from single-row kernels by
a few ULPs, so cross-path comparisons use an extremely tight relative
tolerance (1e-12) rather than bitwise equality; cache hits, which
return the stored float, are compared exactly.
"""

import numpy as np
import pytest

from repro.sampling import is_zero_tuple
from repro.workload import Predicate, Query, TableRef, spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

#: Tolerance for single-vs-batched model output (see module docstring).
RTOL = 1e-12


def assert_paths_agree(single, batched):
    single = np.asarray(single, dtype=np.float64)
    batched = np.asarray(batched, dtype=np.float64)
    np.testing.assert_allclose(batched, single, rtol=RTOL, atol=0.0)


@pytest.fixture(scope="module")
def sketch(trained_sketch):
    sketch, _ = trained_sketch
    return sketch


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=123)
    return gen.draw_many(80)


@pytest.fixture(autouse=True)
def fresh_cache(sketch):
    sketch.clear_cache()
    yield
    sketch.clear_cache()


class TestBatchParity:
    def test_random_workload(self, sketch, workload):
        single = [sketch.estimate(q, use_cache=False) for q in workload]
        batched = sketch.estimate_many(workload, use_cache=False)
        assert_paths_agree(single, batched)

    def test_cached_batch_matches_single(self, sketch, workload):
        single = [sketch.estimate(q, use_cache=False) for q in workload]
        sketch.clear_cache()
        batched = sketch.estimate_many(workload)  # cache on, cold
        assert_paths_agree(single, batched)

    def test_single_table_queries(self, sketch):
        queries = [
            Query(tables=(TableRef("title", "t"),)),
            Query(
                tables=(TableRef("title", "t"),),
                predicates=(Predicate("t", "production_year", ">", 2000),),
            ),
            Query(
                tables=(TableRef("movie_keyword", "mk"),),
                predicates=(Predicate("mk", "keyword_id", "=", 3),),
            ),
        ]
        single = [sketch.estimate(q, use_cache=False) for q in queries]
        batched = sketch.estimate_many(queries, use_cache=False)
        assert_paths_agree(single, batched)

    def test_zero_tuple_queries(self, sketch, imdb_small, workload):
        # Literals far outside the data domain force empty sample bitmaps.
        zero = [
            Query(
                tables=(TableRef("title", "t"),),
                predicates=(Predicate("t", "production_year", ">", 10_000_000),),
            ),
            Query(
                tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
                predicates=(Predicate("mk", "keyword_id", "=", -5),),
            ),
        ]
        assert all(is_zero_tuple(sketch.samples, q) for q in zero)
        mixed = zero + list(workload[:5])
        single = [sketch.estimate(q, use_cache=False) for q in mixed]
        batched = sketch.estimate_many(mixed, use_cache=False)
        assert_paths_agree(single, batched)

    def test_duplicates_collapse_to_one_model_slot(self, sketch, workload):
        query = workload[0]
        batched = sketch.estimate_many([query] * 7, use_cache=False)
        assert len(set(batched.tolist())) == 1
        assert_paths_agree([sketch.estimate(query, use_cache=False)] * 7, batched)

    def test_sql_strings_accepted(self, sketch, workload):
        sqls = [q.to_sql() for q in workload[:10]]
        batched = sketch.estimate_many(sqls, use_cache=False)
        single = [sketch.estimate(s, use_cache=False) for s in sqls]
        assert_paths_agree(single, batched)

    def test_empty_batch(self, sketch):
        assert sketch.estimate_many([]).shape == (0,)


class _ForwardCounter:
    """Wraps the sketch's compiled forward to count model invocations."""

    def __init__(self, sketch, monkeypatch):
        self.calls = 0
        original = sketch._predict_batch

        def counting(batch):
            self.calls += 1
            return original(batch)

        # Estimation dispatches through DeepSketch._predict_batch (the
        # compiled InferenceSession), so an instance-level override
        # intercepts every model invocation on both estimate paths.
        monkeypatch.setattr(sketch, "_predict_batch", counting)


class TestCache:
    def test_hit_returns_same_value_without_forward(self, sketch, workload, monkeypatch):
        query = workload[0]
        first = sketch.estimate(query)
        counter = _ForwardCounter(sketch, monkeypatch)
        again = sketch.estimate(query)
        assert counter.calls == 0
        assert again == first  # cache hits are exact

    def test_batch_hits_skip_the_model(self, sketch, workload, monkeypatch):
        warm = sketch.estimate_many(workload)
        counter = _ForwardCounter(sketch, monkeypatch)
        again = sketch.estimate_many(workload)
        assert counter.calls == 0
        np.testing.assert_array_equal(again, warm)

    def test_canonicalized_queries_share_an_entry(self, sketch, monkeypatch):
        a = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            predicates=(
                Predicate("t", "production_year", ">", 2000),
                Predicate("mk", "keyword_id", "=", 3),
            ),
        )
        # Same query, clauses written in the other order.
        b = Query(
            tables=(TableRef("movie_keyword", "mk"), TableRef("title", "t")),
            predicates=(
                Predicate("mk", "keyword_id", "=", 3),
                Predicate("t", "production_year", ">", 2000),
            ),
        )
        first = sketch.estimate(a)
        counter = _ForwardCounter(sketch, monkeypatch)
        assert sketch.estimate(b) == first
        assert counter.calls == 0

    def test_use_cache_false_bypasses_storage(self, sketch, workload):
        query = workload[0]
        sketch.estimate(query, use_cache=False)
        assert query not in sketch.cache
        sketch.estimate_many([query], use_cache=False)
        assert query not in sketch.cache

    def test_clear_cache_forces_recompute(self, sketch, workload, monkeypatch):
        query = workload[0]
        sketch.estimate(query)
        sketch.clear_cache()
        counter = _ForwardCounter(sketch, monkeypatch)
        sketch.estimate(query)
        assert counter.calls == 1

    def test_stats_track_hits_and_misses(self, sketch, workload):
        sketch.estimate(workload[0])
        sketch.estimate(workload[0])
        stats = sketch.cache.stats()
        assert stats.hits >= 1 and stats.misses >= 1
        assert 0.0 < stats.hit_rate < 1.0


class TestCompiledPath:
    """The serving forward is the compiled session, not the autograd graph,
    and it stays in lockstep with the model across invalidations."""

    def autograd_reference(self, sketch, queries):
        """Estimates via the pre-compilation code path (the oracle)."""
        from repro.core.batches import collate
        from repro.metrics import MIN_CARDINALITY
        from repro.sampling import query_bitmaps

        values = []
        for query in queries:
            bitmaps = query_bitmaps(sketch.samples, query)
            features = sketch.featurizer.featurize_query(
                query, bitmaps, db=sketch._catalog
            )
            prediction = float(sketch.model(collate([features])).numpy()[0])
            values.append(
                max(sketch.featurizer.denormalize_label(prediction), MIN_CARDINALITY)
            )
        return values

    def test_estimates_match_autograd_oracle(self, sketch, workload):
        compiled = [sketch.estimate(q, use_cache=False) for q in workload[:20]]
        reference = self.autograd_reference(sketch, workload[:20])
        np.testing.assert_allclose(compiled, reference, rtol=1e-9, atol=0.0)

    def test_session_is_reused_across_calls(self, sketch, workload):
        first = sketch.inference_session
        sketch.estimate(workload[0], use_cache=False)
        sketch.estimate_many(workload[:5], use_cache=False)
        assert sketch.inference_session is first

    def test_clear_cache_invalidates_session(self, sketch, workload):
        query = workload[0]
        before = sketch.estimate(query, use_cache=False)
        stale_session = sketch.inference_session
        # Mutate the model in place (what an optimizer step does), then
        # invalidate: estimates must reflect the new weights and agree
        # with the autograd oracle again.
        param = sketch.model.out_mlp.layers[-1].bias
        original = param.data.copy()
        try:
            param.data += 0.25
            assert sketch.estimate(query, use_cache=False) == before, (
                "stale session still serves the snapshotted weights"
            )
            sketch.clear_cache()
            assert sketch.inference_session is not stale_session
            after = sketch.estimate(query, use_cache=False)
            assert after != before
            np.testing.assert_allclose(
                [after], self.autograd_reference(sketch, [query]), rtol=1e-9
            )
        finally:
            param.data[:] = original
            sketch.clear_cache()

    def test_retrain_invalidates_session(self, sketch, workload):
        """A real retrain (Trainer.fit on the sketch's model) followed by
        clear_cache() serves estimates from the new weights, in parity
        with the autograd oracle."""
        from repro.core.batches import TrainingSet
        from repro.core.training import Trainer, TrainingConfig
        from repro.sampling import query_bitmaps

        state = sketch.model.state_dict()
        before = sketch.estimate(workload[0], use_cache=False)
        features = [
            sketch.featurizer.featurize_query(
                q, query_bitmaps(sketch.samples, q), db=sketch._catalog
            )
            for q in workload[:12]
        ]
        trainer = Trainer(
            sketch.model,
            sketch.featurizer,
            TrainingConfig(epochs=1, batch_size=4, validation_fraction=0.25),
        )
        try:
            trainer.fit(TrainingSet(features, np.linspace(0.2, 0.8, 12)))
            sketch.model.eval()
            sketch.clear_cache()
            after = sketch.estimate(workload[0], use_cache=False)
            assert after != before  # the retrain moved the weights
            compiled = [sketch.estimate(q, use_cache=False) for q in workload[:5]]
            np.testing.assert_allclose(
                compiled,
                self.autograd_reference(sketch, workload[:5]),
                rtol=1e-9,
                atol=0.0,
            )
        finally:
            sketch.model.load_state_dict(state)
            sketch.model.eval()
            sketch.clear_cache()

    def test_float32_sketch_parity(self, sketch, workload):
        from repro.core.sketch import DeepSketch

        fast = DeepSketch(
            name="f32",
            featurizer=sketch.featurizer,
            model=sketch.model,
            samples=sketch.samples,
            inference_dtype="float32",
        )
        queries = workload[:20]
        exact = [sketch.estimate(q, use_cache=False) for q in queries]
        approx = [fast.estimate(q, use_cache=False) for q in queries]
        # ~1e-7 float32 error in the normalized prediction is amplified
        # by exp(span * v) in denormalization; span ~ 15 here.
        np.testing.assert_allclose(approx, exact, rtol=1e-4, atol=0.0)
        sketch.model.eval()  # restore (shared model object)

    def test_inference_dtype_survives_serialization(self, sketch):
        from repro.core.sketch import DeepSketch

        fast = DeepSketch(
            name="f32-roundtrip",
            featurizer=sketch.featurizer,
            model=sketch.model,
            samples=sketch.samples,
            inference_dtype="float32",
        )
        restored = DeepSketch.from_bytes(fast.to_bytes())
        assert restored.inference_dtype == "float32"
        assert restored.inference_session.dtype == np.float32

    def test_invalid_inference_dtype_rejected(self, sketch):
        from repro.core.sketch import DeepSketch
        from repro.errors import SketchError

        with pytest.raises(SketchError):
            DeepSketch(
                name="bad",
                featurizer=sketch.featurizer,
                model=sketch.model,
                samples=sketch.samples,
                inference_dtype="float16",
            )


class TestManagerInvalidation:
    def test_drop_sketch_clears_cache(self, imdb_small, sketch, workload):
        from repro.demo import SketchManager

        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        manager.query(sketch.name, workload[0])
        assert len(sketch.cache) == 1
        manager.drop_sketch(sketch.name)
        assert len(sketch.cache) == 0

    def test_query_many_matches_query(self, imdb_small, sketch, workload):
        from repro.demo import SketchManager

        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        batched = manager.query_many(sketch.name, workload[:20])
        sketch.clear_cache()
        single = [manager.query(sketch.name, q) for q in workload[:20]]
        assert_paths_agree(single, batched)

"""Drift detection and sketch fine-tuning tests."""

import numpy as np
import pytest

from repro.core import detect_drift, refresh_sketch
from repro.datasets import ImdbConfig, generate_imdb
from repro.errors import SketchError
from repro.workload import spec_for_imdb


class TestDriftDetection:
    def test_no_drift_on_same_database(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        report = detect_drift(sketch, imdb_small, seed=9)
        assert not report.is_stale(), report
        assert 0.0 <= report.max_drift() <= report.threshold

    def test_drift_on_shifted_database(self, trained_sketch):
        """A database regenerated with a shifted year distribution must
        trip the detector."""
        sketch, _ = trained_sketch
        shifted = generate_imdb(ImdbConfig(scale=0.1, seed=99))
        # Shift production years by three decades to force drift.
        title = shifted.table("title")
        title.columns["production_year"].values[:] = np.clip(
            title.columns["production_year"].values - 30, 1880, 2019
        )
        report = detect_drift(sketch, shifted, seed=9)
        assert report.is_stale(), report
        assert report.table_drift["title"] > report.threshold

    def test_report_covers_all_tables(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        report = detect_drift(sketch, imdb_small, seed=1)
        assert set(report.table_drift) == set(sketch.tables)

    def test_report_str(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        assert "max=" in str(detect_drift(sketch, imdb_small, seed=1))


class TestRefresh:
    def test_refresh_produces_working_sketch(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        refreshed = refresh_sketch(
            sketch,
            imdb_small,
            spec_for_imdb(),
            n_queries=200,
            epochs=2,
            seed=4,
        )
        assert refreshed is not sketch
        assert refreshed.metadata["refreshed"] is True
        sql = (
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2005;"
        )
        assert refreshed.estimate(sql) >= 1.0

    def test_original_sketch_unchanged(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        before = sketch.estimate(sql)
        refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=200, epochs=1, seed=4
        )
        assert sketch.estimate(sql) == pytest.approx(before)

    def test_label_bounds_preserved(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        refreshed = refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=200, epochs=1, seed=4
        )
        assert refreshed.featurizer.max_log_label == sketch.featurizer.max_log_label

    def test_mismatched_spec_rejected(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        with pytest.raises(SketchError):
            refresh_sketch(
                sketch,
                imdb_small,
                spec_for_imdb(tables=("title", "movie_keyword")),
                n_queries=100,
            )

    def test_fine_tuning_improves_on_changed_data(self, trained_sketch):
        """After a data change, fine-tuning must reduce the validation
        q-error relative to the frozen old model."""
        from repro.db import execute_count
        from repro.metrics import geometric_mean_qerror, qerrors
        from repro.workload import TrainingQueryGenerator

        sketch, _ = trained_sketch
        changed = generate_imdb(ImdbConfig(scale=0.1, seed=77))
        refreshed = refresh_sketch(
            sketch, changed, spec_for_imdb(), n_queries=600, epochs=4, seed=6
        )
        generator = TrainingQueryGenerator(changed, spec_for_imdb(), seed=500)
        queries, truths = [], []
        for query in generator.draw_many(80):
            truth = execute_count(changed, query)
            if truth > 0:
                queries.append(query)
                truths.append(float(truth))
        stale_err = geometric_mean_qerror(
            qerrors([sketch.estimate(q) for q in queries], truths)
        )
        fresh_err = geometric_mean_qerror(
            qerrors([refreshed.estimate(q) for q in queries], truths)
        )
        assert fresh_err <= stale_err * 1.05, (stale_err, fresh_err)

"""Drift detection and sketch fine-tuning tests."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import detect_drift, refresh_sketch, try_refresh_sketch
from repro.core.maintenance import RefreshResult, _categorical_tv
from repro.datasets import ImdbConfig, generate_imdb
from repro.errors import SketchError
from repro.sampling import materialize_samples
from repro.workload import spec_for_imdb


class TestDriftDetection:
    def test_no_drift_on_same_database(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        report = detect_drift(sketch, imdb_small, seed=9)
        assert not report.is_stale(), report
        assert 0.0 <= report.max_drift() <= report.threshold

    def test_drift_on_shifted_database(self, trained_sketch):
        """A database regenerated with a shifted year distribution must
        trip the detector."""
        sketch, _ = trained_sketch
        shifted = generate_imdb(ImdbConfig(scale=0.1, seed=99))
        # Shift production years by three decades to force drift.
        title = shifted.table("title")
        title.columns["production_year"].values[:] = np.clip(
            title.columns["production_year"].values - 30, 1880, 2019
        )
        report = detect_drift(sketch, shifted, seed=9)
        assert report.is_stale(), report
        assert report.table_drift["title"] > report.threshold

    def test_report_covers_all_tables(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        report = detect_drift(sketch, imdb_small, seed=1)
        assert set(report.table_drift) == set(sketch.tables)

    def test_report_str(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        assert "max=" in str(detect_drift(sketch, imdb_small, seed=1))


def _fake_string_column(values, dictionary):
    codes = np.asarray(values, dtype=np.int64)
    return SimpleNamespace(
        non_null_values=lambda: codes, dictionary=list(dictionary)
    )


class TestCategoricalDrift:
    """Satellite: string columns drift via total-variation distance."""

    def _string_sketch(self, db, sample_size=150, seed=1):
        # detect_drift only reads samples + tables, so a duck-typed
        # sketch exercises the string path without training a model
        # over dimension tables.
        samples = materialize_samples(db, ("keyword",), sample_size, seed=seed)
        return SimpleNamespace(samples=samples, tables=("keyword",))

    def test_same_category_mix_is_below_threshold(self, imdb_small):
        sketch = self._string_sketch(imdb_small)
        report = detect_drift(sketch, imdb_small, seed=3)
        assert not report.is_stale(), report
        assert report.table_drift["keyword"] < report.threshold

    def test_shifted_category_mix_trips_the_detector(self, imdb_small):
        sketch = self._string_sketch(imdb_small)
        mutated = generate_imdb(ImdbConfig(scale=0.1, seed=7))
        column = mutated.table("keyword").columns["keyword"]
        # Collapse the keyword mix onto three dominant categories: the
        # dictionary-code *frequencies* shift massively even though the
        # dictionary itself is unchanged.
        column.values[:] = column.values % 3
        report = detect_drift(sketch, mutated, seed=3)
        assert report.is_stale(), report
        assert report.table_drift["keyword"] > report.threshold

    def test_tv_zero_for_identical_columns(self):
        col = _fake_string_column([0, 0, 1, 2], ["a", "b", "c"])
        assert _categorical_tv(col, col) == pytest.approx(0.0)

    def test_tv_one_for_disjoint_categories(self):
        a = _fake_string_column([0, 0, 1], ["a", "b"])
        b = _fake_string_column([0, 1, 1], ["x", "y"])
        assert _categorical_tv(a, b) == pytest.approx(1.0)

    def test_tv_compares_category_strings_not_codes(self):
        # The same categories under differently sorted dictionaries must
        # read as identical: code 0 means different strings on each side.
        a = _fake_string_column([0, 0, 1], ["alpha", "beta"])
        b = _fake_string_column([1, 1, 0], ["beta", "alpha"])
        assert _categorical_tv(a, b) == pytest.approx(0.0)

    def test_tv_empty_side_reads_as_no_drift(self):
        a = _fake_string_column([], ["a"])
        b = _fake_string_column([0], ["a"])
        assert _categorical_tv(a, b) == 0.0

    def test_tail_bucket_registers_head_to_tail_shift(self):
        # 20 distinct rare categories on one side vs one dominant on the
        # other: the head-plus-tail bucketing still sees the shift.
        a = _fake_string_column(
            list(range(20)), [f"cat{i}" for i in range(20)]
        )
        b = _fake_string_column([0] * 20, [f"cat{i}" for i in range(20)])
        assert _categorical_tv(a, b) > 0.5


class TestRefresh:
    def test_refresh_produces_working_sketch(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        refreshed = refresh_sketch(
            sketch,
            imdb_small,
            spec_for_imdb(),
            n_queries=200,
            epochs=2,
            seed=4,
        )
        assert refreshed is not sketch
        assert refreshed.metadata["refreshed"] is True
        sql = (
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2005;"
        )
        assert refreshed.estimate(sql) >= 1.0

    def test_original_sketch_unchanged(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        before = sketch.estimate(sql)
        refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=200, epochs=1, seed=4
        )
        assert sketch.estimate(sql) == pytest.approx(before)

    def test_label_bounds_preserved(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        refreshed = refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=200, epochs=1, seed=4
        )
        assert refreshed.featurizer.max_log_label == sketch.featurizer.max_log_label

    def test_mismatched_spec_rejected(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        with pytest.raises(SketchError):
            refresh_sketch(
                sketch,
                imdb_small,
                spec_for_imdb(tables=("title", "movie_keyword")),
                n_queries=100,
            )

    def test_fine_tuning_improves_on_changed_data(self, trained_sketch):
        """After a data change, fine-tuning must reduce the validation
        q-error relative to the frozen old model."""
        from repro.db import execute_count
        from repro.metrics import geometric_mean_qerror, qerrors
        from repro.workload import TrainingQueryGenerator

        sketch, _ = trained_sketch
        changed = generate_imdb(ImdbConfig(scale=0.1, seed=77))
        refreshed = refresh_sketch(
            sketch, changed, spec_for_imdb(), n_queries=600, epochs=4, seed=6
        )
        generator = TrainingQueryGenerator(changed, spec_for_imdb(), seed=500)
        queries, truths = [], []
        for query in generator.draw_many(80):
            truth = execute_count(changed, query)
            if truth > 0:
                queries.append(query)
                truths.append(float(truth))
        stale_err = geometric_mean_qerror(
            qerrors([sketch.estimate(q) for q in queries], truths)
        )
        fresh_err = geometric_mean_qerror(
            qerrors([refreshed.estimate(q) for q in queries], truths)
        )
        assert fresh_err <= stale_err * 1.05, (stale_err, fresh_err)


class TestTryRefresh:
    """Satellite: every refresh failure folds into a structured result."""

    def test_success_carries_the_refreshed_sketch(
        self, imdb_small, trained_sketch
    ):
        sketch, _ = trained_sketch
        result = try_refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=200, epochs=1, seed=4
        )
        assert result.ok
        assert result.sketch is not None
        assert result.sketch.metadata["refreshed"] is True
        assert result.error is None and result.code is None
        assert not result.retryable  # nothing to retry

    def test_spec_mismatch_is_structured_and_non_retryable(
        self, imdb_small, trained_sketch
    ):
        sketch, _ = trained_sketch
        result = try_refresh_sketch(
            sketch,
            imdb_small,
            spec_for_imdb(tables=("title", "movie_keyword")),
            n_queries=100,
        )
        assert not result.ok and result.sketch is None
        assert result.code == "spec_mismatch"
        assert not result.retryable  # a config bug; retrying burns time

    def test_unexpected_crash_becomes_internal_code(
        self, imdb_small, trained_sketch, monkeypatch
    ):
        sketch, _ = trained_sketch

        def explode(*args, **kwargs):
            raise RuntimeError("storage layer died")

        monkeypatch.setattr(
            "repro.core.maintenance.materialize_samples", explode
        )
        result = try_refresh_sketch(
            sketch, imdb_small, spec_for_imdb(), n_queries=100
        )
        assert not result.ok
        assert result.code == "internal"
        assert "storage layer died" in result.error
        assert result.retryable

    def test_retryable_classification(self):
        retryable = RefreshResult(
            ok=False, error="x", code="insufficient_queries"
        )
        assert retryable.retryable
        assert RefreshResult(ok=False, error="x", code="internal").retryable
        assert not RefreshResult(
            ok=False, error="x", code="spec_mismatch"
        ).retryable

"""Workload-driven training: build a sketch from past user queries."""

import pytest

from repro.core import SketchBuilder, SketchConfig
from repro.errors import SketchError
from repro.workload import (
    JobLightConfig,
    TrainingQueryGenerator,
    generate_job_light,
    spec_for_imdb,
)


@pytest.fixture
def builder(imdb_small):
    return SketchBuilder(
        imdb_small,
        spec_for_imdb(),
        config=SketchConfig(
            n_training_queries=100,  # ignored when a workload is passed
            epochs=3,
            sample_size=60,
            hidden_units=16,
        ),
    )


class TestWorkloadDrivenBuild:
    def test_build_from_past_queries(self, imdb_small, builder):
        generator = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=55)
        workload = generator.draw_many(300)
        sketch, report = builder.build("from-workload", training_queries=workload)
        assert report.n_queries_generated == 300
        estimate = sketch.estimate(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        )
        assert estimate >= 1.0

    def test_build_from_joblight_workload(self, imdb_small, builder):
        """Training directly on the evaluation workload class also works
        (the 'past user queries' scenario)."""
        workload = generate_job_light(imdb_small, JobLightConfig(n_queries=60, seed=2))
        # 60 queries is small; repeat to give the trainer enough batches.
        sketch, report = builder.build("from-joblight", training_queries=workload * 4)
        assert report.training is not None
        for query in workload[:5]:
            assert sketch.estimate(query) >= 1.0

    def test_foreign_table_rejected(self, tiny_db, imdb_small, builder):
        from repro.workload import Query, TableRef

        bad = [Query(tables=(TableRef("keyword", "k"),))]
        with pytest.raises(SketchError):
            builder.build("bad-workload", training_queries=bad)

    def test_all_empty_workload_rejected(self, builder):
        from repro.workload import Predicate, Query, TableRef

        impossible = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", ">", 10**6),),
        )
        with pytest.raises(SketchError):
            builder.build("empty-workload", training_queries=[impossible] * 50)

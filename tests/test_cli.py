"""CLI tests: build / info / estimate / compare round-trips."""

import pytest

from repro.cli import main
from repro.datasets import clear_dataset_cache


@pytest.fixture(scope="module")
def sketch_path(tmp_path_factory):
    """Build a tiny sketch once via the CLI itself."""
    path = str(tmp_path_factory.mktemp("cli") / "tiny.sketch")
    code = main(
        [
            "build",
            "--dataset", "imdb",
            "--scale", "0.05",
            "--queries", "300",
            "--epochs", "3",
            "--samples", "50",
            "--hidden", "16",
            "--out", path,
        ]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_creates_file(self, sketch_path, capsys):
        import os

        assert os.path.exists(sketch_path)

    def test_build_progress_printed(self, tmp_path, capsys):
        path = str(tmp_path / "p.sketch")
        main(
            [
                "build", "--dataset", "imdb", "--scale", "0.05",
                "--queries", "200", "--epochs", "2", "--samples", "40",
                "--hidden", "8", "--out", path,
            ]
        )
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "saved" in out


class TestInfo:
    def test_info_fields(self, sketch_path, capsys):
        assert main(["info", sketch_path]) == 0
        out = capsys.readouterr().out
        assert "tables" in out
        assert "title" in out
        assert "footprint" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["info", "/nonexistent/path.sketch"]) == 1
        assert "error" in capsys.readouterr().err


class TestEstimate:
    def test_estimate_prints_number(self, sketch_path, capsys):
        code = main(
            [
                "estimate", sketch_path,
                "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value >= 1.0

    def test_bad_sql_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT nonsense"]) == 1
        assert "error" in capsys.readouterr().err

    def test_out_of_scope_table_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT COUNT(*) FROM keyword k;"]) == 1


class TestCompare:
    def test_compare_table(self, sketch_path, capsys):
        code = main(
            [
                "compare", "--dataset", "imdb", "--scale", "0.05",
                sketch_path,
                "SELECT COUNT(*) FROM title t, movie_keyword mk "
                "WHERE mk.movie_id=t.id AND t.production_year>2000;",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "truth" in out
        assert "Deep Sketch" in out
        assert "PostgreSQL" in out


class TestServe:
    def test_serve_sql_file(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "# serving smoke workload\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
            "\n"
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2000;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        # --max-batch 2 puts the repeated query into a second micro-batch,
        # where it is answered from the cache populated by the first.
        code = main(["serve", sketch_path, "--sql", str(sql_file), "--max-batch", "2"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3  # one per query, comments/blanks skipped
        assert "(cached)" in lines[2]  # third query repeats the first
        assert "served 3/3" in captured.err

    def test_serve_isolates_bad_sql(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT nonsense;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        code = main(["serve", sketch_path, "--sql", str(sql_file)])
        captured = capsys.readouterr()
        assert code == 1  # errors occurred, but the stream was served
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("error")
        assert not lines[1].startswith("error")

    def test_serve_async_matches_sync(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>1990;\n"
        )
        assert main(["serve", sketch_path, "--sql", str(sql_file)]) == 0
        sync_out = capsys.readouterr().out
        code = main(
            ["serve", sketch_path, "--sql", str(sql_file),
             "--async", "--max-wait-ms", "20"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Same rounded estimates down both paths, plus async wait stats.
        sync_estimates = [line.split("\t")[0] for line in sync_out.splitlines()]
        async_estimates = [
            line.split("\t")[0] for line in captured.out.splitlines()
        ]
        assert async_estimates == sync_estimates
        assert "async waits" in captured.err

    def test_serve_async_isolates_bad_sql(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT nonsense;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        code = main(["serve", sketch_path, "--sql", str(sql_file), "--async"])
        captured = capsys.readouterr()
        assert code == 1
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("error")
        assert not lines[1].startswith("error")

    def test_serve_matches_estimate(self, sketch_path, tmp_path, capsys):
        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        assert main(["estimate", sketch_path, sql]) == 0
        single = float(capsys.readouterr().out.strip())
        sql_file = tmp_path / "q.sql"
        sql_file.write_text(sql + "\n")
        assert main(["serve", sketch_path, "--sql", str(sql_file)]) == 0
        served = float(capsys.readouterr().out.split("\t")[0])
        # Both commands print rounded estimates, so exact match expected.
        assert served == single


class TestBenchServe:
    def test_tiny_benchmark_runs_and_passes(self, capsys):
        code = main(["bench-serve", "--tiny"])
        captured = capsys.readouterr()
        assert code == 0
        assert "sketch server" in captured.out
        assert "identical" in captured.out
        assert "NOT identical" not in captured.out


def teardown_module():
    clear_dataset_cache()

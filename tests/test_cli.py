"""CLI tests: build / info / estimate / compare round-trips."""

import pytest

from repro.cli import main
from repro.datasets import clear_dataset_cache


@pytest.fixture(scope="module")
def sketch_path(tmp_path_factory):
    """Build a tiny sketch once via the CLI itself."""
    path = str(tmp_path_factory.mktemp("cli") / "tiny.sketch")
    code = main(
        [
            "build",
            "--dataset", "imdb",
            "--scale", "0.05",
            "--queries", "300",
            "--epochs", "3",
            "--samples", "50",
            "--hidden", "16",
            "--out", path,
        ]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_creates_file(self, sketch_path, capsys):
        import os

        assert os.path.exists(sketch_path)

    def test_build_progress_printed(self, tmp_path, capsys):
        path = str(tmp_path / "p.sketch")
        main(
            [
                "build", "--dataset", "imdb", "--scale", "0.05",
                "--queries", "200", "--epochs", "2", "--samples", "40",
                "--hidden", "8", "--out", path,
            ]
        )
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "saved" in out


class TestInfo:
    def test_info_fields(self, sketch_path, capsys):
        assert main(["info", sketch_path]) == 0
        out = capsys.readouterr().out
        assert "tables" in out
        assert "title" in out
        assert "footprint" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["info", "/nonexistent/path.sketch"]) == 1
        assert "error" in capsys.readouterr().err


class TestEstimate:
    def test_estimate_prints_number(self, sketch_path, capsys):
        code = main(
            [
                "estimate", sketch_path,
                "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value >= 1.0

    def test_bad_sql_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT nonsense"]) == 1
        assert "error" in capsys.readouterr().err

    def test_out_of_scope_table_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT COUNT(*) FROM keyword k;"]) == 1


class TestCompare:
    def test_compare_table(self, sketch_path, capsys):
        code = main(
            [
                "compare", "--dataset", "imdb", "--scale", "0.05",
                sketch_path,
                "SELECT COUNT(*) FROM title t, movie_keyword mk "
                "WHERE mk.movie_id=t.id AND t.production_year>2000;",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "truth" in out
        assert "Deep Sketch" in out
        assert "PostgreSQL" in out


def teardown_module():
    clear_dataset_cache()

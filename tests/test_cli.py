"""CLI tests: build / info / estimate / compare round-trips."""

import pytest

from repro.cli import main
from repro.datasets import clear_dataset_cache


@pytest.fixture(scope="module")
def sketch_path(tmp_path_factory):
    """Build a tiny sketch once via the CLI itself."""
    path = str(tmp_path_factory.mktemp("cli") / "tiny.sketch")
    code = main(
        [
            "build",
            "--dataset", "imdb",
            "--scale", "0.05",
            "--queries", "300",
            "--epochs", "3",
            "--samples", "50",
            "--hidden", "16",
            "--out", path,
        ]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_creates_file(self, sketch_path, capsys):
        import os

        assert os.path.exists(sketch_path)

    def test_build_progress_printed(self, tmp_path, capsys):
        path = str(tmp_path / "p.sketch")
        main(
            [
                "build", "--dataset", "imdb", "--scale", "0.05",
                "--queries", "200", "--epochs", "2", "--samples", "40",
                "--hidden", "8", "--out", path,
            ]
        )
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "saved" in out


class TestInfo:
    def test_info_fields(self, sketch_path, capsys):
        assert main(["info", sketch_path]) == 0
        out = capsys.readouterr().out
        assert "tables" in out
        assert "title" in out
        assert "footprint" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["info", "/nonexistent/path.sketch"]) == 1
        assert "error" in capsys.readouterr().err


class TestEstimate:
    def test_estimate_prints_number(self, sketch_path, capsys):
        code = main(
            [
                "estimate", sketch_path,
                "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value >= 1.0

    def test_bad_sql_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT nonsense"]) == 1
        assert "error" in capsys.readouterr().err

    def test_out_of_scope_table_is_error(self, sketch_path, capsys):
        assert main(["estimate", sketch_path, "SELECT COUNT(*) FROM keyword k;"]) == 1


class TestCompare:
    def test_compare_table(self, sketch_path, capsys):
        code = main(
            [
                "compare", "--dataset", "imdb", "--scale", "0.05",
                sketch_path,
                "SELECT COUNT(*) FROM title t, movie_keyword mk "
                "WHERE mk.movie_id=t.id AND t.production_year>2000;",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "truth" in out
        assert "Deep Sketch" in out
        assert "PostgreSQL" in out


class TestPlan:
    JOIN_SQL = (
        "SELECT COUNT(*) FROM title t,movie_keyword mk,movie_info mi "
        "WHERE mk.movie_id=t.id AND mi.movie_id=t.id;"
    )

    def test_plan_prints_structured_json(self, sketch_path, capsys):
        import json

        assert main(["plan", self.JOIN_SQL, sketch_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["error"] is None
        assert payload["join_order"].count("⨝") == 2  # 3 relations
        assert len(payload["subplans"]) == 6  # connected subsets of a star
        assert payload["estimated_cost"] > 0
        assert payload["estimate_ms"] is not None

    def test_plan_failure_is_structured_and_exit_1(self, sketch_path, capsys):
        import json

        assert main(["plan", "SELECT nonsense", sketch_path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["code"] == "parse"
        assert payload["join_order"] is None

    def test_remote_plan_matches_local(self, sketch_path, capsys, monkeypatch):
        """`repro plan --url` against `repro serve --http` chooses the
        same join order as `repro plan` over the local file."""
        import json

        import repro.cli as cli

        assert main(["plan", self.JOIN_SQL, sketch_path]) == 0
        local = json.loads(capsys.readouterr().out)

        remote = {}

        def driver(server):
            remote["code"] = main(["plan", "--url", server.url, self.JOIN_SQL])
            remote["payload"] = json.loads(capsys.readouterr().out)

        monkeypatch.setattr(cli, "_http_wait", driver)
        assert main(["serve", sketch_path, "--http", "--port", "0"]) == 0
        capsys.readouterr()
        assert remote["code"] == 0
        assert remote["payload"]["join_order"] == local["join_order"]
        assert remote["payload"]["estimated_cost"] == pytest.approx(
            local["estimated_cost"]
        )


class TestServe:
    def test_serve_sql_file(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "# serving smoke workload\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
            "\n"
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2000;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        # --max-batch 2 puts the repeated query into a second micro-batch,
        # where it is answered from the cache populated by the first.
        code = main(["serve", sketch_path, "--sql", str(sql_file), "--max-batch", "2"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3  # one per query, comments/blanks skipped
        assert "(cached)" in lines[2]  # third query repeats the first
        assert "served 3/3" in captured.err

    def test_serve_isolates_bad_sql(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT nonsense;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        code = main(["serve", sketch_path, "--sql", str(sql_file)])
        captured = capsys.readouterr()
        assert code == 1  # errors occurred, but the stream was served
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("error")
        assert not lines[1].startswith("error")

    def test_serve_async_matches_sync(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>1990;\n"
        )
        assert main(["serve", sketch_path, "--sql", str(sql_file)]) == 0
        sync_out = capsys.readouterr().out
        code = main(
            ["serve", sketch_path, "--sql", str(sql_file),
             "--async", "--max-wait-ms", "20"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Same rounded estimates down both paths, plus async wait stats.
        sync_estimates = [line.split("\t")[0] for line in sync_out.splitlines()]
        async_estimates = [
            line.split("\t")[0] for line in captured.out.splitlines()
        ]
        assert async_estimates == sync_estimates
        assert "async waits" in captured.err

    def test_serve_async_isolates_bad_sql(self, sketch_path, tmp_path, capsys):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "SELECT nonsense;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
        )
        code = main(["serve", sketch_path, "--sql", str(sql_file), "--async"])
        captured = capsys.readouterr()
        assert code == 1
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("error")
        assert not lines[1].startswith("error")

    def test_serve_matches_estimate(self, sketch_path, tmp_path, capsys):
        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        assert main(["estimate", sketch_path, sql]) == 0
        single = float(capsys.readouterr().out.strip())
        sql_file = tmp_path / "q.sql"
        sql_file.write_text(sql + "\n")
        assert main(["serve", sketch_path, "--sql", str(sql_file)]) == 0
        served = float(capsys.readouterr().out.split("\t")[0])
        # Both commands print rounded estimates, so exact match expected.
        assert served == single


class TestServeFlags:
    """The engine knobs exposed by `repro serve` (PR-4) actually bind."""

    @pytest.fixture()
    def sql_file(self, tmp_path):
        path = tmp_path / "queries.sql"
        path.write_text(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>1990;\n"
            "SELECT COUNT(*) FROM title t WHERE t.production_year>1995;\n"
        )
        return str(path)

    def _snapshot(self, err: str) -> dict:
        import json

        lines = [l for l in err.splitlines() if l.startswith("stats_summary: ")]
        assert len(lines) == 1, err
        return json.loads(lines[0].removeprefix("stats_summary: "))

    def test_executor_and_workers_flags(self, sketch_path, sql_file, capsys):
        code = main(
            ["serve", sketch_path, "--sql", sql_file,
             "--executor", "thread", "--workers", "3"]
        )
        captured = capsys.readouterr()
        assert code == 0
        snapshot = self._snapshot(captured.err)
        assert snapshot["executor"] == "thread"
        assert snapshot["executor_workers"] == 3
        assert "executor=thread" in captured.err

    def test_max_queue_depth_and_shed_policy_flags(
        self, sketch_path, sql_file, capsys
    ):
        # Sync facade buffers the whole stream, so a depth bound below
        # the stream length sheds — under "oldest", the head is evicted.
        code = main(
            ["serve", sketch_path, "--sql", sql_file,
             "--max-queue-depth", "1", "--shed-policy", "oldest"]
        )
        captured = capsys.readouterr()
        assert code == 1  # sheds are errors
        snapshot = self._snapshot(captured.err)
        assert snapshot["max_queue_depth"] == 1
        assert snapshot["shed"] == 2
        lines = captured.out.strip().splitlines()
        assert sum(1 for l in lines if l.startswith("error:shed")) == 2
        assert not lines[2].startswith("error")  # the newest survived

    def test_deadline_flag(self, sketch_path, sql_file, capsys):
        # A generous deadline: everything must still be served, and the
        # knob must reach the engine config (visible via deadline
        # counter staying zero rather than the flag being dropped).
        code = main(
            ["serve", sketch_path, "--sql", sql_file,
             "--async", "--deadline-ms", "60000"]
        )
        captured = capsys.readouterr()
        assert code == 0
        snapshot = self._snapshot(captured.err)
        assert snapshot["deadline_missed"] == 0
        assert snapshot["answered"] == 3

    def test_stats_snapshot_printed_on_shutdown(
        self, sketch_path, sql_file, capsys
    ):
        assert main(["serve", sketch_path, "--sql", sql_file]) == 0
        snapshot = self._snapshot(capsys.readouterr().err)
        # The same shape stats_summary()/GET /v1/stats return.
        for key in ("requests", "answered", "errors", "shed",
                    "deadline_missed", "flushes", "queue_wait",
                    "flush_latency", "executor", "sketch_requests"):
            assert key in snapshot
        assert snapshot["requests"] == 3


class TestServeHttp:
    def test_http_mode_serves_real_requests(
        self, sketch_path, capsys, monkeypatch
    ):
        """`repro serve --http` binds a live front door; drive it with
        the SDK from the wait hook (what Ctrl-C-bound operators get)."""
        import repro.cli as cli
        from repro.serve import RemoteSketchServer

        seen = {}

        def driver(server):
            with RemoteSketchServer(server.url) as client:
                health = client.healthz()
                ok = client.estimate(
                    "SELECT COUNT(*) FROM title t "
                    "WHERE t.production_year>2000;"
                )
                bad = client.estimate("SELECT nonsense;")
                seen.update(health=health, ok=ok, bad=bad,
                            stats=client.stats_summary())

        monkeypatch.setattr(cli, "_http_wait", driver)
        code = main(["serve", sketch_path, "--http", "--port", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert seen["health"]["status"] == "ok"
        assert seen["ok"].ok and seen["ok"].estimate > 0
        assert not seen["bad"].ok and seen["bad"].code == "parse"
        assert seen["stats"]["requests"] == 2
        assert "serving 1 sketch(es) on http://127.0.0.1:" in captured.err
        assert "stats_summary: " in captured.err

    def test_remote_estimate_cli_against_http_cli(
        self, sketch_path, capsys, monkeypatch
    ):
        """`repro estimate --url` against `repro serve --http` matches
        the local `repro estimate` output exactly (both print rounded)."""
        import repro.cli as cli

        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        assert main(["estimate", sketch_path, sql]) == 0
        local_out = capsys.readouterr().out.strip()

        remote = {}

        def driver(server):
            remote["code"] = main(["estimate", "--url", server.url, sql])
            remote["out"] = capsys.readouterr().out.strip()

        monkeypatch.setattr(cli, "_http_wait", driver)
        assert main(["serve", sketch_path, "--http", "--port", "0"]) == 0
        capsys.readouterr()
        assert remote["code"] == 0
        assert remote["out"] == local_out


class TestGateway:
    def test_local_fleet_mode_shards_and_serves(
        self, sketch_path, capsys, monkeypatch
    ):
        """`repro gateway sketch --shards 2 --replicas 2`: two spawned
        backends replicate the sketch; the gateway front door answers
        wire-v1 requests and merges fleet stats."""
        import repro.cli as cli
        from repro.serve import RemoteSketchServer

        seen = {}

        def driver(door):
            with RemoteSketchServer(door.url) as client:
                seen["health"] = client.healthz()
                seen["ok"] = client.estimate(
                    "SELECT COUNT(*) FROM title t "
                    "WHERE t.production_year>2000;"
                )
                seen["bad"] = client.estimate("SELECT nonsense;")
                seen["stats"] = client.stats_summary()

        monkeypatch.setattr(cli, "_http_wait", driver)
        code = main(
            ["gateway", sketch_path, "--shards", "2", "--replicas", "2",
             "--port", "0", "--health-interval", "0"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert seen["health"]["status"] == "ok"
        assert seen["health"]["tables"]  # routing map advertised
        assert seen["ok"].ok and seen["ok"].estimate > 0
        assert not seen["bad"].ok and seen["bad"].code == "parse"
        stats = seen["stats"]
        assert set(stats) == {"gateway", "backends", "fleet"}
        assert stats["fleet"]["backends_total"] == 2
        assert stats["fleet"]["backends_live"] == 2
        assert "gateway on http://127.0.0.1:" in captured.err
        assert "over 2 backend(s) (2 live" in captured.err
        assert captured.err.count("  shard http://") == 2
        assert "stats_summary: " in captured.err

    def test_backend_mode_fronts_an_existing_server(
        self, sketch_path, capsys, monkeypatch
    ):
        import repro.cli as cli
        from repro.core import DeepSketch
        from repro.demo import SketchManager
        from repro.serve import (
            RemoteSketchServer,
            ServeConfig,
            SketchHTTPServer,
        )

        manager = SketchManager(db=None)
        manager.register_sketch(DeepSketch.load(sketch_path))
        seen = {}

        def driver(door):
            with RemoteSketchServer(door.url) as client:
                seen["ok"] = client.estimate(
                    "SELECT COUNT(*) FROM title t "
                    "WHERE t.production_year>2000;"
                )

        monkeypatch.setattr(cli, "_http_wait", driver)
        with SketchHTTPServer(manager, ServeConfig(), port=0) as backend:
            code = main(
                ["gateway", "--backend", backend.url, "--port", "0",
                 "--health-interval", "0"]
            )
        capsys.readouterr()
        assert code == 0
        assert seen["ok"].ok and seen["ok"].estimate > 0

    def test_shard_assignment_round_robin(self):
        from repro.cli import _shard_assignments

        # 3 sketches over 3 shards, 2-way replication: every shard gets
        # exactly 2 sketches and every sketch lands on exactly 2 shards
        shards = _shard_assignments(3, 3, 2)
        assert shards == [[0, 2], [0, 1], [1, 2]]
        # no replication: one sketch per shard
        assert _shard_assignments(2, 2, 1) == [[0], [1]]


class TestBadFlagCombinations:
    def test_estimate_sketch_and_url_conflict(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["estimate", sketch_path, "SELECT COUNT(*) FROM title t;",
                  "--url", "http://127.0.0.1:1"])
        assert excinfo.value.code == 2

    def test_estimate_needs_sketch_or_url(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["estimate", "SELECT COUNT(*) FROM title t;"])
        assert excinfo.value.code == 2

    def test_plan_sketches_and_url_conflict(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["plan", "SELECT COUNT(*) FROM title t;", sketch_path,
                  "--url", "http://127.0.0.1:1"])
        assert excinfo.value.code == 2

    def test_plan_needs_sketches_or_url(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["plan", "SELECT COUNT(*) FROM title t;"])
        assert excinfo.value.code == 2

    def test_serve_http_excludes_async(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", sketch_path, "--http", "--async"])
        assert excinfo.value.code == 2

    def test_serve_port_requires_http(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", sketch_path, "--port", "8080"])
        assert excinfo.value.code == 2

    def test_serve_host_requires_http(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", sketch_path, "--host", "0.0.0.0"])
        assert excinfo.value.code == 2

    def test_serve_http_excludes_sql_stream(self, sketch_path, tmp_path):
        # --sql would be silently ignored by the front door; reject it
        # instead of dropping the user's query file on the floor.
        sql_file = tmp_path / "q.sql"
        sql_file.write_text("SELECT COUNT(*) FROM title t;\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", sketch_path, "--http", "--sql", str(sql_file)])
        assert excinfo.value.code == 2

    def test_serve_rejects_unknown_executor(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", sketch_path, "--executor", "gpu"])
        assert excinfo.value.code == 2

    def test_gateway_needs_sketches_or_backends(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["gateway"])
        assert excinfo.value.code == 2

    def test_gateway_rejects_sketches_plus_backends(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["gateway", sketch_path, "--backend", "http://127.0.0.1:1"])
        assert excinfo.value.code == 2

    def test_gateway_rejects_replicas_beyond_shards(self, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["gateway", sketch_path, "--shards", "2", "--replicas", "3"])
        assert excinfo.value.code == 2

    def test_gateway_backend_mode_rejects_shard_flags(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["gateway", "--backend", "http://127.0.0.1:1",
                  "--replicas", "2"])
        assert excinfo.value.code == 2


class TestWorkload:
    @pytest.fixture(scope="class")
    def suite_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("wl") / "suite.json")
        code = main(
            [
                "workload", "generate",
                "--dataset", "imdb",
                "--scale", "0.05",
                "--templates", "4",
                "--per-template", "4",
                "--max-joins", "2",
                "--seed", "21",
                "--out", path,
            ]
        )
        assert code == 0
        return path

    def test_generate_writes_loadable_suite(self, suite_path, capsys):
        import json

        from repro.workload import TemplateSuite

        with open(suite_path) as handle:
            suite = TemplateSuite.from_json(json.load(handle))
        assert len(suite) == 4
        assert not suite.labeled

    def test_generate_label_attaches_cardinalities(self, tmp_path, capsys):
        import json

        from repro.workload import TemplateSuite

        path = str(tmp_path / "labeled.json")
        code = main(
            [
                "workload", "generate",
                "--dataset", "imdb", "--scale", "0.05",
                "--templates", "3", "--per-template", "3",
                "--max-joins", "1", "--seed", "22",
                "--label", "--out", path,
            ]
        )
        assert code == 0
        with open(path) as handle:
            suite = TemplateSuite.from_json(json.load(handle))
        assert suite.labeled
        assert all(len(e) >= 2 for e in suite)  # --min-per-template default

    def test_split_by_template_is_leak_free(self, suite_path, tmp_path, capsys):
        import json

        from repro.workload import TemplateSuite

        train_out = str(tmp_path / "train.json")
        test_out = str(tmp_path / "test.json")
        code = main(
            [
                "workload", "split", suite_path,
                "--test-fraction", "0.25", "--seed", "1",
                "--train-out", train_out, "--test-out", test_out,
            ]
        )
        assert code == 0
        with open(train_out) as handle:
            train = TemplateSuite.from_json(json.load(handle))
        with open(test_out) as handle:
            test = TemplateSuite.from_json(json.load(handle))
        assert not set(train.names) & set(test.names)
        assert len(train) + len(test) == 4

    def test_split_within_keeps_all_templates(self, suite_path, tmp_path, capsys):
        import json

        from repro.workload import TemplateSuite

        train_out = str(tmp_path / "train.json")
        test_out = str(tmp_path / "test.json")
        code = main(
            [
                "workload", "split", suite_path, "--within",
                "--test-fraction", "0.5", "--seed", "1",
                "--train-out", train_out, "--test-out", test_out,
            ]
        )
        assert code == 0
        with open(train_out) as handle:
            train = TemplateSuite.from_json(json.load(handle))
        with open(test_out) as handle:
            test = TemplateSuite.from_json(json.load(handle))
        assert train.names == test.names

    def test_replay_local_prints_audit(self, suite_path, sketch_path, capsys):
        import json

        code = main(
            [
                "workload", "replay", suite_path, sketch_path,
                "--requests", "24", "--time-scale", "0",
                "--seed", "2", "--max-batch", "8",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        audit = json.loads(captured.out)
        assert audit["ok"] is True
        assert audit["n_unresolved"] == 0
        assert audit["n_ok"] + audit["n_failed"] == 24

    def test_replay_needs_target(self, suite_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["workload", "replay", suite_path])
        assert excinfo.value.code == 2

    def test_replay_rejects_url_plus_sketches(self, suite_path, sketch_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["workload", "replay", suite_path, sketch_path,
                 "--url", "http://127.0.0.1:1"]
            )
        assert excinfo.value.code == 2


class TestLifecycleCLI:
    """repro lifecycle: the registry's operator surface, end to end."""

    @pytest.fixture()
    def registry_dir(self, tmp_path):
        return str(tmp_path / "registry")

    def _save(self, sketch_path, registry_dir, *extra):
        return main(
            ["lifecycle", "save", sketch_path, "--registry", registry_dir,
             *extra]
        )

    def test_save_assigns_versions(self, sketch_path, registry_dir, capsys):
        assert self._save(sketch_path, registry_dir, "--note", "first") == 0
        assert "saved 'imdb-sketch' as version 1 (active)" in (
            capsys.readouterr().out
        )
        assert self._save(sketch_path, registry_dir) == 0
        assert "version 2 (active)" in capsys.readouterr().out

    def test_save_no_activate_stages(self, sketch_path, registry_dir, capsys):
        self._save(sketch_path, registry_dir)
        capsys.readouterr()
        assert self._save(sketch_path, registry_dir, "--no-activate") == 0
        assert "version 2 (inactive)" in capsys.readouterr().out
        assert main(["lifecycle", "list", "--registry", registry_dir]) == 0
        assert "active v1" in capsys.readouterr().out

    def test_list_empty_registry(self, registry_dir, capsys):
        assert main(["lifecycle", "list", "--registry", registry_dir]) == 0
        assert "registry is empty" in capsys.readouterr().out

    def test_list_and_status(self, sketch_path, registry_dir, capsys):
        import json

        self._save(sketch_path, registry_dir)
        self._save(sketch_path, registry_dir)
        capsys.readouterr()
        assert main(["lifecycle", "list", "--registry", registry_dir]) == 0
        assert "imdb-sketch: 2 version(s), active v2" in (
            capsys.readouterr().out
        )
        assert main(["lifecycle", "status", "--registry", registry_dir]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["imdb-sketch"]["active"] == 2
        assert status["imdb-sketch"]["versions"] == [1, 2]

    def test_pin_and_rollback_restore_a_version(
        self, sketch_path, registry_dir, tmp_path, capsys
    ):
        from repro.core import DeepSketch

        for _ in range(3):
            self._save(sketch_path, registry_dir)
        assert main(
            ["lifecycle", "pin", "imdb-sketch", "1",
             "--registry", registry_dir]
        ) == 0
        capsys.readouterr()
        restored_path = str(tmp_path / "restored.sketch")
        assert main(
            ["lifecycle", "rollback", "imdb-sketch",
             "--registry", registry_dir, "--out", restored_path]
        ) == 0
        out = capsys.readouterr().out
        assert "rolled 'imdb-sketch' back to version 1" in out
        assert restored_path in out
        # The written blob is a loadable sketch carrying its version.
        restored = DeepSketch.load(restored_path)
        assert restored.metadata["registry_version"] == 1
        assert main(["lifecycle", "list", "--registry", registry_dir]) == 0
        assert "active v1, pinned v1" in capsys.readouterr().out

    def test_rollback_with_nothing_earlier_is_an_error(
        self, sketch_path, registry_dir, capsys
    ):
        self._save(sketch_path, registry_dir)
        capsys.readouterr()
        assert main(
            ["lifecycle", "rollback", "imdb-sketch",
             "--registry", registry_dir]
        ) == 1
        assert "nothing to roll back to" in capsys.readouterr().err

    def test_pin_unknown_sketch_is_an_error(self, registry_dir, capsys):
        assert main(
            ["lifecycle", "pin", "ghost", "1", "--registry", registry_dir]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestBenchServe:
    def test_tiny_benchmark_runs_and_passes(self, capsys):
        code = main(["bench-serve", "--tiny"])
        captured = capsys.readouterr()
        assert code == 0
        assert "sketch server" in captured.out
        assert "identical" in captured.out
        assert "NOT identical" not in captured.out


def teardown_module():
    clear_dataset_cache()

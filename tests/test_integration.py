"""End-to-end integration tests spanning all subsystems.

These are the scenarios the demo walks its audience through, executed
programmatically: build a sketch, compare it against the traditional
estimators on a JOB-light-style workload, run the paper's template
query, and exercise 0-tuple situations.
"""

import numpy as np
import pytest

from repro.baselines import (
    HyperEstimator,
    PostgresEstimator,
    SamplingEstimator,
    TruthEstimator,
)
from repro.core import DeepSketch, SketchConfig, build_sketch
from repro.db import execute_count, parse_sql
from repro.demo import SketchManager, run_template
from repro.metrics import qerrors, summarize_qerrors
from repro.sampling import is_zero_tuple
from repro.workload import (
    JobLightConfig,
    JoinEdge,
    Predicate,
    Query,
    QueryTemplate,
    TableRef,
    generate_job_light,
    spec_for_imdb,
    spec_for_tpch,
)


class TestSketchVsBaselines:
    """A miniature Table 1: the sketch should be competitive on the
    JOB-light-style workload even at test scale."""

    def test_summaries_computable_for_all_systems(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        workload = generate_job_light(
            imdb_small, JobLightConfig(n_queries=25, seed=10)
        )
        truths = np.array([execute_count(imdb_small, q) for q in workload])
        systems = {
            "Deep Sketch": np.array([sketch.estimate(q) for q in workload]),
            "HyPer": np.array(
                [HyperEstimator(imdb_small, sample_size=100).estimate(q) for q in workload]
            ),
            "PostgreSQL": np.array(
                [PostgresEstimator(imdb_small).estimate(q) for q in workload]
            ),
        }
        for name, estimates in systems.items():
            summary = summarize_qerrors(qerrors(estimates, truths))
            assert summary.median >= 1.0
            assert np.isfinite(summary.max), name


class TestPaperExampleQuery:
    def test_keyword_over_years_template(self, imdb_small, trained_sketch):
        """The intro's movie-producer query: keyword popularity over
        production_year, as a template with the year as placeholder."""
        sketch, _ = trained_sketch
        mk = imdb_small.table("movie_keyword")
        popular_kw = int(np.bincount(mk.column("keyword_id").values).argmax())
        base = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
            predicates=(Predicate("mk", "keyword_id", "=", popular_kw),),
        )
        template = QueryTemplate(base=base, alias="t", column="production_year")
        result = run_template(
            sketch,
            template,
            [TruthEstimator(imdb_small)],
            mode="width",
            width=10,
        )
        truth = result.truth()
        est = result.series[sketch.name].values
        assert len(truth) == len(est) >= 3
        # The sketch's series must at least track the trend direction of
        # the truth across decades (popular keyword grows over time).
        assert np.corrcoef(np.log1p(est), np.log1p(truth))[0, 1] > 0.0


class TestZeroTupleSituations:
    def test_sketch_graceful_on_zero_tuple(self, imdb_small, trained_sketch):
        sketch, _ = trained_sketch
        # A selective conjunction that misses the 100-row sample but has
        # matching rows in the full database.
        generator_queries = []
        from repro.workload import TrainingQueryGenerator

        generator = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=202)
        for query in generator.draw_many(400):
            if not query.predicates:
                continue
            if is_zero_tuple(sketch.samples, query):
                truth = execute_count(imdb_small, query)
                if truth > 0:
                    generator_queries.append((query, truth))
            if len(generator_queries) >= 5:
                break
        assert generator_queries, "no 0-tuple query found at this scale"
        for query, truth in generator_queries:
            estimate = sketch.estimate(query)
            assert np.isfinite(estimate) and estimate >= 1.0


class TestManagerEndToEnd:
    def test_full_demo_walkthrough(self, imdb_small):
        manager = SketchManager(imdb_small)
        spec = spec_for_imdb(tables=("title", "movie_keyword", "movie_info"))
        sketch, report = manager.create_sketch(
            "walkthrough",
            spec,
            config=SketchConfig(
                n_training_queries=150, epochs=3, sample_size=60, hidden_units=16
            ),
        )
        assert report.training is not None
        monitor = manager.monitor_for("walkthrough")
        assert monitor.stage_fraction("execute") == 1.0
        estimate = manager.query(
            "walkthrough",
            "SELECT COUNT(*) FROM title t, movie_info mi "
            "WHERE mi.movie_id=t.id AND mi.info_type_id=1;",
        )
        assert estimate >= 1.0


class TestSerializationAcrossProcessBoundary:
    def test_sketch_file_usable_without_database(self, trained_sketch, tmp_path):
        """A sketch must answer queries from its payload alone — that is
        the deployment story (browser / cell phone) of the paper."""
        sketch, _ = trained_sketch
        path = str(tmp_path / "standalone.sketch")
        sketch.save(path)
        loaded = DeepSketch.load(path)
        sql = (
            "SELECT COUNT(*) FROM title t, movie_companies mc "
            "WHERE mc.movie_id=t.id AND mc.company_type_id=2 "
            "AND t.production_year>1995;"
        )
        assert loaded.estimate(sql) == pytest.approx(sketch.estimate(sql))


class TestTpchEndToEnd:
    def test_tpch_sketch_builds_and_estimates(self, tpch_small):
        spec = spec_for_tpch(tables=("customer", "orders", "lineitem"))
        sketch, report = build_sketch(
            tpch_small,
            spec,
            name="tpch-test",
            config=SketchConfig(
                n_training_queries=200, epochs=3, sample_size=80, hidden_units=16
            ),
        )
        estimate = sketch.estimate(
            "SELECT COUNT(*) FROM orders o, lineitem l "
            "WHERE l.l_orderkey=o.o_orderkey AND l.l_quantity>40;"
        )
        truth = execute_count(
            tpch_small,
            parse_sql(
                "SELECT COUNT(*) FROM orders o, lineitem l "
                "WHERE l.l_orderkey=o.o_orderkey AND l.l_quantity>40;"
            ),
        )
        assert estimate >= 1.0
        assert truth > 0

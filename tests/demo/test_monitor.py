"""Monitor (training progress log) tests."""

import pytest

from repro.core.builder import ProgressEvent
from repro.demo import Monitor
from repro.errors import ReproError


def event(stage, current, total, message=""):
    return ProgressEvent(stage, current, total, message)


class TestMonitor:
    def test_records_events(self):
        monitor = Monitor()
        monitor.on_progress(event("define", 1, 1))
        monitor.on_progress(event("train", 1, 5, "epoch 1"))
        assert len(monitor.events) == 2
        assert monitor.latest().stage == "train"

    def test_stages_seen_in_order(self):
        monitor = Monitor()
        for stage in ("define", "generate", "execute", "train", "train"):
            monitor.on_progress(event(stage, 1, 1))
        assert monitor.stages_seen() == ["define", "generate", "execute", "train"]

    def test_stage_fraction(self):
        monitor = Monitor()
        monitor.on_progress(event("execute", 50, 100))
        monitor.on_progress(event("execute", 75, 100))
        assert monitor.stage_fraction("execute") == pytest.approx(0.75)
        assert monitor.stage_fraction("train") == 0.0

    def test_epoch_messages(self):
        monitor = Monitor()
        monitor.on_progress(event("train", 1, 2, "epoch 1: val 3.2"))
        monitor.on_progress(event("train", 2, 2, "epoch 2: val 2.9"))
        assert monitor.epoch_messages() == ["epoch 1: val 3.2", "epoch 2: val 2.9"]

    def test_latest_empty_raises(self):
        with pytest.raises(ReproError):
            Monitor().latest()

    def test_to_rows(self):
        monitor = Monitor()
        monitor.on_progress(event("define", 1, 1, "hi"))
        rows = monitor.to_rows()
        assert len(rows) == 1
        assert rows[0][1:] == ("define", 1, 1, "hi")

    def test_integrates_with_builder(self, imdb_small):
        from repro.core import SketchBuilder, SketchConfig
        from repro.workload import spec_for_imdb

        monitor = Monitor()
        builder = SketchBuilder(
            imdb_small,
            spec_for_imdb(),
            config=SketchConfig(
                n_training_queries=80, epochs=2, sample_size=40, hidden_units=8
            ),
            progress=monitor.on_progress,
        )
        _, report = builder.build("monitored")
        assert monitor.stages_seen() == ["define", "generate", "execute", "train"]
        assert monitor.stage_fraction("train") == 1.0
        assert len(monitor.epoch_messages()) == 2
        assert monitor.loss_curve_from(report.training).shape == (2,)

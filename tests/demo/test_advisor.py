"""Sketch advisor tests (the conclusions' open question, implemented)."""

import pytest

from repro.demo import coverage_of, recommend_sketches
from repro.errors import ReproError
from repro.workload import JoinEdge, Query, TableRef


def q(*tables):
    refs = tuple(TableRef(t, t) for t in tables)
    joins = tuple(
        JoinEdge(tables[i], "fk", tables[0], "id") for i in range(1, len(tables))
    )
    return Query(tables=refs, joins=joins)


class TestRecommendations:
    def test_single_subset_workload(self):
        workload = [q("title", "movie_keyword")] * 10
        recs = recommend_sketches(workload)
        assert len(recs) == 1
        assert recs[0].tables == ("movie_keyword", "title")
        assert recs[0].queries_covered == 10
        assert recs[0].workload_fraction == 1.0

    def test_superset_subsumes_subsets(self):
        # 3-table queries dominate; their sketch also serves the 2-table
        # and 1-table queries, so one sketch should cover everything.
        workload = (
            [q("title", "movie_keyword", "movie_info")] * 20
            + [q("title", "movie_keyword")] * 5
            + [q("title")] * 5
        )
        recs = recommend_sketches(workload)
        assert len(recs) == 1
        assert set(recs[0].tables) == {"title", "movie_keyword", "movie_info"}
        assert coverage_of(recs, workload) == 1.0

    def test_disjoint_subsets_need_multiple_sketches(self):
        workload = [q("title", "movie_keyword")] * 10 + [q("customer", "orders")] * 10
        recs = recommend_sketches(workload)
        assert len(recs) == 2
        assert coverage_of(recs, workload) == 1.0

    def test_max_sketches_budget(self):
        workload = (
            [q("title", "movie_keyword")] * 10
            + [q("customer", "orders")] * 5
            + [q("part", "lineitem")] * 1
        )
        recs = recommend_sketches(workload, max_sketches=2)
        assert len(recs) == 2
        # the rare subset is the one sacrificed
        assert coverage_of(recs, workload) == pytest.approx(15 / 16)

    def test_min_coverage_stops_early(self):
        workload = [q("a")] * 95 + [q("b")] * 5
        recs = recommend_sketches(workload, min_coverage=0.9)
        assert len(recs) == 1
        assert recs[0].tables == ("a",)

    def test_cost_efficiency_prefers_small_subsets(self):
        # A wide 5-table subset serving few queries must lose to narrow
        # subsets serving many.
        workload = [q("a", "b")] * 50 + [q("a", "b", "c", "d", "e")] * 1
        recs = recommend_sketches(workload, max_sketches=1)
        assert recs[0].tables == ("a", "b")

    def test_pick_order_by_value(self):
        workload = [q("a", "b")] * 30 + [q("x", "y")] * 5
        recs = recommend_sketches(workload)
        assert recs[0].queries_covered >= recs[1].queries_covered

    def test_empty_workload_rejected(self):
        with pytest.raises(ReproError):
            recommend_sketches([])

    def test_bad_coverage_rejected(self):
        with pytest.raises(ReproError):
            recommend_sketches([q("a")], min_coverage=0.0)

    def test_coverage_of_empty_rejected(self):
        with pytest.raises(ReproError):
            coverage_of([], [])

    def test_with_generated_workload(self, imdb_small):
        from repro.workload import TrainingQueryGenerator, spec_for_imdb

        generator = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=1)
        workload = generator.draw_many(200)
        recs = recommend_sketches(workload, min_coverage=0.9)
        assert recs
        assert coverage_of(recs, workload) >= 0.9
        # Every recommended subset stays within the spec's tables.
        for rec in recs:
            assert set(rec.tables) <= set(spec_for_imdb().tables)

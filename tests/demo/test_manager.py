"""SketchManager tests: the demo backend workflow."""

import pytest

from repro.core import SketchConfig
from repro.demo import SketchManager
from repro.errors import SketchError
from repro.workload import spec_for_imdb

FAST = SketchConfig(n_training_queries=80, epochs=2, sample_size=40, hidden_units=8)


@pytest.fixture
def manager(imdb_small):
    return SketchManager(imdb_small)


@pytest.fixture
def spec():
    return spec_for_imdb(tables=("title", "movie_keyword"))


class TestRegistry:
    def test_create_and_list(self, manager, spec):
        manager.create_sketch("s1", spec, config=FAST)
        assert manager.list_sketches() == ["s1"]

    def test_duplicate_name_rejected(self, manager, spec):
        manager.create_sketch("s1", spec, config=FAST)
        with pytest.raises(SketchError):
            manager.create_sketch("s1", spec, config=FAST)

    def test_get_unknown_rejected(self, manager):
        with pytest.raises(SketchError):
            manager.get_sketch("nope")

    def test_register_prebuilt(self, manager, trained_sketch):
        sketch, _ = trained_sketch
        manager.register_sketch(sketch)
        assert manager.get_sketch(sketch.name) is sketch
        with pytest.raises(SketchError):
            manager.register_sketch(sketch)

    def test_drop(self, manager, spec):
        manager.create_sketch("s1", spec, config=FAST)
        manager.drop_sketch("s1")
        assert manager.list_sketches() == []
        with pytest.raises(SketchError):
            manager.drop_sketch("s1")

    def test_monitor_available_after_create(self, manager, spec):
        manager.create_sketch("s1", spec, config=FAST)
        monitor = manager.monitor_for("s1")
        assert monitor.stage_fraction("train") == 1.0
        with pytest.raises(SketchError):
            manager.monitor_for("never-built")


class TestQuerying:
    def test_query_by_name(self, manager, spec):
        manager.create_sketch("s1", spec, config=FAST)
        estimate = manager.query(
            "s1",
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2000;",
        )
        assert estimate >= 1.0

    def test_route_picks_narrowest_covering_sketch(self, manager, spec, trained_sketch):
        wide, _ = trained_sketch  # six JOB-light tables
        manager.register_sketch(wide)
        manager.create_sketch("narrow", spec, config=FAST)  # title+movie_keyword
        sql = (
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id=t.id AND t.production_year>2000;"
        )
        name, estimate = manager.route(sql)
        assert name == "narrow"
        assert estimate >= 1.0

    def test_route_falls_back_to_wider_sketch(self, manager, spec, trained_sketch):
        wide, _ = trained_sketch
        manager.register_sketch(wide)
        manager.create_sketch("narrow", spec, config=FAST)
        name, _ = manager.route(
            "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id=t.id;"
        )
        assert name == wide.name

    def test_route_uncovered_rejected(self, manager, spec):
        manager.create_sketch("narrow", spec, config=FAST)
        with pytest.raises(SketchError):
            manager.route("SELECT COUNT(*) FROM keyword k;")

    def test_advise(self, manager, imdb_small):
        from repro.workload import TrainingQueryGenerator, spec_for_imdb

        generator = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=9)
        recommendations = manager.advise(generator.draw_many(150), max_sketches=3)
        assert 1 <= len(recommendations) <= 3
        assert all(r.queries_covered > 0 for r in recommendations)


class TestIncrementalBuild:
    def test_train_while_querying(self, manager, spec, trained_sketch):
        """The demo's third mitigation: query an existing sketch while a
        new model trains epoch by epoch."""
        prebuilt, _ = trained_sketch
        manager.register_sketch(prebuilt)

        pending = manager.start_build("incremental", spec, config=FAST)
        assert manager.pending_builds() == ["incremental"]
        assert not pending.finished

        # Interleave: one training epoch, then a query, then the rest.
        manager.step_build("incremental")
        mid_estimate = manager.query(
            prebuilt.name,
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2010;",
        )
        assert mid_estimate >= 1.0
        manager.step_build("incremental")

        assert manager.pending_builds() == []
        assert "incremental" in manager.list_sketches()
        estimate = manager.query(
            "incremental",
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2010;",
        )
        assert estimate >= 1.0

    def test_epoch_stats_accumulate(self, manager, spec):
        pending = manager.start_build("inc2", spec, config=FAST)
        manager.step_build("inc2")
        assert len(pending.epoch_stats) == 1
        manager.step_build("inc2")
        assert len(pending.epoch_stats) == 2

    def test_step_unknown_build_rejected(self, manager):
        with pytest.raises(SketchError):
            manager.step_build("ghost")

    def test_duplicate_pending_rejected(self, manager, spec):
        manager.start_build("inc3", spec, config=FAST)
        with pytest.raises(SketchError):
            manager.start_build("inc3", spec, config=FAST)

    def test_incremental_metadata(self, manager, spec):
        manager.start_build("inc4", spec, config=FAST)
        manager.step_build("inc4")
        manager.step_build("inc4")
        sketch = manager.get_sketch("inc4")
        assert sketch.metadata["incremental"] is True
        assert sketch.metadata["epochs"] == 2

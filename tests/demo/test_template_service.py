"""Template service tests (the Figure 2 chart data)."""

import numpy as np
import pytest

from repro.baselines import HyperEstimator, PostgresEstimator, TruthEstimator
from repro.demo import run_template
from repro.errors import SketchError
from repro.workload import JoinEdge, Predicate, Query, QueryTemplate, TableRef


@pytest.fixture(scope="module")
def setup(request):
    imdb = request.getfixturevalue("imdb_small")
    sketch, _ = request.getfixturevalue("trained_sketch")
    base = Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=(Predicate("mk", "keyword_id", "=", 1),),
    )
    template = QueryTemplate(base=base, alias="t", column="production_year")
    estimators = [
        TruthEstimator(imdb),
        HyperEstimator(imdb, sample_size=100, seed=0),
        PostgresEstimator(imdb),
    ]
    return sketch, template, estimators


class TestRunTemplate:
    def test_series_for_all_systems(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, estimators, mode="buckets", n_buckets=6)
        assert set(result.series) == {
            sketch.name, "True cardinality", "HyPer", "PostgreSQL",
        }
        assert len(result.labels) == 6
        for series in result.series.values():
            assert len(series) == 6

    def test_truth_series_is_exact(self, setup, request):
        imdb = request.getfixturevalue("imdb_small")
        from repro.db import execute_count

        sketch, template, estimators = setup
        result = run_template(sketch, template, estimators, mode="buckets", n_buckets=4)
        truth = result.truth()
        for value, inst in zip(truth, result.instances):
            assert value == execute_count(imdb, inst.query)

    def test_qerror_summary_per_system(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, estimators, mode="buckets", n_buckets=5)
        summary = result.qerror_summary(sketch.name)
        assert summary.median >= 1.0
        with pytest.raises(SketchError):
            result.qerror_summary("NotASystem")

    def test_distinct_mode_draws_from_sample(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, [], mode="distinct", limit=8)
        assert len(result.labels) == 8
        sample_years = set(
            sketch.samples.for_table("title")
            .column("production_year")
            .non_null_values()
            .tolist()
        )
        assert set(result.labels) <= {int(v) for v in sample_years}

    def test_width_mode_year_grouping(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, [], mode="width", width=20)
        assert len(result.labels) >= 3
        assert all(isinstance(label, float) for label in result.labels)

    def test_as_table_rendering(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, estimators, mode="buckets", n_buckets=3)
        text = result.as_table()
        assert "PostgreSQL" in text
        assert len(text.splitlines()) == 4  # header + 3 buckets

    def test_all_values_finite_positive(self, setup):
        sketch, template, estimators = setup
        result = run_template(sketch, template, estimators, mode="buckets", n_buckets=5)
        for series in result.series.values():
            assert np.isfinite(series.values).all()
            assert (series.values >= 0).all()

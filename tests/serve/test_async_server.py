"""AsyncSketchServer: flush triggers, dedup, drain, and parity."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import SketchError
from repro.serve import AsyncServeConfig, AsyncSketchServer
from repro.serve.async_server import percentile
from repro.workload import Predicate, Query, TableRef, spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

RTOL = 1e-12
RESULT_TIMEOUT = 30.0  # generous: shared CI runners stall unpredictably


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=777)
    return gen.draw_many(30)


def results(futures):
    return [f.result(timeout=RESULT_TIMEOUT) for f in futures]


class TestFlushTriggers:
    def test_max_wait_fires_with_partial_batch(self, manager, workload):
        # Far fewer requests than max_batch_size: only the time trigger
        # can flush them.
        config = AsyncServeConfig(max_batch_size=64, max_wait_ms=40.0, min_idle_ms=None)
        with AsyncSketchServer(manager, config) as server:
            futures = [server.submit(q) for q in workload[:3]]
            responses = results(futures)
        assert all(r.ok for r in responses)
        assert server.stats.n_flushes_timed >= 1
        assert server.stats.n_flushes_full == 0

    def test_full_batch_flushes_before_max_wait(self, manager, workload):
        # max_wait is far beyond the test timeout: only the size trigger
        # can resolve these futures in time.
        config = AsyncServeConfig(
            max_batch_size=4, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False,
        )
        with AsyncSketchServer(manager, config) as server:
            futures = [server.submit(q) for q in workload[:4]]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            assert all(r.ok for r in responses)
            assert server.stats.n_flushes_full == 1

    def test_concurrent_submitters_share_one_flush(self, manager, workload):
        # Eight threads each contribute one distinct query inside the
        # max_wait window; a single timed flush answers all of them with
        # one forward pass.
        n = 8
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=500.0, min_idle_ms=None,
            use_cache=False,
        )
        futures = [None] * n
        barrier = threading.Barrier(n)

        with AsyncSketchServer(manager, config) as server:
            def submit_one(i):
                barrier.wait()
                futures[i] = server.submit(workload[i])

            threads = [
                threading.Thread(target=submit_one, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            responses = results(futures)
        assert all(r.ok for r in responses)
        # One shared flush is the expected outcome; a second is
        # tolerated only for the case a CI scheduler stall stretches
        # the submits past the max_wait window.  8 independent flushes
        # (no sharing at all) must never happen.
        assert server.stats.n_forward_batches <= 2
        assert server.stats.n_flushes <= 2

    def test_idle_trigger_flushes_quiesced_burst_early(self, manager, workload):
        # max_wait is far beyond the test horizon; the burst must flush
        # via the idle trigger shortly after submissions stop.
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=5.0,
            use_cache=False,
        )
        with AsyncSketchServer(manager, config) as server:
            futures = [server.submit(q) for q in workload[:3]]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            assert all(r.ok for r in responses)
            assert server.stats.n_flushes_idle >= 1
            assert server.stats.n_flushes_timed == 0

    def test_wait_summary_reflects_max_wait(self, manager, workload):
        config = AsyncServeConfig(max_batch_size=64, max_wait_ms=30.0, min_idle_ms=None)
        with AsyncSketchServer(manager, config) as server:
            results([server.submit(q) for q in workload[:2]])
        waits = server.wait_summary()
        assert waits["count"] == 2.0
        # Queue wait is at least the configured deadline (the buffer
        # never filled) but not unboundedly larger.
        assert waits["max"] >= 0.030 - 1e-3
        assert waits["p50"] <= 5.0


class TestDedup:
    def test_dedup_returns_identical_objects(self, manager, workload):
        config = AsyncServeConfig(max_wait_ms=200.0, min_idle_ms=None, use_cache=False)
        with AsyncSketchServer(manager, config) as server:
            f1 = server.submit(workload[0])
            f2 = server.submit(workload[0])
            r1, r2 = f1.result(RESULT_TIMEOUT), f2.result(RESULT_TIMEOUT)
        assert r1 is r2
        assert r1.ok
        assert server.stats.n_deduped == 1
        assert server.stats.n_requests == 2
        assert server.stats.n_answered == 2  # every waiter counted

    def test_dedup_spans_submitter_threads(self, manager, workload):
        n = 6
        config = AsyncServeConfig(max_wait_ms=300.0, min_idle_ms=None, use_cache=False)
        futures = [None] * n
        barrier = threading.Barrier(n)
        with AsyncSketchServer(manager, config) as server:
            def submit_one(i):
                barrier.wait()
                futures[i] = server.submit(workload[0])

            threads = [
                threading.Thread(target=submit_one, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            responses = results(futures)
        assert len({id(r) for r in responses}) == 1
        assert server.stats.n_deduped == n - 1

    def test_dedup_can_be_disabled(self, manager, workload):
        config = AsyncServeConfig(max_wait_ms=100.0, min_idle_ms=None, use_cache=False, dedup=False)
        with AsyncSketchServer(manager, config) as server:
            f1 = server.submit(workload[0])
            f2 = server.submit(workload[0])
            r1, r2 = f1.result(RESULT_TIMEOUT), f2.result(RESULT_TIMEOUT)
        assert r1 is not r2
        assert r1.estimate == r2.estimate  # batch dedup still collapses work
        assert server.stats.n_deduped == 0


class TestCaching:
    def test_repeat_query_resolves_at_submit(self, manager, workload):
        config = AsyncServeConfig(max_wait_ms=20.0)
        with AsyncSketchServer(manager, config) as server:
            first = server.submit(workload[0]).result(RESULT_TIMEOUT)
            assert first.ok
            again = server.submit(workload[0])
            # Resolved synchronously on the submitting thread: no queue
            # wait, no flush.
            assert again.done()
            response = again.result(0)
        assert response.cached
        assert response.estimate == first.estimate
        assert server.stats.n_fast_cache_hits == 1

    def test_fast_hits_replay_recency_on_flush_thread(
        self, manager, trained_sketch, workload
    ):
        # A submit-time peek is read-only; the flush thread replays it
        # as a real cache.get() so hot entries stay at the MRU end.
        sketch, _ = trained_sketch
        config = AsyncServeConfig(max_wait_ms=20.0)
        with AsyncSketchServer(manager, config) as server:
            server.submit(workload[0]).result(RESULT_TIMEOUT)  # warm it
            hits_before = sketch.cache.stats().hits
            assert server.submit(workload[0]).result(0).cached  # peek hit
            # Wake the loop with unrelated work; the replay runs right
            # after the flush, so poll briefly for the counter to move.
            server.submit(workload[1]).result(RESULT_TIMEOUT)
            deadline = time.monotonic() + 5.0
            while (
                sketch.cache.stats().hits <= hits_before
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert sketch.cache.stats().hits > hits_before

    def test_feature_cache_shared_across_flushes(self, manager, workload):
        import repro.core.featurization as featurization_mod

        template_query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", ">", 2000),),
        )
        same_template = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", ">", 1995),),
        )
        config = AsyncServeConfig(max_wait_ms=20.0)
        with AsyncSketchServer(manager, config) as server:
            assert server.submit(template_query).result(RESULT_TIMEOUT).ok

            builds = []
            original = featurization_mod.Featurizer._build_template

            def counting(self, query, memo):
                builds.append(featurization_mod.template_key(query))
                return original(self, query, memo)

            featurization_mod.Featurizer._build_template = counting
            try:
                response = server.submit(same_template).result(RESULT_TIMEOUT)
            finally:
                featurization_mod.Featurizer._build_template = original
        assert response.ok and not response.cached
        # The second query's template was already cached: structure
        # featurization (one-hot/table/join row construction) never ran.
        assert featurization_mod.template_key(same_template) not in builds
        assert server.feature_cache.stats().hits >= 1


class TestShutdown:
    def test_close_drains_buffered_requests(self, manager, workload):
        # max_wait far beyond the test horizon: only the shutdown drain
        # can flush these.
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False,
        )
        server = AsyncSketchServer(manager, config).start()
        futures = [server.submit(q) for q in workload[:5]]
        server.close()
        responses = [f.result(timeout=1.0) for f in futures]  # already resolved
        assert all(r.ok for r in responses)
        assert server.stats.n_answered == 5
        assert server.stats.n_flushes_drain >= 1
        assert server.pending == 0

    def test_submit_after_close_raises(self, manager, workload):
        server = AsyncSketchServer(manager).start()
        server.close()
        with pytest.raises(SketchError):
            server.submit(workload[0])

    def test_close_is_idempotent(self, manager):
        server = AsyncSketchServer(manager).start()
        server.close()
        server.close()

    def test_cancelled_waiter_cannot_strand_the_loop(self, manager, workload):
        # The pending future is shared by all deduped waiters, so it is
        # uncancellable (moved to RUNNING at creation) — a client-side
        # cancel() must neither kill the flush loop via InvalidStateError
        # nor rob other waiters of their result.
        config = AsyncServeConfig(max_wait_ms=50.0, min_idle_ms=None,
                                  use_cache=False)
        with AsyncSketchServer(manager, config) as server:
            f1 = server.submit(workload[0])
            f2 = server.submit(workload[0])  # deduped twin, same future
            assert not f1.cancel()
            assert f2.result(RESULT_TIMEOUT).ok
            # The loop survived: a fresh request still resolves.
            assert server.submit(workload[1]).result(RESULT_TIMEOUT).ok

    def test_context_manager_round_trip(self, manager, workload):
        with AsyncSketchServer(manager, AsyncServeConfig(max_wait_ms=10.0)) as server:
            assert server.submit(workload[0]).result(RESULT_TIMEOUT).ok
        assert server.closed


class TestParityAndErrors:
    def test_estimates_match_single_query_path(self, manager, trained_sketch, workload):
        sketch, _ = trained_sketch
        config = AsyncServeConfig(max_wait_ms=10.0, max_batch_size=8)
        with AsyncSketchServer(manager, config) as server:
            responses = server.serve(workload[:20])
        assert all(r.ok for r in responses)
        sketch.clear_cache()
        single = [sketch.estimate(q, use_cache=False) for q in workload[:20]]
        np.testing.assert_allclose(
            [r.estimate for r in responses], single, rtol=RTOL, atol=0.0
        )

    def test_malformed_sql_resolves_immediately(self, manager):
        with AsyncSketchServer(manager) as server:
            future = server.submit("SELECT nonsense;")
            assert future.done()
            response = future.result(0)
        assert not response.ok
        assert server.stats.n_errors == 1

    def test_uncovered_tables_resolve_at_flush(self, manager):
        # Route-at-flush: an uncoverable request defers (the route may
        # still appear) and resolves with a structured route error at
        # its flush — bounded by ~max_wait_ms, never a hung future.
        outside = Query(tables=(TableRef("no_such_table", "x"),))
        with AsyncSketchServer(manager) as server:
            response = server.submit(outside).result(RESULT_TIMEOUT)
        assert not response.ok
        assert "no registered sketch covers" in response.error

    def test_featurization_failure_is_isolated(self, manager, workload):
        bad = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        config = AsyncServeConfig(max_wait_ms=50.0)
        with AsyncSketchServer(manager, config) as server:
            responses = server.serve([workload[0], bad, workload[1]])
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok

    def test_asyncio_front_end(self, manager, workload):
        config = AsyncServeConfig(max_wait_ms=20.0)

        async def run():
            with AsyncSketchServer(manager, config) as server:
                return await asyncio.gather(
                    *[server.submit_async(q) for q in workload[:6]]
                )

        responses = asyncio.run(run())
        assert all(r.ok for r in responses)


class TestConfigAndHelpers:
    def test_bad_config_rejected(self):
        with pytest.raises(SketchError):
            AsyncServeConfig(max_batch_size=0)
        with pytest.raises(SketchError):
            AsyncServeConfig(max_wait_ms=-1.0)
        with pytest.raises(SketchError):
            AsyncServeConfig(latency_window=0)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile([], 0.99) == 0.0

"""The binary wire transport: frame identity, robustness, negotiation.

The acceptance contract: for every response class the engine produces,
``decode_response(encode_response(r))`` is field-for-field identity;
malformed traffic — truncated frames, oversized length prefixes,
mid-frame connection loss, version skew — lands in the existing
``ProtocolError`` / ``RemoteServerError`` taxonomy with no hangs and no
partial responses; and a client negotiates binary only when the server
advertises it, falling back to JSON everywhere else.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.db.sql import parse_sql
from repro.demo import SketchManager
from repro.errors import (
    ProtocolError,
    RemoteConnectionError,
    RemoteServerError,
)
from repro.serve import (
    CODE_DEADLINE,
    CODE_INTERNAL,
    CODE_PARSE,
    CODE_ROUTE,
    CODE_SHED,
    CODE_VOCAB,
    EstimateResponse,
    RemoteSketchServer,
    ServeConfig,
    SketchGateway,
    SketchHTTPServer,
)
from repro.serve import wire
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

PARITY_RTOL = 1e-12
RESULT_TIMEOUT = 30

SQL = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"
JOIN_SQL = (
    "SELECT COUNT(*) FROM title t, movie_keyword mk "
    "WHERE mk.movie_id = t.id AND t.production_year > 2000;"
)


def _response_of_every_class() -> dict[str, EstimateResponse]:
    query = parse_sql(SQL)
    join_query = parse_sql(JOIN_SQL)
    return {
        "ok_sql_request": EstimateResponse(
            request=SQL, query=query, sketch="imdb",
            estimate=1234.567891011, cached=False, token=7,
        ),
        "ok_query_request": EstimateResponse(
            request=join_query, query=join_query, sketch="imdb",
            estimate=0.3333333333333333, cached=True,
        ),
        CODE_PARSE: EstimateResponse(
            request="SELECT nonsense;", query=None, sketch=None,
            estimate=None, error="expected 'COUNT', found 'nonsense'",
            code=CODE_PARSE,
        ),
        CODE_ROUTE: EstimateResponse(
            request=SQL, query=query, sketch=None, estimate=None,
            error="no registered sketch covers tables ['title']",
            code=CODE_ROUTE,
        ),
        CODE_VOCAB: EstimateResponse(
            request=query, query=query, sketch="imdb", estimate=None,
            error="column 'episode_nr' is outside the vocabulary",
            code=CODE_VOCAB,
        ),
        CODE_SHED: EstimateResponse(
            request=SQL, query=query, sketch="imdb", estimate=None,
            error="request shed: queue depth 64 >= max_queue_depth 64",
            code=CODE_SHED,
        ),
        CODE_DEADLINE: EstimateResponse(
            request=query, query=query, sketch="imdb", estimate=None,
            error="deadline of 50ms exceeded", code=CODE_DEADLINE,
        ),
        CODE_INTERNAL: EstimateResponse(
            request=SQL, query=query, sketch="imdb", estimate=None,
            error="internal serving error: RuntimeError('boom')",
            code=CODE_INTERNAL,
        ),
    }


# ----------------------------------------------------------------------
# codec identity
# ----------------------------------------------------------------------
class TestCodecRoundTrip:
    @pytest.mark.parametrize("kind", sorted(_response_of_every_class()))
    def test_response_round_trip_is_identity(self, kind):
        response = _response_of_every_class()[kind]
        back, server_ms = wire.decode_response(
            wire.encode_response(response, server_ms=1.25)
        )
        assert back == response  # dataclass equality: every field exact
        assert type(back.request) is type(response.request)
        assert server_ms == 1.25

    def test_estimate_survives_at_full_precision(self):
        response = EstimateResponse(
            request=SQL, query=parse_sql(SQL), sketch="s",
            estimate=1.2345678901234567e17, cached=False,
        )
        back, _ = wire.decode_response(wire.encode_response(response))
        assert back.estimate == response.estimate

    def test_batch_round_trip(self):
        responses = list(_response_of_every_class().values())
        back, server_ms = wire.decode_batch_response(
            wire.encode_batch_response(responses, server_ms=9.5)
        )
        assert back == responses
        assert server_ms == 9.5

    def test_request_round_trip(self):
        sql, sketch = wire.decode_estimate_request(
            wire.encode_estimate_request(parse_sql(SQL), "imdb")
        )
        assert parse_sql(sql) == parse_sql(SQL)
        assert sketch == "imdb"
        sqls, sketch = wire.decode_batch_request(
            wire.encode_batch_request([SQL, JOIN_SQL], None)
        )
        assert sqls == [SQL, JOIN_SQL]
        assert sketch is None

    def test_error_frame_round_trip(self):
        message, code = wire.decode_error(
            wire.encode_error("version skew", "protocol")
        )
        assert (message, code) == ("version skew", "protocol")


# ----------------------------------------------------------------------
# frame robustness (socketpair-level)
# ----------------------------------------------------------------------
def _frame_bytes(kind: int, payload: bytes, *, version=None, magic=None,
                 length=None) -> bytes:
    return struct.pack(
        "!2sBBI",
        magic if magic is not None else wire.MAGIC,
        version if version is not None else wire.WIRE_VERSION,
        kind,
        length if length is not None else len(payload),
    ) + payload


class TestFrameRobustness:
    def _pipe(self):
        a, b = socket.socketpair()
        a.settimeout(RESULT_TIMEOUT)
        b.settimeout(RESULT_TIMEOUT)
        return a, b

    def test_round_trip_over_a_socket(self):
        a, b = self._pipe()
        try:
            wire.write_frame(a, wire.KIND_ERROR, wire.encode_error("x"))
            assert wire.read_frame(b) == (
                wire.KIND_ERROR, wire.encode_error("x")
            )
        finally:
            a.close(); b.close()

    def test_clean_eof_between_frames_is_none(self):
        a, b = self._pipe()
        a.close()
        try:
            assert wire.read_frame(b) is None
        finally:
            b.close()

    def test_connection_loss_mid_header_is_truncated_frame(self):
        a, b = self._pipe()
        a.sendall(_frame_bytes(wire.KIND_ESTIMATE, b"abcd")[:3])
        a.close()
        try:
            with pytest.raises(wire.TruncatedFrame, match="mid-frame"):
                wire.read_frame(b)
        finally:
            b.close()

    def test_connection_loss_mid_payload_is_truncated_frame(self):
        a, b = self._pipe()
        frame = _frame_bytes(wire.KIND_ESTIMATE, b"x" * 64)
        a.sendall(frame[: len(frame) - 10])
        a.close()
        try:
            with pytest.raises(wire.TruncatedFrame, match="mid-frame"):
                wire.read_frame(b)
        finally:
            b.close()

    def test_bad_magic_is_protocol_error(self):
        a, b = self._pipe()
        a.sendall(_frame_bytes(wire.KIND_ESTIMATE, b"", magic=b"GE"))
        try:
            with pytest.raises(ProtocolError, match="magic"):
                wire.read_frame(b)
        finally:
            a.close(); b.close()

    def test_version_skew_is_protocol_error(self):
        a, b = self._pipe()
        a.sendall(
            _frame_bytes(
                wire.KIND_ESTIMATE, b"", version=wire.WIRE_VERSION + 1
            )
        )
        try:
            with pytest.raises(ProtocolError, match="wire version"):
                wire.read_frame(b)
        finally:
            a.close(); b.close()

    def test_oversized_length_prefix_refused_without_reading_payload(self):
        a, b = self._pipe()
        # the length prefix claims 1 GiB; only the 8-byte header travels
        a.sendall(
            _frame_bytes(
                wire.KIND_ESTIMATE, b"", length=1 << 30
            )
        )
        try:
            with pytest.raises(ProtocolError, match="exceeds"):
                wire.read_frame(b)
        finally:
            a.close(); b.close()

    def test_truncated_payload_fields_are_protocol_errors(self):
        good = wire.encode_response(
            _response_of_every_class()["ok_sql_request"], server_ms=1.0
        )
        for cut in (0, 1, 2, 7, len(good) // 2, len(good) - 1):
            with pytest.raises(ProtocolError):
                wire.decode_response(good[:cut])

    def test_trailing_bytes_are_protocol_errors(self):
        good = wire.encode_response(
            _response_of_every_class()["ok_sql_request"]
        )
        with pytest.raises(ProtocolError, match="trailing"):
            wire.decode_response(good + b"\x00")

    def test_unknown_code_byte_is_protocol_error(self):
        payload = wire.encode_response(
            _response_of_every_class()[CODE_SHED]
        )
        corrupt = payload[:1] + bytes([250]) + payload[2:]
        with pytest.raises(ProtocolError, match="code"):
            wire.decode_response(corrupt)


# ----------------------------------------------------------------------
# end-to-end: binary transport against a live front door
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    with SketchHTTPServer(manager, ServeConfig(), port=0) as server:
        yield manager, server
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=131)
    return gen.draw_many(24)


class TestBinaryTransportEndToEnd:
    def test_healthz_advertises_both_transports(self, served):
        _, server = served
        with RemoteSketchServer(server.url) as client:
            transports = client.healthz()["transports"]
        assert "json" in transports
        binary = transports["binary"]
        assert binary["port"] == server.binary_port
        assert binary["wire_version"] == wire.WIRE_VERSION

    def test_auto_negotiates_binary_and_matches_json_exactly(
        self, served, workload
    ):
        _, server = served
        with RemoteSketchServer(server.url, transport="json") as json_client:
            assert json_client.negotiate_transport() == "json"
            json_answers = json_client.estimate_many(workload)
        with RemoteSketchServer(server.url) as auto_client:
            assert auto_client.active_transport is None  # lazy
            binary_answers = auto_client.estimate_many(workload)
            assert auto_client.active_transport == "binary"
        assert all(r.ok for r in json_answers)
        assert all(r.ok for r in binary_answers)
        np.testing.assert_allclose(
            [r.estimate for r in binary_answers],
            [r.estimate for r in json_answers],
            rtol=PARITY_RTOL,
        )

    def test_single_estimates_and_futures_flow_over_binary(
        self, served, workload
    ):
        _, server = served
        with RemoteSketchServer(server.url, transport="binary") as client:
            single = client.estimate(workload[0])
            assert single.ok and single.estimate > 0
            assert single.request is workload[0]
            futures = client.submit_many(workload[:5])
            answers = [f.result(RESULT_TIMEOUT) for f in futures]
            assert all(r.ok for r in answers)
            timings = client.timings()
        assert timings["transport"] == "binary"
        assert timings["wire"]["count"] >= 6

    def test_request_failures_stay_structured_values(self, served):
        _, server = served
        with RemoteSketchServer(server.url, transport="binary") as client:
            bad = client.estimate("SELECT nonsense;")
            assert not bad.ok and bad.code == CODE_PARSE
            missing = client.estimate(SQL, sketch="no-such-sketch")
            assert not missing.ok and missing.code == CODE_ROUTE

    def test_sequential_requests_reuse_one_connection(self, served, workload):
        _, server = served
        with RemoteSketchServer(server.url, transport="binary") as client:
            for query in workload[:6]:
                assert client.estimate(query).ok
            opened = client.connections_opened
        # negotiation uses one JSON connection; the six estimates share
        # one persistent binary socket
        assert opened["binary"] == 1
        assert opened["json"] == 1

    def test_json_keepalive_reuses_connections(self, served, workload):
        _, server = served
        with RemoteSketchServer(server.url, transport="json") as client:
            for query in workload[:8]:
                assert client.estimate(query).ok
            client.healthz()
            opened = client.connections_opened["json"]
        assert opened == 1  # one dial for nine sequential round trips

    def test_garbage_on_the_binary_port_answers_error_then_closes(
        self, served
    ):
        _, server = served
        with socket.create_connection(
            ("127.0.0.1", server.binary_port), timeout=RESULT_TIMEOUT
        ) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            frame = wire.read_frame(sock)
            assert frame is not None
            kind, payload = frame
            assert kind == wire.KIND_ERROR
            message, code = wire.decode_error(payload)
            assert code == "protocol"
            assert wire.read_frame(sock) is None  # server closed after

    def test_client_maps_error_frame_onto_protocol_error(self, served):
        _, server = served
        with RemoteSketchServer(server.url, transport="binary") as client:
            client.negotiate_transport()
            with pytest.raises(ProtocolError):
                client._binary_call(0x7F, b"", "bogus")  # unknown kind

    def test_forced_binary_against_json_only_server_raises(self, served):
        _, server = served

        class NoBinary(RemoteSketchServer):
            def healthz(self):
                health = super().healthz()
                health.pop("transports", None)
                return health

        with NoBinary(server.url, transport="binary") as client:
            with pytest.raises(RemoteServerError, match="binary"):
                client.estimate(SQL)

    def test_version_skewed_server_is_a_protocol_error(self):
        """A listener that answers with a future wire version: the
        client refuses the frame before touching its payload."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def skewed():
            conn, _ = listener.accept()
            with conn:
                wire.read_frame(conn)
                conn.sendall(
                    _frame_bytes(
                        wire.KIND_RESPONSE, b"junk",
                        version=wire.WIRE_VERSION + 1,
                    )
                )

        thread = threading.Thread(target=skewed, daemon=True)
        thread.start()
        try:
            client = RemoteSketchServer("http://127.0.0.1:1", timeout=5)
            from repro.serve.client import _SocketPool

            client._binary_pool = _SocketPool("127.0.0.1", port, 5)
            client._active = "binary"
            with pytest.raises(ProtocolError, match="wire version"):
                client._binary_call(wire.KIND_ESTIMATE, b"", "estimate")
            client.close()
        finally:
            listener.close()
            thread.join(RESULT_TIMEOUT)

    def test_server_death_mid_frame_is_remote_server_error(self):
        """A listener that writes half a response header then slams the
        connection: the client surfaces RemoteServerError (request may
        have executed), never a partial response, never a hang."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def die_mid_frame():
            conn, _ = listener.accept()
            wire.read_frame(conn)
            conn.sendall(_frame_bytes(wire.KIND_RESPONSE, b"x" * 64)[:20])
            conn.close()  # FIN mid-payload: 20 of 72 frame bytes sent

        thread = threading.Thread(target=die_mid_frame, daemon=True)
        thread.start()
        try:
            client = RemoteSketchServer("http://127.0.0.1:1", timeout=5)
            from repro.serve.client import _SocketPool

            client._binary_pool = _SocketPool("127.0.0.1", port, 5)
            client._active = "binary"
            with pytest.raises(RemoteServerError, match="mid-frame"):
                client._binary_call(wire.KIND_ESTIMATE, b"", "estimate")
            client.close()
        finally:
            listener.close()
            thread.join(RESULT_TIMEOUT)


class TestGatewayNegotiation:
    def test_gateway_picks_binary_per_backend_and_reports_it(
        self, served, workload
    ):
        _, server = served
        with SketchGateway(
            [server.url], health_interval_s=None, timeout=RESULT_TIMEOUT
        ) as gateway:
            answers = gateway.estimate_many(workload[:8])
            assert all(r.ok for r in answers)
            transports = gateway.stats_summary()["gateway"]["transports"]
        assert transports == {server.url: "binary"}

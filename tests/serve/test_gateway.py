"""SketchGateway: sharded multi-node serving with failover.

Two layers of coverage.  The stub layer drives the gateway with
scripted fake clients (via ``client_factory``) so routing, round-robin
replication, the per-fault-class failover policy, health revival, and
fleet stats merging are tested deterministically with no sockets.  The
integration layer runs two real ``SketchHTTPServer`` backends sharing
one trained sketch and proves the fleet-level acceptance contract:
parity <= 1e-12 with the in-process facade, kill-a-backend degradation
with only structured codes and zero hung futures, and wire v1 on both
sides (a front door over the gateway).
"""

import threading

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import (
    ProtocolError,
    RemoteConnectionError,
    RemoteHTTPError,
    RemoteServerError,
    RemoteTimeoutError,
    SketchError,
)
from repro.serve import (
    CODE_PARSE,
    CODE_ROUTE,
    CODE_SHED,
    PROTOCOL_VERSION,
    EstimateResponse,
    RemoteSketchServer,
    ServeConfig,
    SketchGateway,
    SketchHTTPServer,
    SketchServer,
    SketchService,
)
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

PARITY_RTOL = 1e-12
RESULT_TIMEOUT = 30

TITLE_SQL = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"


# ---------------------------------------------------------------------------
# stub layer
# ---------------------------------------------------------------------------

class _StubClient:
    """A scripted RemoteSketchServer stand-in for one fake backend.

    ``tables`` is the name -> covered-tables map its healthz
    advertises; ``fail`` (an exception instance or a callable returning
    one) injects a fault into every estimate call until cleared.
    """

    def __init__(self, url, tables, registry):
        self.url = url
        self.tables = dict(tables)
        #: sketch name -> {"token", "registry_version"}; advertised via
        #: healthz like a lifecycle-aware backend (empty = legacy node).
        self.versions = {}
        self.fail = None
        self.fail_healthz = False
        self.estimate_calls = 0
        self.batch_calls = 0
        self.closed = False
        registry[url] = self

    def _maybe_fail(self):
        if self.fail is not None:
            exc = self.fail() if callable(self.fail) else self.fail
            raise exc

    def healthz(self):
        if self.fail_healthz:
            raise RemoteConnectionError(f"cannot reach {self.url}")
        return {
            "status": "ok",
            "protocol_version": PROTOCOL_VERSION,
            "sketches": sorted(self.tables),
            "tables": {k: sorted(v) for k, v in self.tables.items()},
            "pending": 0,
            "versions": {k: dict(v) for k, v in self.versions.items()},
        }

    def estimate(self, request, sketch=None):
        self._maybe_fail()
        self.estimate_calls += 1
        return EstimateResponse(
            request=request, query=None, sketch=sketch, estimate=42.0
        )

    def estimate_many(self, requests, sketch=None):
        self._maybe_fail()
        self.batch_calls += 1
        return [
            EstimateResponse(
                request=r, query=None, sketch=sketch, estimate=42.0
            )
            for r in requests
        ]

    def stats_summary(self):
        return {
            "requests": 10,
            "answered": 9,
            "errors": 1,
            "shed": 0,
            "deadline_missed": 0,
            "cache_hits": 3,
            "fast_cache_hits": 1,
            "deduped": 2,
            "forward_batches": 4,
            "executor_fallbacks": 0,
            "flushes": {"full": 2, "timed": 1},
            "sketch_requests": {name: 5 for name in self.tables},
        }

    def close(self):
        self.closed = True


def _stub_gateway(topology, **kwargs):
    """A gateway over fake backends; returns (gateway, url -> stub)."""
    registry = {}
    urls = list(topology)

    def factory(url):
        return _StubClient(url, topology[url], registry)

    kwargs.setdefault("health_interval_s", None)
    kwargs.setdefault("backoff_s", 0.0)
    gateway = SketchGateway(urls, client_factory=factory, **kwargs)
    return gateway, registry


URL_A = "http://a:1"
URL_B = "http://b:1"


class TestConstruction:
    def test_no_backends_rejected(self):
        with pytest.raises(SketchError, match="at least one backend"):
            SketchGateway([])

    def test_duplicate_urls_rejected(self):
        with pytest.raises(SketchError, match="duplicate"):
            SketchGateway(
                [URL_A, URL_A + "/"],  # same after rstrip("/")
                client_factory=lambda url: _StubClient(url, {}, {}),
                health_interval_s=None,
            )

    def test_bad_knobs_rejected(self):
        factory = lambda url: _StubClient(url, {}, {})  # noqa: E731
        with pytest.raises(SketchError, match="retries"):
            SketchGateway([URL_A], retries=-1, client_factory=factory,
                          health_interval_s=None)
        with pytest.raises(SketchError, match="backoff"):
            SketchGateway([URL_A], backoff_s=-0.1, client_factory=factory,
                          health_interval_s=None)
        with pytest.raises(SketchError, match="health_interval_s"):
            SketchGateway([URL_A], health_interval_s=0.0,
                          client_factory=factory)

    def test_conforms_to_sketch_service(self):
        gateway, _stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            assert isinstance(gateway, SketchService)

    def test_close_is_idempotent_and_closes_clients(self):
        gateway, stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        gateway.close()
        gateway.close()
        assert stubs[URL_A].closed
        with pytest.raises(RemoteServerError, match="closed"):
            gateway.estimate(TITLE_SQL)
        with pytest.raises(RemoteServerError, match="closed"):
            gateway.submit_many([TITLE_SQL])


class TestRouting:
    def test_routes_to_the_covering_sketch(self):
        gateway, stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            response = gateway.estimate(TITLE_SQL)
            assert response.ok and response.estimate == 42.0
            assert response.sketch == "s"
            assert stubs[URL_A].estimate_calls == 1

    def test_narrowest_cover_wins(self):
        # "narrow" covers exactly the query's table; "wide" covers more.
        gateway, stubs = _stub_gateway({
            URL_A: {"wide": ("title", "movie_keyword", "movie_info")},
            URL_B: {"narrow": ("title",)},
        })
        with gateway:
            response = gateway.estimate(TITLE_SQL)
            assert response.ok and response.sketch == "narrow"
            assert stubs[URL_B].estimate_calls == 1
            assert stubs[URL_A].estimate_calls == 0

    def test_parse_failure_is_structured(self):
        gateway, _stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            response = gateway.estimate("SELECT nonsense;")
            assert not response.ok and response.code == CODE_PARSE

    def test_unroutable_is_structured(self):
        gateway, _stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            response = gateway.estimate(
                "SELECT COUNT(*) FROM keyword k;"
            )
            assert not response.ok and response.code == CODE_ROUTE
            assert "keyword" in response.error

    def test_unknown_pin_is_structured(self):
        gateway, _stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            response = gateway.estimate(TITLE_SQL, sketch="ghost")
            assert not response.ok and response.code == CODE_ROUTE
            assert "ghost" in response.error

    def test_describe_and_list(self):
        gateway, _stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",), "other": ("movie_keyword",)},
        })
        with gateway:
            assert gateway.list_sketches() == ["other", "s"]
            assert gateway.describe_sketches()["s"] == ("title",)
            health = gateway.healthz()
            assert health["status"] == "ok"
            assert health["tables"]["other"] == ["movie_keyword"]


class TestFleetVersions:
    """Satellite: registry-version consistency across the fleet."""

    def test_consistent_fleet(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        for url in (URL_A, URL_B):
            stubs[url].versions = {
                "s": {"token": 10, "registry_version": 3}
            }
        with gateway:
            gateway.refresh()
            versions = gateway.describe_versions()
            assert versions["s"]["consistent"] is True
            assert versions["s"]["registry_version"] == 3
            assert versions["s"]["replicas"] == {URL_A: 3, URL_B: 3}
            # The same block rides stats_summary for operators.
            assert gateway.stats_summary()["gateway"]["versions"] == versions

    def test_mid_rollout_split_is_flagged_inconsistent(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        stubs[URL_A].versions = {"s": {"token": 10, "registry_version": 2}}
        stubs[URL_B].versions = {"s": {"token": 55, "registry_version": 3}}
        with gateway:
            gateway.refresh()
            versions = gateway.describe_versions()
            assert versions["s"]["consistent"] is False
            assert versions["s"]["registry_version"] is None
            assert versions["s"]["replicas"] == {URL_A: 2, URL_B: 3}

    def test_backend_death_mid_swap_narrows_the_view(self):
        # One backend dies while holding the old version: the dead
        # replica drops out of the consistency view, so the survivor's
        # version is the fleet version — structured degradation, and
        # traffic keeps flowing to the survivor.
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        stubs[URL_A].versions = {"s": {"token": 10, "registry_version": 2}}
        stubs[URL_B].versions = {"s": {"token": 55, "registry_version": 3}}
        with gateway:
            gateway.refresh()
            assert gateway.describe_versions()["s"]["consistent"] is False
            stubs[URL_A].fail_healthz = True
            stubs[URL_A].fail = RemoteConnectionError("died mid-swap")
            gateway.refresh()
            versions = gateway.describe_versions()
            assert versions["s"]["consistent"] is True
            assert versions["s"]["registry_version"] == 3
            assert versions["s"]["replicas"] == {URL_B: 3}
            assert gateway.estimate(TITLE_SQL).ok

    def test_legacy_backends_read_as_unversioned(self):
        # A backend that predates version surfacing advertises nothing:
        # its replicas map to None rather than poisoning the view.
        gateway, stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            gateway.refresh()
            versions = gateway.describe_versions()
            assert versions["s"]["replicas"] == {URL_A: None}
            assert versions["s"]["consistent"] is True
            assert versions["s"]["registry_version"] is None


class TestReplication:
    def test_round_robin_across_replicas(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            for _ in range(10):
                assert gateway.estimate(TITLE_SQL).ok
            # both replicas share the load evenly
            assert stubs[URL_A].estimate_calls == 5
            assert stubs[URL_B].estimate_calls == 5

    def test_submit_many_is_one_round_trip_per_group(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"other": ("movie_keyword",)},
        })
        with gateway:
            futures = gateway.submit_many([
                TITLE_SQL,
                "SELECT COUNT(*) FROM movie_keyword mk;",
                TITLE_SQL,
            ])
            responses = [f.result(RESULT_TIMEOUT) for f in futures]
        assert [r.sketch for r in responses] == ["s", "other", "s"]
        assert all(r.ok for r in responses)
        assert stubs[URL_A].batch_calls == 1  # both title queries, one trip
        assert stubs[URL_B].batch_calls == 1


class TestFailover:
    def test_connection_loss_fails_over_immediately(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            stubs[URL_A].fail = RemoteConnectionError("cannot reach a")
            stubs[URL_B].fail = None
            for _ in range(4):
                assert gateway.estimate(TITLE_SQL).ok
            stats = gateway.stats_summary()["gateway"]
            assert stats["failovers"] >= 1
            # the dead replica is marked down and stops receiving traffic
            assert gateway.backend_status()[URL_A]["alive"] is False
            before = stubs[URL_B].estimate_calls
            assert gateway.estimate(TITLE_SQL).ok
            assert stubs[URL_B].estimate_calls == before + 1

    @pytest.mark.parametrize("fault", [
        RemoteTimeoutError("timed out"),
        RemoteHTTPError("boom", 503),
        RemoteHTTPError("boom", 500),
    ])
    def test_retryable_faults_fail_over(self, fault):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            stubs[URL_A].fail = fault
            response = gateway.estimate(TITLE_SQL)
            assert response.ok and response.estimate == 42.0
            assert gateway.stats_summary()["gateway"]["failovers"] >= 1

    def test_http_4xx_propagates(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            stubs[URL_A].fail = RemoteHTTPError("bad request", 404)
            stubs[URL_B].fail = RemoteHTTPError("bad request", 404)
            with pytest.raises(RemoteHTTPError):
                gateway.estimate(TITLE_SQL)
            # the backends are not blamed for the caller's fault
            assert gateway.backend_status()[URL_A]["alive"] is True

    def test_protocol_error_propagates(self):
        gateway, stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            stubs[URL_A].fail = ProtocolError("version skew")
            with pytest.raises(ProtocolError):
                gateway.estimate(TITLE_SQL)

    def test_whole_fleet_down_sheds_structured(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            for stub in stubs.values():
                stub.fail = RemoteConnectionError("cannot reach")
            response = gateway.estimate(TITLE_SQL)
            assert not response.ok and response.code == CODE_SHED
            assert response.shed
            assert "no live replica" in response.error
            stats = gateway.stats_summary()["gateway"]
            assert stats["shed"] >= 1

    def test_no_hung_futures_when_fleet_dies(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            for stub in stubs.values():
                stub.fail = RemoteConnectionError("cannot reach")
            futures = gateway.submit_many([TITLE_SQL] * 8)
            responses = [f.result(RESULT_TIMEOUT) for f in futures]
        assert len(responses) == 8
        assert all(r.code == CODE_SHED for r in responses)

    def test_health_probe_revives_a_backend(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            stubs[URL_A].fail_healthz = True
            gateway.refresh()
            assert gateway.backend_status()[URL_A]["alive"] is False
            # only the live replica is routable
            assert gateway.estimate(TITLE_SQL).ok
            stubs[URL_A].fail_healthz = False
            gateway.refresh()
            assert gateway.backend_status()[URL_A]["alive"] is True

    def test_sketch_vanishing_from_fleet_becomes_route_error(self):
        gateway, stubs = _stub_gateway({URL_A: {"s": ("title",)}})
        with gateway:
            stubs[URL_A].fail_healthz = True
            gateway.refresh()
            response = gateway.estimate(TITLE_SQL)
            assert not response.ok and response.code == CODE_ROUTE


class TestFleetStats:
    def test_fleet_view_sums_live_backends(self):
        gateway, _stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            gateway.estimate(TITLE_SQL)
            summary = gateway.stats_summary()
        assert set(summary) == {"gateway", "backends", "fleet"}
        fleet = summary["fleet"]
        # each stub reports requests=10/answered=9; two live backends
        assert fleet["requests"] == 20
        assert fleet["answered"] == 18
        assert fleet["cache_hits"] == 6
        assert fleet["flushes"] == {"full": 4, "timed": 2}
        assert fleet["sketch_requests"] == {"s": 10}
        assert fleet["backends_live"] == 2
        assert fleet["backends_total"] == 2
        assert set(summary["backends"]) == {URL_A, URL_B}
        g = summary["gateway"]
        assert g["requests"] >= 1 and g["answered"] >= 1
        assert g["sketches"]["s"] == [URL_A, URL_B]

    def test_dead_backend_reports_none(self):
        gateway, stubs = _stub_gateway({
            URL_A: {"s": ("title",)},
            URL_B: {"s": ("title",)},
        })
        with gateway:
            stubs[URL_A].fail_healthz = True
            gateway.refresh()
            summary = gateway.stats_summary()
        assert summary["backends"][URL_A] is None
        assert summary["backends"][URL_B] is not None
        assert summary["fleet"]["backends_live"] == 1
        assert summary["fleet"]["backends_total"] == 2


# ---------------------------------------------------------------------------
# integration layer: real backends, real sockets
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=131)
    return gen.draw_many(24)


@pytest.fixture()
def fleet(imdb_small, trained_sketch):
    """Two live front doors replicating one trained sketch + a gateway."""
    sketch, _ = trained_sketch
    sketch.clear_cache()
    managers = [SketchManager(imdb_small) for _ in range(2)]
    for manager in managers:
        manager.register_sketch(sketch)
    servers = [
        SketchHTTPServer(manager, ServeConfig(), port=0).start()
        for manager in managers
    ]
    gateway = SketchGateway(
        [server.url for server in servers], health_interval_s=None
    )
    try:
        yield gateway, servers
    finally:
        gateway.close()
        for server in servers:
            server.close()
        sketch.clear_cache()


class TestFleetIntegration:
    def test_parity_with_in_process_facade(
        self, fleet, workload, imdb_small, trained_sketch
    ):
        gateway, _servers = fleet
        sketch, _ = trained_sketch
        remote = gateway.serve(workload)
        assert all(r.ok for r in remote)
        sketch.clear_cache()
        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        with SketchServer(manager) as local_server:
            local = local_server.serve(workload)
        np.testing.assert_allclose(
            np.array([r.estimate for r in remote]),
            np.array([r.estimate for r in local]),
            rtol=PARITY_RTOL,
            atol=0.0,
        )

    def test_kill_a_backend_mid_stream(self, fleet, workload):
        """The acceptance audit in miniature: one replica dies while a
        stream is in flight; every future resolves, failures (if any)
        carry only structured route/shed codes, survivors stay exact."""
        gateway, servers = fleet
        reference = {
            q.to_sql(): gateway.estimate(q).estimate for q in workload[:6]
        }

        killed = threading.Event()

        def kill_backend():
            servers[1].close()
            killed.set()

        futures = []
        killer = threading.Thread(target=kill_backend)
        for i, query in enumerate(workload):
            futures.append(gateway.submit(query))
            if i == len(workload) // 2:
                killer.start()
        killer.join(RESULT_TIMEOUT)
        assert killed.is_set()

        responses = [f.result(RESULT_TIMEOUT) for f in futures]
        assert len(responses) == len(workload)  # zero hung futures
        for response in responses:
            if not response.ok:
                assert response.code in (CODE_ROUTE, CODE_SHED)
        survivors = [r for r in responses if r.ok]
        assert survivors, "the surviving replica answered nothing"
        for response in survivors:
            sql = (
                response.request.to_sql()
                if not isinstance(response.request, str)
                else response.request
            )
            if sql in reference:
                assert response.estimate == pytest.approx(
                    reference[sql], rel=PARITY_RTOL
                )
        # the gateway keeps serving on the surviving replica
        assert gateway.estimate(workload[0]).ok
        status = gateway.backend_status()
        assert status[servers[1].url]["alive"] is False

    def test_front_door_over_gateway_speaks_wire_v1(
        self, fleet, workload
    ):
        """SketchHTTPServer(service=gateway): wire v1 on both sides."""
        gateway, _servers = fleet
        door = SketchHTTPServer(service=gateway, port=0)
        try:
            door.start()
            with RemoteSketchServer(door.url) as client:
                direct = gateway.estimate(workload[0])
                via_wire = client.estimate(workload[0])
                assert via_wire.ok
                assert via_wire.estimate == pytest.approx(
                    direct.estimate, rel=PARITY_RTOL
                )
                health = client.healthz()
                assert health["protocol_version"] == PROTOCOL_VERSION
                assert "test-sketch" in health["tables"]
                stats = client.stats_summary()
                assert set(stats) == {"gateway", "backends", "fleet"}
        finally:
            # closing the door would close the module gateway; the
            # fixture owns that, so only stop the acceptor here
            door._httpd.shutdown()
            door._httpd.server_close()

"""Executors: inline/thread/process parity, snapshot shipping, staleness."""

import pickle

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.serve import (
    AsyncServeConfig,
    AsyncSketchServer,
    InlineExecutor,
    ProcessExecutor,
    ServeConfig,
    SketchServer,
    ThreadExecutor,
    make_executor,
)
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

#: Acceptance bound: inline vs thread vs process estimates.
PARITY_RTOL = 1e-12
RESULT_TIMEOUT = 60.0


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=909)
    return gen.draw_many(32)


def serve_with(manager, workload, **config_kwargs):
    with SketchServer(manager, ServeConfig(**config_kwargs)) as server:
        responses = server.serve(list(workload))
        stats = server.stats
    assert all(r.ok for r in responses), [
        r.error for r in responses if not r.ok
    ][:3]
    return np.array([r.estimate for r in responses]), stats


class TestFactory:
    def test_make_executor_by_name(self):
        assert isinstance(make_executor(ServeConfig(executor="inline")), InlineExecutor)
        assert isinstance(make_executor(ServeConfig(executor="thread")), ThreadExecutor)
        assert isinstance(make_executor(ServeConfig(executor="process")), ProcessExecutor)

    def test_worker_counts(self):
        executor = make_executor(
            ServeConfig(executor="process", executor_workers=3)
        )
        assert executor.workers == 3
        executor.close()


class TestExecutorParity:
    """Satellite/acceptance: inline vs thread vs process <= 1e-12."""

    def test_thread_matches_inline(self, manager, workload, trained_sketch):
        sketch, _ = trained_sketch
        inline, _ = serve_with(
            manager, workload, executor="inline", max_batch_size=8,
            use_cache=False,
        )
        sketch.clear_cache()
        threaded, stats = serve_with(
            manager, workload, executor="thread", executor_workers=2,
            max_batch_size=8, use_cache=False,
        )
        np.testing.assert_allclose(threaded, inline, rtol=PARITY_RTOL, atol=0.0)
        assert stats.n_executor_fallbacks == 0

    def test_process_matches_inline(self, manager, workload, trained_sketch):
        sketch, _ = trained_sketch
        inline, _ = serve_with(
            manager, workload, executor="inline", max_batch_size=8,
            use_cache=False,
        )
        sketch.clear_cache()
        processed, stats = serve_with(
            manager, workload, executor="process", executor_workers=2,
            max_batch_size=8, use_cache=False,
        )
        np.testing.assert_allclose(processed, inline, rtol=PARITY_RTOL, atol=0.0)
        # The pool really ran: no degraded-to-inline chunks.
        assert stats.n_executor_fallbacks == 0
        assert stats.n_forward_batches >= 4

    def test_process_with_cache_and_duplicates(self, manager, workload, trained_sketch):
        # Parent-side cache hits and duplicate collapsing around the
        # worker round-trip: duplicates answer identically and the
        # second flush is pure cache.
        sketch, _ = trained_sketch
        stream = list(workload[:6]) * 3
        with SketchServer(
            manager,
            ServeConfig(executor="process", executor_workers=2, max_batch_size=6),
        ) as server:
            first = server.serve(stream)
            second = server.serve(stream)
            stats = server.stats
        assert all(r.ok for r in first + second)
        by_query = {}
        for r in first + second:
            by_query.setdefault(r.query, set()).add(r.estimate)
        assert all(len(v) == 1 for v in by_query.values())
        assert all(r.cached for r in second)
        assert stats.n_cache_hits > 0
        assert stats.n_executor_fallbacks == 0

    def test_async_process_executor(self, manager, workload, trained_sketch):
        sketch, _ = trained_sketch
        inline, _ = serve_with(
            manager, workload, executor="inline", max_batch_size=8,
            use_cache=False,
        )
        sketch.clear_cache()
        config = AsyncServeConfig(
            executor="process", executor_workers=2, max_batch_size=8,
            max_wait_ms=20.0, use_cache=False,
        )
        with AsyncSketchServer(manager, config) as server:
            futures = server.submit_many(list(workload))
            responses = [f.result(RESULT_TIMEOUT) for f in futures]
        assert all(r.ok for r in responses)
        np.testing.assert_allclose(
            [r.estimate for r in responses], inline, rtol=PARITY_RTOL, atol=0.0
        )
        assert server.stats.n_executor_fallbacks == 0

    def test_process_isolates_featurization_failures(self, manager, workload):
        from repro.workload import Predicate, Query, TableRef

        bad = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        with SketchServer(
            manager,
            ServeConfig(executor="process", executor_workers=2, use_cache=False),
        ) as server:
            responses = server.serve([workload[0], bad, workload[1]])
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok


class TestSnapshotShipping:
    def test_stale_snapshot_is_reshipped_after_clear_cache(
        self, manager, workload, trained_sketch
    ):
        # A retrain (modeled by an in-place weight change + clear_cache)
        # must reach the workers: the engine's answers through the pool
        # track the *current* weights, never the shipped generation.
        sketch, _ = trained_sketch
        config = ServeConfig(
            executor="process", executor_workers=2, max_batch_size=8,
            use_cache=False,
        )
        with SketchServer(manager, config) as server:
            before = [r.estimate for r in server.serve(workload[:8])]
            token_before = sketch.snapshot_token
            for p in sketch.model.parameters():
                p.data += 0.05  # optimizer-style in-place mutation
            sketch.clear_cache()
            assert sketch.snapshot_token != token_before
            after = [r.estimate for r in server.serve(workload[:8])]
            sketch.clear_cache()
            single = [sketch.estimate(q, use_cache=False) for q in workload[:8]]
        assert before != after
        np.testing.assert_allclose(after, single, rtol=PARITY_RTOL, atol=0.0)
        # Restore the shared fixture's weights.
        for p in sketch.model.parameters():
            p.data -= 0.05
        sketch.clear_cache()

    def test_snapshot_pickle_roundtrip_parity(self, trained_sketch, workload):
        sketch, _ = trained_sketch
        sketch.clear_cache()
        reference = sketch.estimate_many(list(workload[:10]), use_cache=False)
        blob = pickle.dumps(sketch.snapshot())
        replica = pickle.loads(blob).restore()
        values = replica.estimate_many(list(workload[:10]), use_cache=False)
        np.testing.assert_allclose(values, reference, rtol=PARITY_RTOL, atol=0.0)
        assert replica.model is None
        assert replica.tables == sketch.tables

    def test_estimation_only_sketch_cannot_serialize_or_recompile(
        self, trained_sketch
    ):
        from repro.errors import SketchError

        sketch, _ = trained_sketch
        replica = pickle.loads(pickle.dumps(sketch.snapshot())).restore()
        with pytest.raises(SketchError):
            replica.to_bytes()
        # clear_cache keeps the shipped session (nothing to recompile
        # from) — the replica still answers.
        replica.clear_cache()
        assert replica.inference_session is not None

    def test_snapshot_tokens_are_unique_and_monotonic(self, trained_sketch):
        sketch, _ = trained_sketch
        first = sketch.snapshot_token
        sketch.clear_cache()
        second = sketch.snapshot_token
        assert second > first

    def test_manager_snapshot_payloads_selects_names(self, manager):
        payloads = manager.snapshot_payloads()
        assert set(payloads) == {"test-sketch"}
        assert isinstance(payloads["test-sketch"], bytes)
        from repro.errors import SketchError

        with pytest.raises(SketchError):
            manager.snapshot_payloads(["ghost"])


class TestPoolResilience:
    def test_killed_workers_degrade_inline_and_recover(self, manager, workload):
        # Kill the pool's workers between rounds: the next flush must
        # still answer every request (degrading to the inline path),
        # discard the broken pool, and rebuild it for later flushes —
        # never surface BrokenProcessPool through a response.
        import os
        import signal

        config = ServeConfig(
            executor="process", executor_workers=2, max_batch_size=8,
            use_cache=False,
        )
        with SketchServer(manager, config) as server:
            first = server.serve(list(workload[:8]))
            assert all(r.ok for r in first)
            pool = server.engine.executor._pool
            assert pool is not None
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)
            second = server.serve(list(workload[:8]))
            assert all(r.ok for r in second), [
                r.error for r in second if not r.ok
            ][:3]
            assert server.stats.n_executor_fallbacks >= 1
            third = server.serve(list(workload[8:16]))
            assert all(r.ok for r in third)

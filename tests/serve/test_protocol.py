"""The wire protocol: round-trip identity and envelope validation.

The acceptance contract: for **every** response class the engine
produces (ok, parse, route, vocab, shed, deadline, internal),
``response_from_wire(response_to_wire(r))`` reproduces the
:class:`EstimateResponse` fields exactly — the schema exists once, and
both ends of the wire agree on it byte for byte.
"""

import json

import pytest

from repro.db.sql import parse_sql
from repro.errors import ProtocolError
from repro.serve import (
    CODE_DEADLINE,
    CODE_INTERNAL,
    CODE_PARSE,
    CODE_ROUTE,
    CODE_SHED,
    CODE_VOCAB,
    RESPONSE_CODES,
    EstimateResponse,
)
from repro.serve import protocol

SQL = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"
JOIN_SQL = (
    "SELECT COUNT(*) FROM title t, movie_keyword mk "
    "WHERE mk.movie_id = t.id AND t.production_year > 2000;"
)


def _query():
    return parse_sql(SQL)


def _response_of_every_class() -> dict[str, EstimateResponse]:
    """One representative EstimateResponse per outcome class."""
    query = _query()
    join_query = parse_sql(JOIN_SQL)
    return {
        "ok_sql_request": EstimateResponse(
            request=SQL, query=query, sketch="imdb",
            estimate=1234.567891011, cached=False,
        ),
        "ok_query_request": EstimateResponse(
            request=join_query, query=join_query, sketch="imdb",
            estimate=0.3333333333333333, cached=True,
        ),
        CODE_PARSE: EstimateResponse(
            request="SELECT nonsense;", query=None, sketch=None,
            estimate=None, error="expected 'COUNT', found 'nonsense'",
            code=CODE_PARSE,
        ),
        CODE_ROUTE: EstimateResponse(
            request=SQL, query=query, sketch=None, estimate=None,
            error="no registered sketch covers tables ['title']",
            code=CODE_ROUTE,
        ),
        CODE_VOCAB: EstimateResponse(
            request=query, query=query, sketch="imdb", estimate=None,
            error="column 'episode_nr' is outside the vocabulary",
            code=CODE_VOCAB,
        ),
        CODE_SHED: EstimateResponse(
            request=SQL, query=query, sketch="imdb", estimate=None,
            error="request shed: queue depth 64 >= max_queue_depth 64",
            code=CODE_SHED,
        ),
        CODE_DEADLINE: EstimateResponse(
            request=query, query=query, sketch="imdb", estimate=None,
            error="deadline of 50ms exceeded before the request "
            "could be served",
            code=CODE_DEADLINE,
        ),
        CODE_INTERNAL: EstimateResponse(
            request=SQL, query=query, sketch="imdb", estimate=None,
            error="internal serving error: RuntimeError('boom')",
            code=CODE_INTERNAL,
        ),
    }


class TestResponseRoundTrip:
    @pytest.mark.parametrize("kind", sorted(_response_of_every_class()))
    def test_round_trip_is_identity(self, kind):
        response = _response_of_every_class()[kind]
        wire = protocol.response_to_wire(response, server_ms=1.25)
        back = protocol.response_from_wire(wire)
        assert back == response  # dataclass equality: every field exact
        assert type(back.request) is type(response.request)

    @pytest.mark.parametrize("kind", sorted(_response_of_every_class()))
    def test_wire_payload_is_plain_json(self, kind):
        response = _response_of_every_class()[kind]
        wire = protocol.response_to_wire(response)
        assert wire["protocol_version"] == protocol.PROTOCOL_VERSION
        # the full envelope must survive an actual JSON round trip
        back = protocol.response_from_wire(json.loads(json.dumps(wire)))
        assert back == response

    def test_ok_flag_matches_error_field(self):
        for response in _response_of_every_class().values():
            wire = protocol.response_to_wire(response)
            assert wire["ok"] is response.ok
            assert (wire["error"] is None) is response.ok

    def test_estimate_round_trips_at_full_precision(self):
        response = EstimateResponse(
            request=SQL, query=_query(), sketch="s",
            estimate=1.2345678901234567e17, cached=False,
        )
        wire = json.loads(json.dumps(protocol.response_to_wire(response)))
        assert protocol.response_from_wire(wire).estimate == response.estimate

    def test_batch_round_trip(self):
        responses = list(_response_of_every_class().values())
        wire = protocol.batch_response_to_wire(responses, server_ms=9.5)
        assert wire["server_ms"] == 9.5
        back = protocol.batch_response_from_wire(json.loads(json.dumps(wire)))
        assert back == responses

    def test_every_engine_code_is_serializable(self):
        # RESPONSE_CODES is the protocol's closed set; a new engine code
        # must be added there (and to this test module's class map).
        assert set(RESPONSE_CODES) == {
            CODE_PARSE, CODE_ROUTE, CODE_VOCAB,
            CODE_SHED, CODE_DEADLINE, CODE_INTERNAL,
        }
        covered = set(_response_of_every_class()) - {
            "ok_sql_request", "ok_query_request"
        }
        assert covered == set(RESPONSE_CODES)


class TestSnapshotTokens:
    """The additive ``token`` field: hot-swap audits across the wire."""

    def test_token_round_trips(self):
        response = EstimateResponse(
            request=SQL, query=_query(), sketch="imdb",
            estimate=10.0, token=42,
        )
        wire = json.loads(json.dumps(protocol.response_to_wire(response)))
        assert wire["token"] == 42
        back = protocol.response_from_wire(wire)
        assert back == response
        assert back.token == 42

    def test_null_token_round_trips(self):
        response = _response_of_every_class()[CODE_PARSE]
        assert response.token is None
        wire = protocol.response_to_wire(response)
        assert wire["token"] is None
        assert protocol.response_from_wire(wire).token is None

    def test_missing_token_defaults_to_none(self):
        # Envelopes from pre-lifecycle servers omit the field entirely;
        # the additive extension must not reject them.
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        del wire["token"]
        assert protocol.response_from_wire(wire).token is None


class TestRequestEnvelopes:
    def test_estimate_request_round_trip(self):
        wire = protocol.estimate_request_to_wire(_query(), sketch="pin")
        sql, sketch = protocol.estimate_request_from_wire(
            json.loads(json.dumps(wire))
        )
        assert parse_sql(sql) == _query()
        assert sketch == "pin"

    def test_estimate_request_accepts_raw_sql(self):
        sql, sketch = protocol.estimate_request_from_wire(
            protocol.estimate_request_to_wire("SELECT nonsense;")
        )
        assert sql == "SELECT nonsense;"  # not parsed client-side
        assert sketch is None

    def test_batch_request_round_trip(self):
        requests = [SQL, _query(), JOIN_SQL]
        wire = protocol.batch_request_to_wire(requests)
        sqls, sketch = protocol.batch_request_from_wire(
            json.loads(json.dumps(wire))
        )
        assert len(sqls) == 3 and sketch is None
        assert parse_sql(sqls[1]) == _query()


class TestValidation:
    def test_version_skew_is_rejected(self):
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        wire["protocol_version"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol version"):
            protocol.response_from_wire(wire)

    def test_missing_version_is_rejected(self):
        with pytest.raises(ProtocolError, match="protocol_version"):
            protocol.estimate_request_from_wire({"sql": SQL})

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.estimate_request_from_wire([1, 2, 3])

    def test_missing_sql_is_rejected(self):
        with pytest.raises(ProtocolError, match="sql"):
            protocol.estimate_request_from_wire(
                {"protocol_version": protocol.PROTOCOL_VERSION}
            )

    def test_non_string_batch_entry_is_rejected(self):
        with pytest.raises(ProtocolError, match=r"queries\[1\]"):
            protocol.batch_request_from_wire(
                {
                    "protocol_version": protocol.PROTOCOL_VERSION,
                    "queries": [SQL, 42],
                }
            )

    def test_unknown_code_is_rejected(self):
        wire = protocol.response_to_wire(
            _response_of_every_class()[CODE_SHED]
        )
        wire["code"] = "totally-new-code"
        with pytest.raises(ProtocolError, match="unknown error code"):
            protocol.response_from_wire(wire)

    def test_code_without_error_is_rejected(self):
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        wire["code"] = CODE_SHED
        with pytest.raises(ProtocolError, match="without an error"):
            protocol.response_from_wire(wire)

    def test_unparseable_query_sql_is_rejected(self):
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        wire["query"] = "SELECT nonsense;"
        with pytest.raises(ProtocolError, match="unparseable"):
            protocol.response_from_wire(wire)

    def test_bool_token_is_rejected(self):
        # bool is an int subclass; a True token would silently alias
        # snapshot token 1 on the other side of the wire.
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        wire["token"] = True
        with pytest.raises(ProtocolError, match="token"):
            protocol.response_from_wire(wire)

    def test_string_token_is_rejected(self):
        wire = protocol.response_to_wire(
            _response_of_every_class()["ok_sql_request"]
        )
        wire["token"] = "7"
        with pytest.raises(ProtocolError, match="token"):
            protocol.response_from_wire(wire)

    def test_transport_error_envelope_shape(self):
        wire = protocol.error_to_wire("boom", "not_found")
        assert wire == {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "ok": False,
            "error": "boom",
            "code": "not_found",
        }

"""Shared-memory snapshots + sticky routing: parity and lifecycle.

The acceptance contract: the shm path answers bit-identically to the
pickle path (same arrays, mapped not copied), segment lifecycle follows
``snapshot_token`` — hot swaps retire old segments, worker crashes
degrade to the inline path without leaking, and engine ``close()``
leaves zero ``/dev/shm`` entries behind.
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import SketchError
from repro.serve import (
    ServeConfig,
    SketchServer,
    StickyProcessExecutor,
    live_segment_names,
    make_executor,
)
from repro.serve.shm import SEGMENT_PREFIX, AttachedSnapshot, SnapshotSegment
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

PARITY_RTOL = 1e-12


def _dev_shm_entries() -> list[str]:
    """This process's sketch segments visible in ``/dev/shm``."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    mine = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return [p for p in os.listdir("/dev/shm") if p.startswith(mine)]


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=421)
    return gen.draw_many(32)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file must drain the segment registry."""
    assert live_segment_names() == set()
    yield
    assert live_segment_names() == set()
    assert _dev_shm_entries() == []


def serve_with(manager, workload, **config_kwargs):
    with SketchServer(manager, ServeConfig(**config_kwargs)) as server:
        responses = server.serve(list(workload))
        stats = server.stats
    assert all(r.ok for r in responses), [
        r.error for r in responses if not r.ok
    ][:3]
    return np.array([r.estimate for r in responses]), stats


# ----------------------------------------------------------------------
# segment-level lifecycle
# ----------------------------------------------------------------------
class TestSnapshotSegment:
    def test_attach_is_bit_identical_and_read_only(
        self, trained_sketch, workload
    ):
        sketch, _ = trained_sketch
        sketch.clear_cache()
        reference = sketch.estimate_many(list(workload[:10]), use_cache=False)
        segment = SnapshotSegment.publish(sketch.snapshot())
        try:
            assert segment.name in live_segment_names()
            assert _dev_shm_entries() == [segment.name]
            attached = AttachedSnapshot(segment.descriptor)
            values = attached.sketch.estimate_many(
                list(workload[:10]), use_cache=False
            )
            # mapped views run the very same bytes: exact equality,
            # not just 1e-12 closeness
            assert np.array_equal(np.asarray(values), np.asarray(reference))
            session = attached.sketch.inference_session
            weights, _ = session.export_weights()
            for array in weights.values():
                assert not array.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    array[...] = 0.0
            attached.detach()
        finally:
            segment.unlink()
            segment.unlink()  # idempotent

    def test_descriptor_is_small_and_picklable(self, trained_sketch):
        sketch, _ = trained_sketch
        snapshot = sketch.snapshot()
        blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        segment = SnapshotSegment.publish(snapshot)
        try:
            wire = pickle.dumps(
                segment.descriptor, protocol=pickle.HIGHEST_PROTOCOL
            )
            # the descriptor replaces the multi-hundred-KB snapshot blob
            # with a table of offsets: it must be dramatically smaller
            assert len(wire) < len(blob) / 4
            back = pickle.loads(wire)
            assert back == segment.descriptor
            assert back.nbytes() > 0
        finally:
            segment.unlink()

    def test_attach_after_unlink_is_a_sketch_error(self, trained_sketch):
        sketch, _ = trained_sketch
        segment = SnapshotSegment.publish(sketch.snapshot())
        descriptor = segment.descriptor
        segment.unlink()
        with pytest.raises(SketchError, match="gone"):
            AttachedSnapshot(descriptor)

    def test_existing_attachments_survive_unlink(
        self, trained_sketch, workload
    ):
        """POSIX retirement semantics: unlink removes the *name*; a
        worker already mapping the segment keeps computing over valid
        memory — the zero-stale hot swap depends on this."""
        sketch, _ = trained_sketch
        sketch.clear_cache()
        reference = sketch.estimate_many(list(workload[:4]), use_cache=False)
        segment = SnapshotSegment.publish(sketch.snapshot())
        attached = AttachedSnapshot(segment.descriptor)
        segment.unlink()
        assert _dev_shm_entries() == []
        values = attached.sketch.estimate_many(
            list(workload[:4]), use_cache=False
        )
        assert np.array_equal(np.asarray(values), np.asarray(reference))
        attached.detach()


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize("flag", ["shm_snapshots", "sticky_routing"])
    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_flags_require_the_process_executor(self, flag, executor):
        with pytest.raises(SketchError, match="process"):
            ServeConfig(executor=executor, **{flag: True})

    def test_factory_builds_the_sticky_executor(self):
        executor = make_executor(
            ServeConfig(
                executor="process", sticky_routing=True, shm_snapshots=True,
                executor_workers=3,
            )
        )
        assert isinstance(executor, StickyProcessExecutor)
        assert executor.name == "process-sticky"
        assert executor.use_shm and executor.workers == 3
        executor.close()


# ----------------------------------------------------------------------
# end-to-end through the engine
# ----------------------------------------------------------------------
class TestShmServing:
    @pytest.mark.parametrize(
        "mode",
        [
            {"shm_snapshots": True},
            {"sticky_routing": True},
            {"shm_snapshots": True, "sticky_routing": True},
        ],
        ids=["shm", "sticky", "shm+sticky"],
    )
    def test_mode_matches_inline_exactly(
        self, manager, workload, trained_sketch, mode
    ):
        sketch, _ = trained_sketch
        inline, _ = serve_with(
            manager, workload, executor="inline", max_batch_size=8,
            use_cache=False,
        )
        sketch.clear_cache()
        values, stats = serve_with(
            manager, workload, executor="process", executor_workers=2,
            max_batch_size=8, use_cache=False, **mode,
        )
        # mapped arrays are the same bytes: identity, not approximation
        assert np.array_equal(values, inline)
        assert stats.n_executor_fallbacks == 0

    def test_segments_live_while_serving_and_unlink_on_close(
        self, manager, workload
    ):
        config = ServeConfig(
            executor="process", executor_workers=2, shm_snapshots=True,
            use_cache=False, max_batch_size=8,
        )
        with SketchServer(manager, config) as server:
            responses = server.serve(list(workload[:8]))
            assert all(r.ok for r in responses)
            assert len(live_segment_names()) == 1
            assert len(_dev_shm_entries()) == 1
        # engine close() unlinked everything (the autouse fixture
        # re-asserts /dev/shm is empty after the test)
        assert live_segment_names() == set()

    def test_hot_swap_retires_the_old_segment(
        self, manager, workload, trained_sketch
    ):
        """A retrain mid-service publishes the new generation's segment
        and unlinks the old one; answers track the new weights at the
        very next round and never leak the retired segment."""
        sketch, _ = trained_sketch
        config = ServeConfig(
            executor="process", executor_workers=2, shm_snapshots=True,
            sticky_routing=True, use_cache=False, max_batch_size=8,
        )
        with SketchServer(manager, config) as server:
            before = [r.estimate for r in server.serve(workload[:8])]
            first_gen = live_segment_names()
            assert len(first_gen) == 1
            for p in sketch.model.parameters():
                p.data += 0.05
            sketch.clear_cache()
            after = [r.estimate for r in server.serve(workload[:8])]
            second_gen = live_segment_names()
            assert len(second_gen) == 1
            assert second_gen != first_gen  # old generation unlinked
            assert set(_dev_shm_entries()) == second_gen
            sketch.clear_cache()
            single = [
                sketch.estimate(q, use_cache=False) for q in workload[:8]
            ]
        assert before != after
        np.testing.assert_allclose(after, single, rtol=PARITY_RTOL, atol=0.0)
        for p in sketch.model.parameters():
            p.data -= 0.05
        sketch.clear_cache()

    def test_unchanged_token_reuses_the_segment(self, manager, workload):
        config = ServeConfig(
            executor="process", executor_workers=2, shm_snapshots=True,
            use_cache=False, max_batch_size=8,
        )
        with SketchServer(manager, config) as server:
            server.serve(list(workload[:8]))
            first = live_segment_names()
            server.serve(list(workload[8:16]))
            assert live_segment_names() == first  # no republish


class TestCrashRecovery:
    def test_killed_shm_workers_degrade_inline_and_recover(
        self, manager, workload
    ):
        config = ServeConfig(
            executor="process", executor_workers=2, shm_snapshots=True,
            use_cache=False, max_batch_size=8,
        )
        with SketchServer(manager, config) as server:
            first = server.serve(list(workload[:8]))
            assert all(r.ok for r in first)
            pool = server.engine.executor._pool
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)
            second = server.serve(list(workload[:8]))
            assert all(r.ok for r in second), [
                r.error for r in second if not r.ok
            ][:3]
            assert server.stats.n_executor_fallbacks >= 1
            third = server.serve(list(workload[8:16]))
            assert all(r.ok for r in third)
            assert len(live_segment_names()) == 1  # rebuilt, not leaked

    def test_killed_sticky_slot_degrades_inline_and_recovers(
        self, manager, workload
    ):
        config = ServeConfig(
            executor="process", executor_workers=2, shm_snapshots=True,
            sticky_routing=True, use_cache=False, max_batch_size=8,
        )
        with SketchServer(manager, config) as server:
            first = server.serve(list(workload[:8]))
            assert all(r.ok for r in first)
            executor = server.engine.executor
            for pool in executor._slot_pools:
                if pool is not None:
                    for pid in list(pool._processes):
                        os.kill(pid, signal.SIGKILL)
            second = server.serve(list(workload[:8]))
            assert all(r.ok for r in second), [
                r.error for r in second if not r.ok
            ][:3]
            assert server.stats.n_executor_fallbacks >= 1
            third = server.serve(list(workload[8:16]))
            assert all(r.ok for r in third)

"""RemoteSketchServer transport-fault taxonomy, via fault-injecting
stub servers.

The gateway's failover logic retries only *safe* fault classes, so the
SDK must distinguish them: connection loss (never executed — retry
anywhere), timeout (may have executed — retry because estimates are
idempotent), HTTP 5xx (the service answered, badly), HTTP 4xx /
protocol (wrong everywhere — never retry).  Before this taxonomy every
``OSError`` collapsed into one ``RemoteServerError`` branch.
"""

import http.server
import json
import socket
import threading

import pytest

from repro.errors import (
    ProtocolError,
    RemoteConnectionError,
    RemoteHTTPError,
    RemoteServerError,
    RemoteTimeoutError,
)
from repro.serve import RemoteSketchServer

SQL = "SELECT COUNT(*) FROM title t;"


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class _StatusHandler(http.server.BaseHTTPRequestHandler):
    """Answers every request with one configured HTTP status."""

    status = 500

    def _answer(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        body = json.dumps(
            {"protocol_version": 1, "ok": False,
             "error": "injected fault", "code": "internal"}
        ).encode()
        self.send_response(self.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer

    def log_message(self, *args):  # noqa: A002 - stdlib signature
        pass


@pytest.fixture()
def status_server():
    """Factory: an HTTP stub that answers everything with one status."""
    servers = []

    def start(status: int) -> str:
        handler = type("_Bound", (_StatusHandler,), {"status": status})
        httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        httpd.daemon_threads = True
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        servers.append((httpd, thread))
        return f"http://127.0.0.1:{httpd.server_address[1]}"

    yield start
    for httpd, thread in servers:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5.0)


@pytest.fixture()
def black_hole():
    """A socket that accepts connections and never answers (timeouts)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    accepted = []
    stop = threading.Event()

    def accept_loop():
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except (socket.timeout, OSError):
                continue
            accepted.append(conn)  # hold it open, read nothing

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{listener.getsockname()[1]}"
    stop.set()
    thread.join(5.0)
    for conn in accepted:
        conn.close()
    listener.close()


class TestTaxonomy:
    def test_subclass_hierarchy(self):
        # One catch-all still works at API boundaries.
        assert issubclass(RemoteTimeoutError, RemoteServerError)
        assert issubclass(RemoteConnectionError, RemoteServerError)
        assert issubclass(RemoteHTTPError, RemoteServerError)

    def test_connection_refused(self):
        url = f"http://127.0.0.1:{_free_port()}"
        with RemoteSketchServer(url, timeout=2.0) as client:
            with pytest.raises(RemoteConnectionError, match="cannot reach"):
                client.estimate(SQL)

    def test_timeout(self, black_hole):
        with RemoteSketchServer(black_hole, timeout=0.3) as client:
            with pytest.raises(RemoteTimeoutError, match="timed out"):
                client.estimate(SQL)

    @pytest.mark.parametrize("status", [500, 503])
    def test_http_5xx_carries_status(self, status_server, status):
        with RemoteSketchServer(status_server(status), timeout=5.0) as client:
            with pytest.raises(RemoteHTTPError) as excinfo:
                client.estimate(SQL)
        assert excinfo.value.status == status
        assert "injected fault" in str(excinfo.value)

    def test_http_400_is_protocol_error(self, status_server):
        # A 400 means *this* payload is wrong — retrying it on a
        # replica cannot help, so it is not a RemoteServerError at all.
        with RemoteSketchServer(status_server(400), timeout=5.0) as client:
            with pytest.raises(ProtocolError):
                client.estimate(SQL)

    def test_http_404_is_retryable_server_error_with_status(self, status_server):
        with RemoteSketchServer(status_server(404), timeout=5.0) as client:
            with pytest.raises(RemoteHTTPError) as excinfo:
                client.healthz()
        assert excinfo.value.status == 404

    def test_connection_reset_mid_response(self):
        # A server that accepts then slams the connection: the request
        # never produced a response — classified as connection loss.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        url = f"http://127.0.0.1:{listener.getsockname()[1]}"

        def slam():
            conn, _ = listener.accept()
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
            conn.close()  # RST

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        try:
            with RemoteSketchServer(url, timeout=5.0) as client:
                with pytest.raises(RemoteServerError):
                    client.estimate(SQL)
        finally:
            thread.join(5.0)
            listener.close()

"""FeatureCache and template-keyed featurization reuse."""

import numpy as np
import pytest

from repro.core.featurization import Featurizer, template_key
from repro.sampling.bitmaps import query_bitmaps
from repro.serve.feature_cache import FeatureCache
from repro.workload import Predicate, Query, TableRef, spec_for_imdb


def _query(year: int, with_join: bool = False) -> Query:
    tables = [TableRef("title", "t")]
    joins = ()
    if with_join:
        from repro.workload.query import make_join

        tables.append(TableRef("movie_keyword", "mk"))
        joins = (make_join("mk", "movie_id", "t", "id"),)
    return Query(
        tables=tuple(tables),
        joins=joins,
        predicates=(Predicate("t", "production_year", ">", year),),
    )


class TestTemplateKey:
    def test_same_shape_different_literals_share_a_key(self):
        assert template_key(_query(2000)) == template_key(_query(1995))

    def test_literal_is_excluded_but_everything_else_matters(self):
        base = _query(2000)
        other_op = Query(
            tables=base.tables,
            predicates=(Predicate("t", "production_year", "<", 2000),),
        )
        other_column = Query(
            tables=base.tables,
            predicates=(Predicate("t", "kind_id", ">", 2000),),
        )
        with_join = _query(2000, with_join=True)
        keys = {
            template_key(base),
            template_key(other_op),
            template_key(other_column),
            template_key(with_join),
        }
        assert len(keys) == 4


@pytest.fixture(scope="module")
def featurizer_env(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    return sketch.featurizer, sketch.samples, imdb_small


class TestFeatureCacheReuse:
    def test_cached_features_are_identical(self, featurizer_env):
        featurizer, samples, db = featurizer_env
        cache = FeatureCache(maxsize=64)
        for query in (_query(2000), _query(1995), _query(2000, with_join=True)):
            bitmaps = query_bitmaps(samples, query)
            plain = featurizer.featurize_query(query, bitmaps, db=db)
            cached = featurizer.featurize_query(
                query, bitmaps, db=db, template_cache=cache
            )
            again = featurizer.featurize_query(
                query, bitmaps, db=db, template_cache=cache
            )
            for a, b in ((plain, cached), (plain, again)):
                np.testing.assert_array_equal(a.tables, b.tables)
                np.testing.assert_array_equal(a.joins, b.joins)
                np.testing.assert_array_equal(a.predicates, b.predicates)

    def test_hit_skips_structure_construction(self, featurizer_env, monkeypatch):
        import repro.core.featurization as featurization_mod

        featurizer, samples, db = featurizer_env
        cache = FeatureCache(maxsize=64)
        warm = _query(2000)
        featurizer.featurize_query(
            warm, query_bitmaps(samples, warm), db=db, template_cache=cache
        )

        calls = {"one_hot": 0, "build": 0}
        real_one_hot = featurization_mod._one_hot
        real_build = Featurizer._build_template

        def counting_one_hot(index, size):
            calls["one_hot"] += 1
            return real_one_hot(index, size)

        def counting_build(self, query, memo):
            calls["build"] += 1
            return real_build(self, query, memo)

        monkeypatch.setattr(featurization_mod, "_one_hot", counting_one_hot)
        monkeypatch.setattr(Featurizer, "_build_template", counting_build)

        hit = _query(1995)  # same template, different literal
        features = featurizer.featurize_query(
            hit, query_bitmaps(samples, hit), db=db, template_cache=cache
        )
        assert calls == {"one_hot": 0, "build": 0}
        # ... and the literal slot was still recomputed for THIS query.
        expected = featurizer.featurize_query(hit, query_bitmaps(samples, hit), db=db)
        np.testing.assert_array_equal(features.predicates, expected.predicates)

    def test_batch_uses_template_cache(self, featurizer_env):
        from repro.sampling.bitmaps import batch_bitmaps

        featurizer, samples, db = featurizer_env
        cache = FeatureCache(maxsize=64)
        queries = [_query(y) for y in (1990, 1995, 2000, 2005)]
        bitmaps = batch_bitmaps(samples, queries)
        batched = featurizer.featurize_batch(
            queries, bitmaps, db=db, template_cache=cache
        )
        assert len(cache) == 1  # one template, four literals
        for query, features in zip(queries, batched):
            expected = featurizer.featurize_query(
                query, query_bitmaps(samples, query), db=db
            )
            np.testing.assert_array_equal(features.tables, expected.tables)
            np.testing.assert_array_equal(features.predicates, expected.predicates)


class TestFeatureCacheScoping:
    def test_entries_are_scoped_to_the_featurizer_object(self, featurizer_env):
        featurizer, samples, db = featurizer_env
        cache = FeatureCache(maxsize=64)
        query = _query(2000)
        key = template_key(query)
        featurizer.featurize_query(
            query, query_bitmaps(samples, query), db=db, template_cache=cache
        )
        assert cache.lookup(featurizer, key) is not None
        # A rebuilt sketch carries a fresh featurizer: same manifest,
        # different object, so the entry must not be served for it.
        rebuilt = Featurizer.from_manifest(featurizer.to_manifest())
        assert cache.lookup(rebuilt, key) is None

    def test_ttl_expires_entries(self, featurizer_env):
        featurizer, samples, db = featurizer_env
        now = [0.0]
        cache = FeatureCache(maxsize=64, ttl_seconds=10.0, clock=lambda: now[0])
        query = _query(2000)
        featurizer.featurize_query(
            query, query_bitmaps(samples, query), db=db, template_cache=cache
        )
        assert cache.lookup(featurizer, template_key(query)) is not None
        now[0] = 11.0
        assert cache.lookup(featurizer, template_key(query)) is None
        assert cache.expirations == 1

    def test_size_bound(self, featurizer_env):
        featurizer, samples, db = featurizer_env
        cache = FeatureCache(maxsize=2)
        shapes = [
            _query(2000),
            _query(2000, with_join=True),
            Query(
                tables=(TableRef("title", "t"),),
                predicates=(Predicate("t", "kind_id", "=", 1),),
            ),
        ]
        for query in shapes:
            featurizer.featurize_query(
                query, query_bitmaps(samples, query), db=db, template_cache=cache
            )
        assert len(cache) == 2

"""The HTTP front door + client SDK: one estimation API over the wire.

The acceptance contract: a ``RemoteSketchServer`` pointed at a
``SketchHTTPServer`` returns estimates identical (<= 1e-12 relative)
to the in-process facade on the same query stream, failures arrive
with the same structured codes, and all three implementations satisfy
the ``SketchService`` protocol.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import ProtocolError, RemoteServerError
from repro.serve import (
    CODE_PARSE,
    CODE_ROUTE,
    CODE_VOCAB,
    PROTOCOL_VERSION,
    AsyncSketchServer,
    RemoteSketchServer,
    ServeConfig,
    SketchHTTPServer,
    SketchServer,
    SketchService,
)
from repro.workload import Predicate, Query, TableRef, spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

PARITY_RTOL = 1e-12
RESULT_TIMEOUT = 30


@pytest.fixture(scope="module")
def served(imdb_small, trained_sketch):
    """One live front door + SDK client for the whole module."""
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    with SketchHTTPServer(manager, ServeConfig(), port=0) as server:
        with RemoteSketchServer(server.url) as client:
            yield manager, server, client
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=97)
    return gen.draw_many(30)


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as reply:
        return json.loads(reply.read())


def _post_json(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServiceProtocol:
    def test_all_three_implementations_conform(self, served, imdb_small):
        manager, _server, client = served
        assert isinstance(client, SketchService)
        sync_server = SketchServer(manager)
        async_server = AsyncSketchServer(manager)
        assert isinstance(sync_server, SketchService)
        assert isinstance(async_server, SketchService)
        sync_server.close()
        async_server.close()

    def test_a_random_object_does_not_conform(self):
        assert not isinstance(object(), SketchService)


class TestRemoteParity:
    def test_stream_parity_with_in_process_facade(self, served, workload, trained_sketch):
        manager, _server, client = served
        sketch, _ = trained_sketch
        remote = client.serve(workload)
        assert all(r.ok for r in remote)
        # fresh cache state for the in-process reference
        sketch.clear_cache()
        with SketchServer(manager) as local_server:
            local = local_server.serve(workload)
        assert all(r.ok for r in local)
        remote_estimates = np.array([r.estimate for r in remote])
        local_estimates = np.array([r.estimate for r in local])
        np.testing.assert_allclose(
            remote_estimates, local_estimates, rtol=PARITY_RTOL, atol=0.0
        )
        assert [r.sketch for r in remote] == [r.sketch for r in local]

    def test_estimate_single_round_trip(self, served, workload):
        _manager, _server, client = served
        response = client.estimate(workload[0])
        assert response.ok and response.estimate > 0
        assert response.request is workload[0]  # caller's own object
        assert response.query == workload[0]

    def test_submit_returns_live_future(self, served, workload):
        _manager, _server, client = served
        future = client.submit(workload[1])
        response = future.result(RESULT_TIMEOUT)
        assert response.ok and response.estimate > 0

    def test_submit_many_is_one_round_trip(self, served, workload):
        _manager, server, client = served
        before = server.stats_summary()["requests"]
        futures = client.submit_many(workload[:6])
        responses = [f.result(RESULT_TIMEOUT) for f in futures]
        assert all(r.ok for r in responses)
        after = server.stats_summary()["requests"]
        assert after - before == 6  # engine saw the batch, not 6 trips

    def test_sql_strings_accepted(self, served):
        _manager, _server, client = served
        response = client.estimate(
            "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"
        )
        assert response.ok
        assert isinstance(response.query, Query)


class TestStructuredErrorsOverTheWire:
    def test_parse_error_code(self, served):
        _manager, _server, client = served
        response = client.estimate("SELECT nonsense;")
        assert not response.ok and response.code == CODE_PARSE

    def test_route_error_code(self, served):
        _manager, _server, client = served
        response = client.estimate("SELECT COUNT(*) FROM keyword k;")
        assert not response.ok and response.code == CODE_ROUTE

    def test_unknown_pinned_sketch_is_route(self, served, workload):
        _manager, _server, client = served
        response = client.estimate(workload[0], sketch="ghost")
        assert not response.ok and response.code == CODE_ROUTE
        assert "ghost" in response.error

    def test_vocab_error_code(self, served):
        _manager, _server, client = served
        bad = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        response = client.estimate(bad)
        assert not response.ok and response.code == CODE_VOCAB

    def test_error_isolation_in_batches(self, served, workload):
        _manager, _server, client = served
        responses = client.serve(
            [workload[0], "SELECT nonsense;", workload[1]]
        )
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok and responses[1].code == CODE_PARSE


class TestEndpoints:
    def test_stats_shape_matches_stats_summary(self, served):
        _manager, server, client = served
        wire = client.stats_summary()
        local = server.stats_summary()
        assert wire.keys() == local.keys()
        assert wire["executor"] == local["executor"]
        assert wire["flushes"].keys() == local["flushes"].keys()

    def test_healthz(self, served, trained_sketch):
        _manager, server, client = served
        sketch, _ = trained_sketch
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol_version"] == PROTOCOL_VERSION
        assert sketch.name in health["sketches"]

    def test_raw_estimate_envelope(self, served, workload):
        _manager, server, _client = served
        status, payload = _post_json(
            server.url + "/v1/estimate",
            {"protocol_version": PROTOCOL_VERSION,
             "sql": workload[0].to_sql(), "sketch": None},
        )
        assert status == 200
        assert payload["ok"] is True
        assert payload["protocol_version"] == PROTOCOL_VERSION
        assert payload["estimate"] > 0
        assert payload["server_ms"] >= 0.0

    def test_unknown_path_is_404(self, served):
        _manager, server, _client = served
        status, payload = _post_json(
            server.url + "/v1/nope", {"protocol_version": PROTOCOL_VERSION}
        )
        assert status == 404 and payload["code"] == "not_found"

    def test_error_paths_close_keepalive_connections(self, served, workload):
        # A 404 POST never reads its body; answering keep-alive would
        # leave those bytes to be misparsed as the client's next
        # request line.  The server must signal Connection: close, and
        # a well-behaved keep-alive client then reconnects cleanly.
        import http.client

        _manager, server, _client = served
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            body = json.dumps(
                {"protocol_version": PROTOCOL_VERSION, "sql": "x"}
            )
            connection.request(
                "POST", "/v1/typo", body=body,
                headers={"Content-Type": "application/json"},
            )
            reply = connection.getresponse()
            assert reply.status == 404
            reply.read()
            assert reply.headers.get("Connection", "").lower() == "close"
        finally:
            connection.close()
        # and the front door still answers a fresh connection
        status, payload = _post_json(
            server.url + "/v1/estimate",
            {"protocol_version": PROTOCOL_VERSION,
             "sql": workload[0].to_sql()},
        )
        assert status == 200 and payload["ok"] is True

    def test_bad_json_is_400(self, served):
        _manager, server, _client = served
        request = urllib.request.Request(
            server.url + "/v1/estimate",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert json.loads(exc.read())["code"] == "protocol"

    def test_version_skew_is_400(self, served, workload):
        _manager, server, _client = served
        status, payload = _post_json(
            server.url + "/v1/estimate",
            {"protocol_version": PROTOCOL_VERSION + 1,
             "sql": workload[0].to_sql()},
        )
        assert status == 400 and payload["code"] == "protocol"

    def test_concurrent_http_clients_share_the_engine(self, served, workload):
        # Many client threads, one engine: every request is answered
        # and the engine counters account for all of them.
        _manager, server, client = served
        before = server.stats_summary()["requests"]
        n_threads, per_thread = 4, 5
        failures = []

        def hammer(tid):
            try:
                for i in range(per_thread):
                    r = client.estimate(workload[(tid + i) % len(workload)])
                    assert r.ok
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        after = server.stats_summary()["requests"]
        assert after - before == n_threads * per_thread


class TestClientLifecycle:
    def test_unreachable_server_raises_remote_error(self):
        client = RemoteSketchServer("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(RemoteServerError, match="cannot reach"):
            client.estimate("SELECT COUNT(*) FROM title t;")
        client.close()

    def test_bad_url_rejected_at_construction(self):
        with pytest.raises(RemoteServerError, match="http"):
            RemoteSketchServer("ftp://example.com")

    def test_closed_client_refuses_work(self, served, workload):
        _manager, server, _client = served
        client = RemoteSketchServer(server.url)
        client.close()
        with pytest.raises(RemoteServerError, match="closed"):
            client.estimate(workload[0])
        client.close()  # idempotent

    def test_timings_split_wire_and_server(self, served, workload):
        _manager, _server, client = served
        client.estimate(workload[0])
        timings = client.timings()
        assert timings["wire"]["count"] >= 1
        assert timings["server"]["count"] >= 1
        # client-observed latency includes the server's handling time
        assert timings["wire"]["max"] >= 0.0

    def test_close_without_start_returns_promptly(self, imdb_small, trained_sketch):
        # shutdown() blocks on an event only serve_forever() sets; a
        # constructed-but-unstarted server must still close cleanly.
        sketch, _ = trained_sketch
        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        server = SketchHTTPServer(manager, ServeConfig(), port=0)
        done = threading.Event()

        def closer():
            server.close()
            server.close()  # idempotent
            done.set()

        thread = threading.Thread(target=closer, daemon=True)
        thread.start()
        assert done.wait(10.0), "close() deadlocked on an unstarted server"
        sketch.clear_cache()

    def test_server_close_drains_then_refuses(self, imdb_small, trained_sketch, workload):
        sketch, _ = trained_sketch
        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        server = SketchHTTPServer(manager, ServeConfig(), port=0).start()
        client = RemoteSketchServer(server.url, timeout=2.0)
        assert client.estimate(workload[0]).ok
        server.close()
        with pytest.raises((RemoteServerError, ProtocolError)):
            client.estimate(workload[1])
        client.close()
        sketch.clear_cache()

    def test_close_answers_every_inflight_request(
        self, imdb_small, trained_sketch, workload
    ):
        """close() while requests sit buffered in the engine: the drain
        flush answers all of them, none is dropped, none is accepted
        after close, and the stats reflect the drained count."""
        sketch, _ = trained_sketch
        sketch.clear_cache()
        manager = SketchManager(imdb_small)
        manager.register_sketch(sketch)
        # a flush horizon far beyond the test: only close() can flush
        config = ServeConfig(
            max_wait_ms=60_000.0, min_idle_ms=None, use_cache=False
        )
        server = SketchHTTPServer(manager, config, port=0).start()
        n = 6
        responses: list = [None] * n
        failures: list = []
        started = threading.Barrier(n + 1)

        def inflight_client(i):
            client = RemoteSketchServer(server.url, timeout=RESULT_TIMEOUT)
            try:
                started.wait(RESULT_TIMEOUT)
                responses[i] = client.estimate(workload[i])
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=inflight_client, args=(i,), daemon=True)
            for i in range(n)
        ]
        for thread in threads:
            thread.start()
        started.wait(RESULT_TIMEOUT)
        # wait for every request to be buffered inside the engine
        import time as _time

        deadline = _time.monotonic() + RESULT_TIMEOUT
        while (
            server.service.pending < n and _time.monotonic() < deadline
        ):
            _time.sleep(0.01)
        assert server.service.pending == n

        server.close()  # acceptor stops, then the engine drains
        for thread in threads:
            thread.join(RESULT_TIMEOUT)
        assert not any(thread.is_alive() for thread in threads)

        # every in-flight client got a real answer
        assert not failures
        assert all(r is not None and r.ok for r in responses)
        estimates = [r.estimate for r in responses]
        assert all(e > 0 for e in estimates)

        # the stats reflect exactly the drained requests
        stats = server.stats_summary()
        assert stats["requests"] == n
        assert stats["answered"] == n
        assert stats["flushes"].get("drain", 0) >= 1

        # and nothing is answered after close
        late = RemoteSketchServer(server.url, timeout=2.0)
        with pytest.raises((RemoteServerError, ProtocolError)):
            late.estimate(workload[0])
        late.close()
        sketch.clear_cache()

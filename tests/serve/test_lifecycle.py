"""LifecycleManager + hot-swap barrier: the PR 8 tentpole contract.

Covered here:

* ``EstimationEngine.swap_sketch`` — atomic install, barrier-gated
  retirement, per-response snapshot-token stamping;
* drift-triggered shadow refresh through ``run_once`` with injectable
  ``drift_fn``/``refresh_fn`` fakes (no training in the fast tests);
* fault injection — shadow-train failure, corrupt registry entry, swap
  racing ``drop_sketch`` — each degrading to a structured code with the
  previous version still serving, never a hang;
* registry rollback end to end (pinned version restored into the live
  engine);
* the satellite hot-swap-under-concurrent-load audit: a TrafficShaper
  replay while swaps and a rollback fire, gated on zero hung futures,
  structured codes only, and no response answered by a retired snapshot
  version after its swap completed.
"""

import threading
import time

import pytest

from repro.core import DeepSketch, DriftReport, RefreshResult
from repro.demo import SketchManager
from repro.errors import RegistryError, SketchError
from repro.serve import (
    AsyncServeConfig,
    AsyncSketchServer,
    LifecycleConfig,
    LifecycleManager,
    ServeConfig,
    SketchRegistry,
    SketchServer,
    healthz_payload,
)
from repro.workload import (
    SuiteConfig,
    TrafficConfig,
    TrafficShaper,
    generate_template_suite,
    spec_for_imdb,
)
from repro.workload.generator import TrainingQueryGenerator

RESULT_TIMEOUT = 30.0
SQL = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=2024)
    return gen.draw_many(40)


def _clone(sketch) -> DeepSketch:
    """An independent same-name replacement with its own snapshot token."""
    return DeepSketch.from_bytes(sketch.to_bytes())


def _stale_drift(sketch, db, seed=None, threshold=None):
    return DriftReport(table_drift={"title": 0.9}, threshold=0.15)


def _fresh_drift(sketch, db, seed=None, threshold=None):
    return DriftReport(table_drift={"title": 0.0}, threshold=0.15)


def _refresh_returning(result):
    def refresh(sketch, db, spec, n_queries=0, epochs=0, seed=None):
        refresh.calls += 1
        return result() if callable(result) else result

    refresh.calls = 0
    return refresh


class TestSwapSketch:
    """The engine-level hot-swap primitive."""

    def test_swap_installs_replacement_and_retires_old(self, manager, workload):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        with SketchServer(manager) as server:
            server.serve(workload[:2])
            old_token = original.snapshot_token
            retired = server.engine.swap_sketch("test-sketch", replacement)
            assert retired is original
            # Retirement bumped the old token: no later response can be
            # stamped with it, and its result cache is gone.
            assert retired.snapshot_token != old_token
            assert manager.get_sketch("test-sketch") is replacement
            (response,) = server.serve(workload[2:3])
            assert response.ok
            assert response.token == replacement.snapshot_token

    def test_swap_telemetry(self, manager):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        replacement.metadata["registry_version"] = 7
        old_token = original.snapshot_token
        with SketchServer(manager) as server:
            server.engine.swap_sketch("test-sketch", replacement)
            stats = server.stats_summary()
        assert stats["swaps"] == 1
        last = stats["last_swap"]
        assert last["sketch"] == "test-sketch"
        assert last["old_token"] == old_token
        assert last["new_token"] == replacement.snapshot_token
        assert last["registry_version"] == 7
        assert last["at"] > 0
        assert stats["versions"]["test-sketch"] == {
            "token": replacement.snapshot_token,
            "registry_version": 7,
        }

    def test_swap_unknown_name_leaves_serving_untouched(self, manager, workload):
        original = manager.get_sketch("test-sketch")
        with SketchServer(manager) as server:
            with pytest.raises(SketchError, match="no sketch named"):
                server.engine.swap_sketch("ghost", _clone(original))
            assert manager.get_sketch("test-sketch") is original
            assert server.serve(workload[:1])[0].ok

    def test_swap_name_mismatch_rejected(self, manager, workload):
        original = manager.get_sketch("test-sketch")
        impostor = _clone(original)
        impostor.name = "impostor"
        with SketchServer(manager) as server:
            with pytest.raises(SketchError, match="named 'impostor'"):
                server.engine.swap_sketch("test-sketch", impostor)
            assert manager.get_sketch("test-sketch") is original
            assert server.serve(workload[:1])[0].ok

    def test_swap_after_close_raises(self, manager):
        original = manager.get_sketch("test-sketch")
        server = SketchServer(manager)
        server.close()
        with pytest.raises(SketchError, match="closed"):
            server.engine.swap_sketch("test-sketch", _clone(original))


class TestResponseTokens:
    """Every served answer is stamped with its snapshot version."""

    def test_ok_responses_carry_the_serving_token(self, manager, workload):
        token = manager.get_sketch("test-sketch").snapshot_token
        with SketchServer(manager) as server:
            responses = server.serve(workload[:3])
        assert all(r.ok for r in responses)
        assert all(r.token == token for r in responses)

    def test_cached_hits_carry_the_current_token(self, manager, workload):
        token = manager.get_sketch("test-sketch").snapshot_token
        with SketchServer(manager) as server:
            server.serve(workload[:1])
            (cached,) = server.serve(workload[:1])
        assert cached.cached
        assert cached.token == token

    def test_error_responses_carry_no_token(self, manager):
        with SketchServer(manager) as server:
            (parse,) = server.serve(["SELECT nonsense;"])
            (route,) = server.serve(["SELECT COUNT(*) FROM keyword k;"])
        assert parse.token is None
        assert route.token is None


class TestLifecyclePasses:
    """run_once with injected drift/refresh: the state machine itself."""

    def _lifecycle(self, server, imdb_small, **kwargs):
        kwargs.setdefault("config", LifecycleConfig(check_interval_s=0.01))
        return LifecycleManager(
            server, imdb_small, {"test-sketch": spec_for_imdb()}, **kwargs
        )

    def test_no_drift_stays_idle(self, manager, imdb_small):
        refresh = _refresh_returning(RefreshResult(ok=True))
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server, imdb_small, drift_fn=_fresh_drift, refresh_fn=refresh
            )
            assert lifecycle.run_once() == {"test-sketch": "idle"}
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["last_drift"] == 0.0
        assert state["refreshes"] == 0
        assert refresh.calls == 0

    def test_drift_triggers_shadow_refresh_and_swap(self, manager, imdb_small):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        refresh = _refresh_returning(RefreshResult(ok=True, sketch=replacement))
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server, imdb_small, drift_fn=_stale_drift, refresh_fn=refresh
            )
            assert lifecycle.run_once() == {"test-sketch": "idle"}
            assert manager.get_sketch("test-sketch") is replacement
            assert server.stats_summary()["swaps"] == 1
        assert refresh.calls == 1
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["refreshes"] == 1
        assert state["failures"] == 0
        assert state["last_refresh_at"] is not None

    def test_refresh_publishes_to_the_registry(
        self, manager, imdb_small, tmp_path
    ):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        registry = SketchRegistry(tmp_path / "reg")
        refresh = _refresh_returning(RefreshResult(ok=True, sketch=replacement))
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                registry=registry,
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            lifecycle.run_once()
            stats = server.stats_summary()
        assert registry.describe()["test-sketch"]["active"] == 1
        assert stats["last_swap"]["registry_version"] == 1
        assert stats["versions"]["test-sketch"]["registry_version"] == 1

    def test_refresh_failure_backs_off_and_keeps_serving(
        self, manager, imdb_small
    ):
        original = manager.get_sketch("test-sketch")
        token = original.snapshot_token
        refresh = _refresh_returning(
            RefreshResult(
                ok=False,
                error="only 3 non-empty fine-tuning queries",
                code="insufficient_queries",
            )
        )
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                config=LifecycleConfig(check_interval_s=0.01, backoff_s=30.0),
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            # The previous version never stopped serving.
            assert manager.get_sketch("test-sketch") is original
            assert original.snapshot_token == token
            # Backing off: the next pass skips the sketch entirely.
            assert lifecycle.run_once() == {"test-sketch": "failed"}
        assert refresh.calls == 1
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["failures"] == 1
        assert state["last_code"] == "insufficient_queries"
        assert "non-empty" in state["last_error"]
        assert state["next_attempt_at"] is not None

    def test_backoff_doubles_per_consecutive_failure(self, manager, imdb_small):
        refresh = _refresh_returning(
            RefreshResult(ok=False, error="x", code="internal")
        )
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                config=LifecycleConfig(
                    check_interval_s=0.01,
                    backoff_s=1.0,
                    backoff_cap_s=60.0,
                    max_retries=10,
                ),
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            state = lifecycle._states["test-sketch"]
            lifecycle.run_once()
            first_wait = state.next_attempt_at - time.monotonic()
            assert 0.5 < first_wait <= 1.0
            state.next_attempt_at = 0.0  # force the retry immediately
            lifecycle.run_once()
            second_wait = state.next_attempt_at - time.monotonic()
            assert 1.5 < second_wait <= 2.0
            assert state.failures == 2

    def test_non_retryable_code_parks_until_reset(self, manager, imdb_small):
        drift_calls = []

        def counting_drift(sketch, db, seed=None, threshold=None):
            drift_calls.append(1)
            return _stale_drift(sketch, db)

        refresh = _refresh_returning(
            RefreshResult(
                ok=False,
                error="spec tables differ",
                code="spec_mismatch",
            )
        )
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                drift_fn=counting_drift,
                refresh_fn=refresh,
            )
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            state = lifecycle.state()["sketches"]["test-sketch"]
            assert state["next_attempt_at"] is None  # parked, not backing off
            checks_before = len(drift_calls)
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            assert len(drift_calls) == checks_before  # parked = not checked
            lifecycle.reset("test-sketch")
            lifecycle.run_once()
            assert len(drift_calls) == checks_before + 1

    def test_retries_exhausted_parks(self, manager, imdb_small):
        refresh = _refresh_returning(
            RefreshResult(ok=False, error="x", code="internal")
        )
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                config=LifecycleConfig(
                    check_interval_s=0.01, backoff_s=0.001, max_retries=1
                ),
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            lifecycle.run_once()
            time.sleep(0.01)
            lifecycle.run_once()
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["failures"] == 2
        assert state["next_attempt_at"] is None
        assert refresh.calls == 2

    def test_drift_check_crash_is_structured(self, manager, imdb_small):
        original = manager.get_sketch("test-sketch")

        def exploding_drift(sketch, db, seed=None, threshold=None):
            raise RuntimeError("table renamed mid-migration")

        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server, imdb_small, drift_fn=exploding_drift
            )
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            assert manager.get_sketch("test-sketch") is original
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["last_code"] == "drift_check_failed"
        assert "table renamed" in state["last_error"]

    def test_missing_sketch_is_structured(self, manager, imdb_small):
        with SketchServer(manager) as server:
            lifecycle = LifecycleManager(
                server,
                imdb_small,
                {"ghost": spec_for_imdb()},
                config=LifecycleConfig(check_interval_s=0.01),
            )
            assert lifecycle.run_once() == {"ghost": "failed"}
        assert (
            lifecycle.state()["sketches"]["ghost"]["last_code"]
            == "missing_sketch"
        )

    def test_registry_save_failure_keeps_old_serving(self, manager, imdb_small):
        original = manager.get_sketch("test-sketch")
        token = original.snapshot_token

        class BrokenRegistry:
            def save(self, sketch, note="", activate=True):
                raise RegistryError("disk full")

        refresh = _refresh_returning(
            RefreshResult(ok=True, sketch=_clone(original))
        )
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                registry=BrokenRegistry(),
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            # An unpublishable replacement is never swapped in: doing so
            # would fork this node's version away from the fleet.
            assert manager.get_sketch("test-sketch") is original
            assert original.snapshot_token == token
            assert server.stats_summary()["swaps"] == 0
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["last_code"] == "registry_save_failed"
        assert "disk full" in state["last_error"]

    def test_swap_racing_drop_is_structured(self, manager, imdb_small):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)

        def dropping_refresh(sketch, db, spec, n_queries=0, epochs=0, seed=None):
            # The operator drops the sketch while the shadow train runs:
            # the subsequent swap must fail structurally, not crash the
            # watcher or install a sketch nobody routes to.
            manager.drop_sketch("test-sketch")
            return RefreshResult(ok=True, sketch=replacement)

        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                drift_fn=_stale_drift,
                refresh_fn=dropping_refresh,
            )
            assert lifecycle.run_once() == {"test-sketch": "failed"}
            assert server.stats_summary()["swaps"] == 0
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["last_code"] == "swap_failed"
        # Re-register so the fixture's teardown finds a coherent manager.
        manager.register_sketch(original)

    def test_qerror_probe_trigger(self, manager, imdb_small, workload):
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        refresh = _refresh_returning(RefreshResult(ok=True, sketch=replacement))
        probes = [(workload[0], 1e12)]  # absurd truth -> huge q-error
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server,
                imdb_small,
                config=LifecycleConfig(
                    check_interval_s=0.01, qerror_threshold=10.0
                ),
                probes={"test-sketch": probes},
                drift_fn=_fresh_drift,  # samples agree; quality does not
                refresh_fn=refresh,
            )
            assert lifecycle.run_once() == {"test-sketch": "idle"}
            assert manager.get_sketch("test-sketch") is replacement
        assert refresh.calls == 1

    def test_state_surfaces_through_stats_and_healthz(self, manager, imdb_small):
        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server, imdb_small, drift_fn=_fresh_drift
            )
            lifecycle.run_once()
            stats = server.stats_summary()
            health = healthz_payload(server)
        state = lifecycle.state()
        assert set(state) == {
            "running", "check_interval_s", "rollbacks", "sketches",
        }
        assert set(state["sketches"]["test-sketch"]) == {
            "phase", "last_drift", "last_check_at", "failures",
            "last_error", "last_code", "next_attempt_at", "refreshes",
            "last_refresh_at",
        }
        assert stats["lifecycle"]["sketches"]["test-sketch"]["phase"] == "idle"
        assert health["lifecycle"]["rollbacks"] == 0
        assert health["versions"]["test-sketch"]["token"] is not None

    def test_watcher_thread_runs_and_stops(self, manager, imdb_small):
        checked = threading.Event()

        def signalling_drift(sketch, db, seed=None, threshold=None):
            checked.set()
            return _fresh_drift(sketch, db)

        with SketchServer(manager) as server:
            lifecycle = self._lifecycle(
                server, imdb_small, drift_fn=signalling_drift
            )
            lifecycle.start()
            lifecycle.start()  # idempotent
            assert lifecycle.running
            assert checked.wait(RESULT_TIMEOUT)
            lifecycle.stop()
            assert not lifecycle.running


class TestRollback:
    def _registry_with_versions(self, tmp_path, original, n=2):
        registry = SketchRegistry(tmp_path / "reg")
        for i in range(n):
            registry.save(_clone(original), note=f"v{i + 1}")
        return registry

    def test_rollback_restores_pinned_version_end_to_end(
        self, manager, imdb_small, tmp_path, workload
    ):
        original = manager.get_sketch("test-sketch")
        registry = self._registry_with_versions(tmp_path, original, n=3)
        registry.pin("test-sketch", 1)
        with SketchServer(manager) as server:
            lifecycle = LifecycleManager(
                server,
                imdb_small,
                {"test-sketch": spec_for_imdb()},
                registry=registry,
                config=LifecycleConfig(check_interval_s=0.01),
            )
            assert lifecycle.rollback("test-sketch") == 1
            stats = server.stats_summary()
            (response,) = server.serve(workload[:1])
        assert response.ok
        assert stats["versions"]["test-sketch"]["registry_version"] == 1
        assert registry.active_version("test-sketch") == 1
        assert lifecycle.state()["rollbacks"] == 1
        assert stats["lifecycle"]["rollbacks"] == 1

    def test_rollback_clears_a_parked_failure(self, manager, imdb_small, tmp_path):
        original = manager.get_sketch("test-sketch")
        registry = self._registry_with_versions(tmp_path, original)
        refresh = _refresh_returning(
            RefreshResult(ok=False, error="bad", code="spec_mismatch")
        )
        with SketchServer(manager) as server:
            lifecycle = LifecycleManager(
                server,
                imdb_small,
                {"test-sketch": spec_for_imdb()},
                registry=registry,
                config=LifecycleConfig(check_interval_s=0.01),
                drift_fn=_stale_drift,
                refresh_fn=refresh,
            )
            lifecycle.run_once()
            assert (
                lifecycle.state()["sketches"]["test-sketch"]["phase"]
                == "failed"
            )
            lifecycle.rollback("test-sketch")
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["phase"] == "idle"
        assert state["failures"] == 0

    def test_rollback_to_corrupt_blob_leaves_engine_untouched(
        self, manager, imdb_small, tmp_path
    ):
        original = manager.get_sketch("test-sketch")
        token = original.snapshot_token
        registry = self._registry_with_versions(tmp_path, original)
        registry.pin("test-sketch", 1)
        blob = registry.root / registry.versions("test-sketch")[1]["path"]
        blob.write_bytes(b"\x00" * 32)
        with SketchServer(manager) as server:
            lifecycle = LifecycleManager(
                server,
                imdb_small,
                {"test-sketch": spec_for_imdb()},
                registry=registry,
                config=LifecycleConfig(check_interval_s=0.01),
            )
            with pytest.raises(RegistryError, match="checksum"):
                lifecycle.rollback("test-sketch")
            # The engine never saw the corrupt payload: same object, same
            # token, zero swaps.
            assert manager.get_sketch("test-sketch") is original
            assert original.snapshot_token == token
            assert server.stats_summary()["swaps"] == 0
        state = lifecycle.state()["sketches"]["test-sketch"]
        assert state["last_code"] == "rollback_failed"

    def test_rollback_without_registry_raises(self, manager, imdb_small):
        with SketchServer(manager) as server:
            lifecycle = LifecycleManager(
                server,
                imdb_small,
                {"test-sketch": spec_for_imdb()},
                config=LifecycleConfig(check_interval_s=0.01),
            )
            with pytest.raises(RegistryError, match="no registry"):
                lifecycle.rollback("test-sketch")


class TestSwapUnderConcurrentLoad:
    """Satellite: swaps + a rollback racing live open-loop traffic."""

    @pytest.fixture(scope="class")
    def suite(self, imdb_small):
        return generate_template_suite(
            imdb_small,
            spec_for_imdb(),
            SuiteConfig(n_templates=4, queries_per_template=8, max_joins=2),
            seed=11,
        )

    def test_zero_drop_zero_stale_audit(
        self, manager, imdb_small, tmp_path, suite
    ):
        original = manager.get_sketch("test-sketch")
        registry = SketchRegistry(tmp_path / "reg")
        registry.save(_clone(original), note="v1")
        registry.save(_clone(original), note="v2")

        lock = threading.Lock()
        observed: list[tuple[bool, str | None, int | None, float]] = []

        def on_response(response, resolved_at):
            with lock:
                observed.append(
                    (response.ok, response.code, response.token, resolved_at)
                )

        shaper = TrafficShaper(
            suite,
            TrafficConfig(
                n_requests=240,
                rate_qps=1500.0,
                burst_on_s=0.02,
                burst_off_s=0.02,
                timeout_s=RESULT_TIMEOUT,
            ),
            seed=5,
        )
        server = AsyncSketchServer(
            manager, AsyncServeConfig(max_batch_size=32)
        ).start()
        lifecycle = LifecycleManager(
            server,
            imdb_small,
            {"test-sketch": spec_for_imdb()},
            registry=registry,
            config=LifecycleConfig(check_interval_s=60.0),
        )
        replay_box: dict = {}

        def replay_body():
            replay_box["result"] = shaper.replay(
                server, on_response=on_response
            )

        thread = threading.Thread(target=replay_body)
        swaps: list[dict] = []  # {old_token, new_token, done_at}
        try:
            thread.start()
            # Two direct hot swaps and one registry rollback fire while
            # the replay is in flight.
            for _ in range(2):
                time.sleep(0.04)
                replacement = _clone(original)
                old_token = manager.get_sketch("test-sketch").snapshot_token
                server.engine.swap_sketch("test-sketch", replacement)
                swaps.append(
                    {
                        "old_token": old_token,
                        "new_token": replacement.snapshot_token,
                        "done_at": time.monotonic(),
                    }
                )
            time.sleep(0.04)
            old_token = manager.get_sketch("test-sketch").snapshot_token
            lifecycle.rollback("test-sketch")
            swaps.append(
                {
                    "old_token": old_token,
                    "new_token": manager.get_sketch(
                        "test-sketch"
                    ).snapshot_token,
                    "done_at": time.monotonic(),
                }
            )
            thread.join(RESULT_TIMEOUT * 2)
            assert not thread.is_alive()
        finally:
            server.close()
        replay = replay_box["result"]

        # -- the degradation audit ------------------------------------
        assert replay.zero_hung, replay.audit()
        assert replay.structured_only, replay.audit()
        assert replay.n_ok + replay.n_failed == replay.n_requests
        assert replay.n_ok > 0
        assert server.stats_summary()["swaps"] == 3

        # -- per-response snapshot-version accounting -----------------
        # Exactly one version answered each request, and no response
        # stamped with a retired token resolved after that version's
        # swap completed (the barrier guarantee).
        valid_tokens = {original.snapshot_token}
        valid_tokens.update(s["old_token"] for s in swaps)
        valid_tokens.update(s["new_token"] for s in swaps)
        late_retired = 0
        for ok, _code, token, resolved_at in observed:
            if not ok:
                continue
            assert token in valid_tokens
            for swap in swaps:
                if token == swap["old_token"] and resolved_at > swap["done_at"]:
                    late_retired += 1
        assert late_retired == 0

    def test_process_executor_never_mixes_versions(self, manager, workload):
        # The process pool serves shipped weight replicas; a swap must
        # re-ship before the next batch so no batch mixes versions.
        original = manager.get_sketch("test-sketch")
        replacement = _clone(original)
        config = ServeConfig(
            executor="process", executor_workers=2, use_cache=False,
        )
        with SketchServer(manager, config) as server:
            before = server.serve(workload[:4])
            server.engine.swap_sketch("test-sketch", replacement)
            after = server.serve(workload[4:8])
        assert all(r.ok for r in before + after)
        before_tokens = {r.token for r in before}
        after_tokens = {r.token for r in after}
        assert after_tokens == {replacement.snapshot_token}
        assert before_tokens.isdisjoint(after_tokens)

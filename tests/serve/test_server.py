"""SketchServer: routing, micro-batching, caching, and error isolation."""

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import SketchError
from repro.serve import EstimateResponse, ServeConfig, SketchServer
from repro.workload import Predicate, Query, TableRef, spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

RTOL = 1e-12


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=321)
    return gen.draw_many(40)


class TestServe:
    def test_batch_matches_single_estimates(self, manager, trained_sketch, workload):
        sketch, _ = trained_sketch
        server = SketchServer(manager)
        responses = server.serve(workload)
        assert all(r.ok for r in responses)
        assert [r.sketch for r in responses] == [sketch.name] * len(workload)
        sketch.clear_cache()
        single = [sketch.estimate(q, use_cache=False) for q in workload]
        np.testing.assert_allclose(
            [r.estimate for r in responses], single, rtol=RTOL, atol=0.0
        )

    def test_accepts_sql_strings(self, manager, workload):
        sqls = [q.to_sql() for q in workload[:5]]
        responses = SketchServer(manager).serve(sqls)
        assert all(r.ok for r in responses)
        assert all(isinstance(r.query, Query) for r in responses)

    def test_responses_in_submission_order(self, manager, workload):
        server = SketchServer(manager)
        for q in workload[:7]:
            server.submit(q)
        assert server.pending == 7
        responses = server.flush()
        assert server.pending == 0
        assert [r.request for r in responses] == list(workload[:7])

    def test_micro_batching_counts_forwards(self, manager, workload):
        server = SketchServer(manager, ServeConfig(max_batch_size=8, use_cache=False))
        server.serve(workload[:20])
        assert server.stats.n_forward_batches == 3  # ceil(20 / 8)
        assert server.stats.n_answered == 20

    def test_duplicate_heavy_stream_hits_cache(self, manager, workload):
        distinct = list(workload[:6])
        stream = [distinct[i % len(distinct)] for i in range(48)]
        server = SketchServer(manager, ServeConfig(max_batch_size=16))
        responses = server.serve(stream)
        assert all(r.ok for r in responses)
        # Later micro-batches find every query already cached.
        assert server.stats.n_cache_hits > 0
        assert server.stats.n_forward_batches < 3
        # Repeats of one query all answer identically.
        values = {}
        for r in responses:
            values.setdefault(r.query, set()).add(r.estimate)
        assert all(len(v) == 1 for v in values.values())

    def test_flush_on_empty_queue(self, manager):
        assert SketchServer(manager).flush() == []


class TestErrors:
    def test_malformed_sql_is_isolated(self, manager, workload):
        server = SketchServer(manager)
        responses = server.serve(["SELECT nonsense;", workload[0].to_sql()])
        assert not responses[0].ok and responses[0].estimate is None
        assert responses[1].ok and responses[1].estimate is not None
        assert server.stats.n_errors == 1
        assert server.stats.n_answered == 1

    def test_every_failure_class_has_a_structured_code(self, manager, workload):
        # The satellite contract: parse/route/vocab failures carry
        # dispatchable codes (shed/deadline covered in test_engine.py),
        # successes stay code=None, messages are unchanged.
        from repro.serve import CODE_PARSE, CODE_ROUTE, CODE_VOCAB

        vocab_query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        server = SketchServer(manager)
        ok, parse, route, vocab = server.serve(
            [
                workload[0],
                "SELECT nonsense;",
                Query(tables=(TableRef("no_such_table", "x"),)),
                vocab_query,
            ]
        )
        assert ok.ok and ok.code is None
        assert parse.code == CODE_PARSE and "nonsense" in parse.error
        assert route.code == CODE_ROUTE
        assert "no registered sketch covers" in route.error
        assert vocab.code == CODE_VOCAB and vocab.error

    def test_unknown_pinned_sketch_has_route_code(self, manager, workload):
        from repro.serve import CODE_ROUTE

        responses = SketchServer(manager).serve([workload[0]], sketch="ghost")
        assert responses[0].code == CODE_ROUTE

    def test_uncovered_tables_are_isolated(self, manager, workload):
        outside = Query(tables=(TableRef("no_such_table", "x"),))
        responses = SketchServer(manager).serve([outside, workload[0]])
        assert not responses[0].ok
        assert "no registered sketch covers" in responses[0].error
        assert responses[1].ok

    def test_unknown_pinned_sketch(self, manager, workload):
        responses = SketchServer(manager).serve([workload[0]], sketch="ghost")
        assert not responses[0].ok
        assert "ghost" in responses[0].error

    def test_unknown_predicate_column_is_isolated(self, manager, workload):
        # Covered tables but a column outside the sketch's vocabulary:
        # passes routing, fails featurization, must not poison the batch.
        bad = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        responses = SketchServer(manager).serve([workload[0], bad, workload[1]])
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok

    def test_fallback_retry_accounts_duplicates_as_cache_hits(self, manager, workload):
        # A poisoned micro-batch falls back to per-query retries; the
        # second occurrence of a duplicate must be answered (and
        # counted) from the cache the first retry populated.
        bad = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "episode_nr", "=", 1),),
        )
        good = workload[0]
        server = SketchServer(manager)
        responses = server.serve([good, bad, good])
        assert responses[0].ok and responses[2].ok and not responses[1].ok
        assert responses[2].cached
        assert responses[0].estimate == responses[2].estimate
        assert server.stats.n_forward_batches == 1
        assert server.stats.n_cache_hits == 1

    def test_bad_config_rejected(self):
        with pytest.raises(SketchError):
            ServeConfig(max_batch_size=0)


class TestRouting:
    def test_routes_to_narrowest_covering_sketch(self, manager, imdb_small, workload):
        from repro.core import SketchConfig, build_sketch

        narrow, _ = build_sketch(
            imdb_small,
            spec_for_imdb(tables=("title", "movie_keyword")),
            name="narrow",
            config=SketchConfig(
                n_training_queries=300, epochs=2, sample_size=50,
                hidden_units=16, seed=11,
            ),
        )
        manager.register_sketch(narrow)
        narrow_query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "production_year", ">", 2000),),
        )
        wide_query = workload[0]
        responses = SketchServer(manager).serve([narrow_query, wide_query])
        assert responses[0].sketch == "narrow"
        assert all(r.ok for r in responses)

    def test_route_many_matches_route(self, manager, workload):
        batch = manager.route_many(list(workload[:10]))
        for query, (name, estimate) in zip(workload[:10], batch):
            single_name, single_estimate = manager.route(query)
            assert name == single_name
            assert estimate == pytest.approx(single_estimate, rel=RTOL)


class TestResponses:
    def test_response_shape(self, manager, workload):
        (response,) = SketchServer(manager).serve([workload[0]])
        assert isinstance(response, EstimateResponse)
        assert response.request is workload[0]
        assert response.query == workload[0]
        assert response.estimate >= 1.0
        assert response.error is None

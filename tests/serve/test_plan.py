"""Plan advisory service: one-round-trip batching, degradation, wire
envelopes, and end-to-end parity with the in-process optimizer.

Three layers.  The stub layer drives :func:`plan_query` with a scripted
service so the ONE-``submit_many``-per-plan contract, the failure
codes, and the independence-assumption degradation are deterministic.
The envelope layer proves exact round-trip identity of the plan
envelopes on both codecs (JSON and binary frames).  The integration
layer serves a trained sketch through every implementation — sync,
async, HTTP (both transports), gateway — and gates that the served
plan is *identical* to the in-process ``PlanOptimizer`` plan, and that
every failure path (including a backend dying mid-plan) resolves to a
structured code.
"""

from concurrent.futures import Future

import pytest

from repro.demo import SketchManager
from repro.errors import ProtocolError, RemoteServerError
from repro.optimizer import CardinalityCache, PlanOptimizer, connected_subsets
from repro.optimizer.plans import JoinNode, LeafNode
from repro.serve import (
    CODE_PARSE,
    CODE_PLAN,
    CODE_ROUTE,
    CODE_SHED,
    PLAN_RESPONSE_CODES,
    RESPONSE_CODES,
    AsyncSketchServer,
    EstimateResponse,
    PlanResponse,
    RemoteSketchServer,
    SketchGateway,
    SketchHTTPServer,
    SketchServer,
    SubplanEstimate,
    plan_query,
)
from repro.serve import protocol, wire
from repro.workload import JoinEdge, Query, TableRef


def star_query():
    return Query(
        tables=(
            TableRef("title", "t"),
            TableRef("movie_keyword", "mk"),
            TableRef("movie_info", "mi"),
        ),
        joins=(
            JoinEdge("mk", "movie_id", "t", "id"),
            JoinEdge("mi", "movie_id", "t", "id"),
        ),
    )


JOIN_SQL = (
    "SELECT COUNT(*) FROM title t,movie_keyword mk "
    "WHERE mk.movie_id=t.id AND t.production_year > 2000;"
)


class _StubService:
    """Scripted SketchService: resolved futures, counted batches.

    ``estimates`` maps alias frozensets to values; ``failures`` maps
    alias frozensets to (code, error) pairs that answer as structured
    failures instead.
    """

    def __init__(self, estimates, failures=None, sketch="stub"):
        self.estimates = dict(estimates)
        self.failures = dict(failures or {})
        self.sketch = sketch
        self.batch_calls = 0
        self.batch_sizes = []

    def submit_many(self, requests, sketch=None):
        self.batch_calls += 1
        self.batch_sizes.append(len(requests))
        futures = []
        for request in requests:
            aliases = frozenset(request.aliases)
            response = EstimateResponse(
                request=request, query=request, sketch=sketch or self.sketch,
                estimate=None,
            )
            if aliases in self.failures:
                response.code, response.error = self.failures[aliases]
            else:
                response.estimate = self.estimates.get(aliases, 100.0)
            future = Future()
            future.set_result(response)
            futures.append(future)
        return futures


class _ScriptedEstimator:
    name = "scripted"

    def __init__(self, estimates):
        self.estimates = dict(estimates)

    def estimate(self, query):
        return self.estimates.get(frozenset(query.aliases), 100.0)


STAR_ESTIMATES = {
    frozenset(["t"]): 6.0,
    frozenset(["mk"]): 8.0,
    frozenset(["mi"]): 5.0,
    frozenset(["t", "mk"]): 1000.0,
    frozenset(["t", "mi"]): 2.0,
    frozenset(["t", "mk", "mi"]): 50.0,
}


# ---------------------------------------------------------------------------
# stub layer: plan_query semantics
# ---------------------------------------------------------------------------

class TestPlanQuery:
    def test_exactly_one_batch_round_trip(self):
        """The acceptance gate: one plan = ONE submit_many call, sized
        to the full connected-subset enumeration."""
        service = _StubService(STAR_ESTIMATES)
        query = star_query()
        response = plan_query(service, query)
        assert response.ok
        assert service.batch_calls == 1
        assert service.batch_sizes == [len(connected_subsets(query))]

    def test_plan_matches_dp_over_same_estimates(self):
        service = _StubService(STAR_ESTIMATES)
        response = plan_query(service, star_query())
        # (t ⨝ mi) is scripted far cheaper than (t ⨝ mk).
        inner = next(iter(response.plan.join_nodes()))
        assert inner.aliases == frozenset(["t", "mi"])
        assert response.estimated_cost == pytest.approx(52.0)
        assert response.sketch == "stub"
        assert response.estimate_ms is not None
        assert response.enumerate_ms is not None

    def test_subplans_in_enumeration_order(self):
        service = _StubService(STAR_ESTIMATES)
        response = plan_query(service, star_query())
        subsets = [frozenset(s.aliases) for s in response.subplans]
        assert subsets == connected_subsets(star_query())
        by_subset = {frozenset(s.aliases): s for s in response.subplans}
        assert by_subset[frozenset(["t"])].estimate == 6.0
        assert all(s.ok for s in response.subplans)
        assert not response.degraded

    def test_estimates_clamped_like_cardinality_cache(self):
        estimates = dict(STAR_ESTIMATES)
        estimates[frozenset(["t", "mi"])] = 0.001
        service = _StubService(estimates)
        response = plan_query(service, star_query())
        by_subset = {frozenset(s.aliases): s for s in response.subplans}
        assert by_subset[frozenset(["t", "mi"])].estimate == 1.0

    def test_parse_failure_before_any_round_trip(self):
        service = _StubService(STAR_ESTIMATES)
        response = plan_query(service, "SELECT nonsense")
        assert not response.ok and response.code == CODE_PARSE
        assert response.plan is None
        assert service.batch_calls == 0

    def test_unplannable_join_graph_before_any_round_trip(self):
        service = _StubService({})
        disconnected = Query(
            tables=(TableRef("title", "t"), TableRef("movie_info", "mi"))
        )
        response = plan_query(service, disconnected)
        assert not response.ok and response.code == CODE_PLAN
        assert service.batch_calls == 0
        too_wide = Query(
            tables=tuple(TableRef(f"t{i}", f"a{i}") for i in range(11)),
            joins=tuple(
                JoinEdge(f"a{i}", "x", f"a{i+1}", "x") for i in range(10)
            ),
        )
        response = plan_query(service, too_wide)
        assert not response.ok and response.code == CODE_PLAN
        assert service.batch_calls == 0

    def test_route_failure_fails_the_whole_plan(self):
        failures = {frozenset(["t", "mk"]): (CODE_ROUTE, "no cover")}
        service = _StubService(STAR_ESTIMATES, failures)
        response = plan_query(service, star_query())
        assert not response.ok and response.code == CODE_ROUTE
        assert response.plan is None

    def test_failed_subplan_degrades_to_independence_estimate(self):
        failures = {frozenset(["t", "mk"]): ("vocab", "literal unseen")}
        service = _StubService(STAR_ESTIMATES, failures)
        response = plan_query(service, star_query())
        assert response.ok  # the plan survives
        assert response.degraded
        by_subset = {frozenset(s.aliases): s for s in response.subplans}
        fallen = by_subset[frozenset(["t", "mk"])]
        assert fallen.degraded and not fallen.ok
        assert fallen.code == "vocab" and fallen.error == "literal unseen"
        # Independence fallback: |t| * |mk| from the singleton estimates.
        assert fallen.estimate == pytest.approx(6.0 * 8.0)
        # The degraded value feeds the DP: (t ⨝ mi) is still cheapest.
        inner = next(iter(response.plan.join_nodes()))
        assert inner.aliases == frozenset(["t", "mi"])

    def test_degraded_estimates_steer_the_dp(self):
        # Shed the cheap side: its 6*5=30 fallback beats mk's 1000, so
        # the DP still picks (t ⨝ mi) — but shed BOTH sides' singletons
        # too and the fallback floors at 1.0 each.
        failures = {
            frozenset(["t"]): ("shed", "overload"),
            frozenset(["mi"]): ("shed", "overload"),
            frozenset(["t", "mi"]): ("shed", "overload"),
        }
        service = _StubService(STAR_ESTIMATES, failures)
        response = plan_query(service, star_query())
        assert response.ok and response.degraded
        by_subset = {frozenset(s.aliases): s for s in response.subplans}
        assert by_subset[frozenset(["t"])].estimate == 1.0
        assert by_subset[frozenset(["t", "mi"])].estimate == 1.0

    def test_accepts_sql_text(self):
        service = _StubService(
            {
                frozenset(["t"]): 6.0,
                frozenset(["mk"]): 8.0,
                frozenset(["t", "mk"]): 12.0,
            }
        )
        response = plan_query(service, JOIN_SQL)
        assert response.ok
        assert response.request == JOIN_SQL
        assert isinstance(response.query, Query)
        assert response.estimated_cost == pytest.approx(12.0)


# ---------------------------------------------------------------------------
# envelope layer: JSON + binary round-trip identity
# ---------------------------------------------------------------------------

def _ok_response():
    service = _StubService(STAR_ESTIMATES)
    return plan_query(service, star_query())


def _assert_same_plan_response(a: PlanResponse, b: PlanResponse):
    assert str(b.plan) == str(a.plan)
    assert b.plan == a.plan
    assert b.estimated_cost == a.estimated_cost  # f64 is lossless
    assert b.subplans == a.subplans
    assert b.sketch == a.sketch
    assert b.error == a.error and b.code == a.code
    assert b.estimate_ms == a.estimate_ms
    assert b.enumerate_ms == a.enumerate_ms
    assert b.query == a.query


class TestPlanEnvelopes:
    def test_code_sets(self):
        assert PLAN_RESPONSE_CODES == RESPONSE_CODES + (CODE_PLAN,)
        assert CODE_PLAN not in RESPONSE_CODES  # engine set stays closed

    def test_json_request_round_trip(self):
        payload = protocol.plan_request_to_wire(star_query(), "imdb")
        sql, sketch = protocol.plan_request_from_wire(payload)
        assert sketch == "imdb"
        from repro.db.sql import parse_sql

        assert parse_sql(sql) == star_query()

    def test_json_response_round_trip(self):
        response = _ok_response()
        payload = protocol.plan_response_to_wire(response, server_ms=3.5)
        assert payload["ok"] is True
        assert payload["server_ms"] == 3.5
        back = protocol.plan_response_from_wire(payload)
        _assert_same_plan_response(response, back)

    def test_json_failure_round_trip(self):
        response = plan_query(_StubService({}), "SELECT nonsense")
        back = protocol.plan_response_from_wire(
            protocol.plan_response_to_wire(response)
        )
        assert not back.ok and back.code == CODE_PARSE
        assert back.plan is None and back.error == response.error

    def test_json_degraded_round_trip(self):
        failures = {frozenset(["t", "mk"]): ("vocab", "unseen")}
        response = plan_query(_StubService(STAR_ESTIMATES, failures), star_query())
        back = protocol.plan_response_from_wire(
            protocol.plan_response_to_wire(response)
        )
        assert back.degraded
        _assert_same_plan_response(response, back)

    def test_json_rejects_degradation_code_disagreement(self):
        response = _ok_response()
        payload = protocol.plan_response_to_wire(response)
        payload["subplans"][0]["degraded"] = True  # no code to explain it
        with pytest.raises(ProtocolError):
            protocol.plan_response_from_wire(payload)

    def test_json_rejects_plan_and_error_together(self):
        payload = protocol.plan_response_to_wire(_ok_response())
        payload["error"] = "but also an error"
        payload["code"] = "internal"
        with pytest.raises(ProtocolError):
            protocol.plan_response_from_wire(payload)

    def test_binary_request_round_trip(self):
        sql = star_query().to_sql()
        assert wire.decode_plan_request(
            wire.encode_plan_request(sql, "imdb")
        ) == (sql, "imdb")
        assert wire.decode_plan_request(wire.encode_plan_request(sql)) == (
            sql,
            None,
        )

    def test_binary_response_round_trip(self):
        response = _ok_response()
        back, server_ms = wire.decode_plan_response(
            wire.encode_plan_response(response, server_ms=7.25)
        )
        assert server_ms == 7.25
        _assert_same_plan_response(response, back)

    def test_binary_degraded_and_failure_round_trips(self):
        failures = {frozenset(["t", "mi"]): ("shed", "overload")}
        degraded = plan_query(_StubService(STAR_ESTIMATES, failures), star_query())
        back, _ = wire.decode_plan_response(wire.encode_plan_response(degraded))
        assert back.degraded
        _assert_same_plan_response(degraded, back)

        failure = plan_query(_StubService({}), "SELECT nonsense")
        back, server_ms = wire.decode_plan_response(
            wire.encode_plan_response(failure)
        )
        assert server_ms is None
        assert not back.ok and back.code == CODE_PARSE and back.plan is None

    def test_binary_plan_tree_nesting(self):
        # A deep-but-legal left-deep tree survives; the depth guard
        # rejects a frame nesting past the bound.
        plan = LeafNode("a0")
        for i in range(1, 9):
            plan = JoinNode(plan, LeafNode(f"a{i}"))
        response = PlanResponse(
            request="q", query=None, sketch=None, plan=plan,
            estimated_cost=1.0,
            subplans=(SubplanEstimate(aliases=("a0",), estimate=1.0),),
        )
        back, _ = wire.decode_plan_response(wire.encode_plan_response(response))
        assert back.plan == plan

        out = []
        wire._encode_plan_node(out, plan)
        corrupt = b"\x01" * 100 + b"".join(out)  # 100 extra join tags
        reader = wire._Reader(corrupt, "binary plan response")
        with pytest.raises(ProtocolError):
            wire._decode_plan_node(reader)

    def test_binary_rejects_unknown_code_byte(self):
        blob = bytearray(wire.encode_plan_response(_ok_response()))
        blob[1] = 0xEE  # the plan-code byte
        with pytest.raises(ProtocolError):
            wire.decode_plan_response(bytes(blob))

    def test_binary_rejects_truncation(self):
        blob = wire.encode_plan_response(_ok_response())
        with pytest.raises(ProtocolError):
            wire.decode_plan_response(blob[: len(blob) - 3])


# ---------------------------------------------------------------------------
# integration layer: every implementation, one contract
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def plan_setup(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    query = star_query()
    reference = PlanOptimizer(imdb_small, sketch).optimize(query)
    yield manager, sketch, query, reference
    sketch.clear_cache()


class TestServeParity:
    def test_sync_facade_matches_plan_optimizer(self, plan_setup):
        manager, sketch, query, reference = plan_setup
        with SketchServer(manager) as server:
            response = server.plan(query.to_sql())
        assert response.ok and not response.degraded
        assert str(response.plan) == str(reference.plan)
        assert response.estimated_cost == pytest.approx(
            reference.estimated_cost
        )
        assert response.sketch == sketch.name

    def test_async_facade_matches_plan_optimizer(self, plan_setup):
        manager, _sketch, query, reference = plan_setup
        with AsyncSketchServer(manager) as server:
            response = server.plan(query)
        assert response.ok
        assert str(response.plan) == str(reference.plan)

    def test_sync_plan_flushes_everything_pending(self, plan_setup):
        manager, _sketch, query, _reference = plan_setup
        with SketchServer(manager) as server:
            earlier = server.submit(
                "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"
            )
            response = server.plan(query)
            assert response.ok
            assert earlier.done() and earlier.result().ok

    def test_subplan_count_matches_enumeration(self, plan_setup):
        manager, _sketch, query, _reference = plan_setup
        with SketchServer(manager) as server:
            response = server.plan(query)
        assert len(response.subplans) == len(connected_subsets(query))

    def test_uncovered_join_graph_is_a_route_failure(self, plan_setup):
        manager, _sketch, _query, _reference = plan_setup
        bad = Query(
            tables=(TableRef("keyword", "k"), TableRef("title", "t")),
            joins=(JoinEdge("k", "id", "t", "id"),),
        )
        with SketchServer(manager) as server:
            response = server.plan(bad)
        assert not response.ok and response.code == CODE_ROUTE


class TestPlanOverHTTP:
    @pytest.fixture(scope="class")
    def door(self, plan_setup):
        manager, _sketch, _query, _reference = plan_setup
        with SketchHTTPServer(manager, port=0) as server:
            yield server

    def test_healthz_advertises_plan(self, door):
        with RemoteSketchServer(door.url) as client:
            health = client.healthz()
        assert health["plan"] is True

    def test_json_transport_parity_and_one_round_trip(self, door, plan_setup):
        _manager, _sketch, query, reference = plan_setup
        with RemoteSketchServer(door.url, transport="json") as client:
            calls = []
            original = client._http

            def counted(method, path, payload=None):
                calls.append((method, path))
                return original(method, path, payload)

            client._http = counted
            response = client.plan(query.to_sql())
            # Feature detection reads healthz; the plan itself is ONE POST.
            assert calls.count(("POST", "/v1/plan")) == 1
            assert [c for c in calls if c[0] == "POST"] == [
                ("POST", "/v1/plan")
            ]
        assert response.ok
        assert str(response.plan) == str(reference.plan)
        assert response.estimated_cost == pytest.approx(
            reference.estimated_cost
        )
        assert response.request == query.to_sql()

    def test_binary_transport_parity(self, door, plan_setup):
        _manager, _sketch, query, reference = plan_setup
        with RemoteSketchServer(door.url, transport="binary") as client:
            response = client.plan(query)
            assert client.active_transport == "binary"
        assert response.ok
        assert str(response.plan) == str(reference.plan)
        assert response.request == query

    def test_remote_failure_is_structured(self, door):
        with RemoteSketchServer(door.url) as client:
            response = client.plan("SELECT nonsense")
        assert not response.ok and response.code == CODE_PARSE

    def test_plan_incapable_server_raises_typed_error(self, door):
        with RemoteSketchServer(door.url) as client:
            assert client.plan_capable() is True
            # Re-detect against a scripted healthz that lacks the field
            # (what a pre-plan server answers).
            assert client.plan_capable(health={"status": "ok"}) is False
            with pytest.raises(RemoteServerError):
                client.plan(JOIN_SQL)


class TestGatewayPlan:
    def test_gateway_routes_plan_to_capable_backend(self, plan_setup):
        manager, _sketch, query, reference = plan_setup
        with SketchHTTPServer(manager, port=0) as door:
            with SketchGateway([door.url], health_interval_s=None) as gateway:
                response = gateway.plan(query.to_sql())
                assert response.ok
                assert str(response.plan) == str(reference.plan)
                # Failure paths stay structured at the gateway.
                parse = gateway.plan("SELECT nonsense")
                assert not parse.ok and parse.code == CODE_PARSE
                route = gateway.plan(query.to_sql(), sketch="missing")
                assert not route.ok and route.code == CODE_ROUTE

    def test_backend_death_mid_plan_resolves_structured(self, plan_setup):
        manager, _sketch, query, _reference = plan_setup
        door = SketchHTTPServer(manager, port=0).start()
        gateway = SketchGateway(
            [door.url], health_interval_s=None, retries=1, backoff_s=0.0
        )
        try:
            assert gateway.plan(query).ok
            door.close()  # the backend dies with a plan's worth of state
            response = gateway.plan(query)
            assert not response.ok and response.code == CODE_SHED
            assert "shed" in response.code
        finally:
            gateway.close()
            door.close()

    def test_no_plan_capable_replica_sheds(self, plan_setup):
        manager, _sketch, query, _reference = plan_setup
        with SketchHTTPServer(manager, port=0) as door:
            with SketchGateway([door.url], health_interval_s=None) as gateway:
                # Simulate a fleet of pre-plan backends: estimates still
                # flow, plans shed with a structured code.
                for backend in gateway._backends:
                    backend.plan_ok = False
                response = gateway.plan(query)
                assert not response.ok and response.code == CODE_SHED
                assert gateway.estimate(query).ok

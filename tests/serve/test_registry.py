"""SketchRegistry: versioned save/load/pin/rollback with checksums.

The acceptance contract: every blob loads back bit-faithful (estimates
identical), corruption anywhere — blob bytes, a deleted file, a
mangled manifest — surfaces as a structured RegistryError instead of a
garbage model, and ``rollback`` restores a pinned version end to end.
"""

import json

import pytest

from repro.core import DeepSketch
from repro.errors import RegistryError
from repro.serve import SketchRegistry

SQL = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000;"


@pytest.fixture()
def sketch(trained_sketch):
    """A private clone of the session sketch (save() stamps metadata)."""
    base, _ = trained_sketch
    return DeepSketch.from_bytes(base.to_bytes())


@pytest.fixture()
def registry(tmp_path):
    return SketchRegistry(tmp_path / "registry")


class TestSaveLoad:
    def test_save_assigns_monotonic_versions(self, registry, sketch):
        assert registry.save(sketch) == 1
        assert registry.save(sketch) == 2
        assert registry.save(sketch) == 3
        assert sorted(registry.versions(sketch.name)) == [1, 2, 3]

    def test_save_stamps_registry_version_before_serializing(
        self, registry, sketch
    ):
        version = registry.save(sketch)
        assert sketch.metadata["registry_version"] == version
        # The stamp travelled into the blob itself.
        loaded = registry.load(sketch.name, version)
        assert loaded.metadata["registry_version"] == version

    def test_roundtrip_preserves_estimates(self, registry, sketch):
        registry.save(sketch)
        loaded = registry.load(sketch.name)
        assert loaded.estimate(SQL) == sketch.estimate(SQL)
        assert loaded.name == sketch.name
        assert loaded.tables == sketch.tables

    def test_loaded_sketch_gets_a_fresh_snapshot_token(self, registry, sketch):
        # Re-activating an old version never resurrects a retired token:
        # every load constructs a new object with its own token, so the
        # engine's per-response token accounting stays unambiguous.
        registry.save(sketch)
        first = registry.load(sketch.name)
        second = registry.load(sketch.name)
        assert first.snapshot_token != sketch.snapshot_token
        assert first.snapshot_token != second.snapshot_token

    def test_load_defaults_to_active_version(self, registry, sketch):
        registry.save(sketch, note="one")
        registry.save(sketch, note="two")
        assert registry.load(sketch.name).metadata["registry_version"] == 2
        registry.activate(sketch.name, 1)
        assert registry.load(sketch.name).metadata["registry_version"] == 1

    def test_save_without_activate_stages_a_candidate(self, registry, sketch):
        registry.save(sketch)
        staged = registry.save(sketch, activate=False)
        assert staged == 2
        assert registry.active_version(sketch.name) == 1
        # The staged blob is loadable by explicit version.
        assert registry.load(sketch.name, 2).metadata["registry_version"] == 2

    def test_unknown_sketch_or_version_is_structured(self, registry, sketch):
        with pytest.raises(RegistryError, match="unknown sketch"):
            registry.load("ghost")
        registry.save(sketch)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.load(sketch.name, 9)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.activate(sketch.name, 9)


class TestPinRollback:
    def test_rollback_without_pin_targets_previous_version(
        self, registry, sketch
    ):
        registry.save(sketch)
        registry.save(sketch)
        assert registry.rollback(sketch.name) == 1
        assert registry.active_version(sketch.name) == 1
        assert registry.rollback_count(sketch.name) == 1

    def test_rollback_prefers_the_pinned_version(self, registry, sketch):
        for _ in range(3):
            registry.save(sketch)
        registry.pin(sketch.name, 1)
        assert registry.pinned(sketch.name) == 1
        assert registry.rollback(sketch.name) == 1
        assert registry.active_version(sketch.name) == 1

    def test_unpin_restores_previous_version_semantics(self, registry, sketch):
        for _ in range(3):
            registry.save(sketch)
        registry.pin(sketch.name, 1)
        registry.unpin(sketch.name)
        assert registry.pinned(sketch.name) is None
        assert registry.rollback(sketch.name) == 2

    def test_nothing_to_roll_back_to_is_structured(self, registry, sketch):
        registry.save(sketch)
        with pytest.raises(RegistryError, match="nothing to roll back to"):
            registry.rollback(sketch.name)

    def test_pin_rollback_restores_the_exact_blob(self, registry, sketch):
        registry.save(sketch)
        before = sketch.estimate(SQL)
        registry.save(sketch)
        registry.pin(sketch.name, 1)
        version = registry.rollback(sketch.name)
        restored = registry.load(sketch.name, version)
        assert restored.estimate(SQL) == before


class TestCorruption:
    def _blob_path(self, registry, name, version):
        return registry.root / registry.versions(name)[version]["path"]

    def test_corrupt_blob_fails_checksum_on_load(self, registry, sketch):
        registry.save(sketch)
        path = self._blob_path(registry, sketch.name, 1)
        path.write_bytes(b"garbage" + path.read_bytes()[7:])
        with pytest.raises(RegistryError, match="checksum"):
            registry.load(sketch.name, 1)

    def test_other_versions_survive_one_corrupt_blob(self, registry, sketch):
        registry.save(sketch)
        registry.save(sketch)
        self._blob_path(registry, sketch.name, 2).write_bytes(b"\x00" * 16)
        assert registry.load(sketch.name, 1).metadata["registry_version"] == 1

    def test_missing_blob_is_structured(self, registry, sketch):
        registry.save(sketch)
        self._blob_path(registry, sketch.name, 1).unlink()
        with pytest.raises(RegistryError, match="missing"):
            registry.load(sketch.name, 1)

    def test_malformed_manifest_is_structured(self, tmp_path, sketch):
        registry = SketchRegistry(tmp_path / "reg")
        registry.save(sketch)
        (tmp_path / "reg" / "manifest.json").write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable"):
            registry.load(sketch.name)

    def test_unsupported_format_version_is_structured(self, tmp_path):
        registry = SketchRegistry(tmp_path / "reg")
        manifest = tmp_path / "reg" / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["registry_version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="format version"):
            registry.list_sketches()


class TestDescribe:
    def test_describe_shape(self, registry, sketch):
        registry.save(sketch)
        registry.save(sketch)
        registry.pin(sketch.name, 1)
        registry.rollback(sketch.name)
        description = registry.describe()
        assert set(description) == {sketch.name}
        entry = description[sketch.name]
        assert entry == {
            "active": 1,
            "pinned": 1,
            "rollbacks": 1,
            "versions": [1, 2],
        }
        # The whole block is JSON-native (healthz/CLI serve it verbatim).
        assert json.loads(json.dumps(description)) == description

    def test_version_records_carry_provenance(self, registry, sketch):
        registry.save(sketch, note="initial build")
        record = registry.versions(sketch.name)[1]
        assert record["note"] == "initial build"
        assert record["size"] > 0
        assert len(record["sha256"]) == 64
        assert record["created_at"] > 0

    def test_empty_registry(self, registry):
        assert registry.list_sketches() == []
        assert registry.describe() == {}

    def test_reopening_sees_persisted_state(self, tmp_path, sketch):
        first = SketchRegistry(tmp_path / "reg")
        first.save(sketch)
        reopened = SketchRegistry(tmp_path / "reg")
        assert reopened.active_version(sketch.name) == 1
        assert reopened.load(sketch.name).estimate(SQL) == sketch.estimate(SQL)

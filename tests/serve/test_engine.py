"""EstimationEngine: config validation, admission control, deadlines,
telemetry, and shutdown races."""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.demo import SketchManager
from repro.errors import ReproError, SketchError
from repro.metrics import Counter, Gauge, LatencySummary
from repro.serve import (
    CODE_DEADLINE,
    CODE_SHED,
    AsyncServeConfig,
    AsyncSketchServer,
    ServeConfig,
    SketchServer,
)
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator

RESULT_TIMEOUT = 30.0


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=2024)
    return gen.draw_many(40)


class TestConfigValidation:
    """Satellite: every bad knob is rejected at construction."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_batch_size": -4},
            {"max_wait_ms": 0.0},
            {"max_wait_ms": -1.0},
            {"min_idle_ms": 0.0},
            {"min_idle_ms": -0.5},
            {"executor": "gpu"},
            {"executor": ""},
            {"executor_workers": 0},
            {"max_queue_depth": 0},
            {"max_queue_depth": -1},
            {"shed_policy": "random"},
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"mp_start_method": "teleport"},
            {"feature_cache_size": -1},
            {"latency_window": 0},
        ],
    )
    def test_bad_values_raise_repro_error(self, kwargs):
        with pytest.raises(ReproError):
            ServeConfig(**kwargs)
        with pytest.raises(ReproError):
            AsyncServeConfig(**kwargs)

    def test_disabling_sentinels_are_valid(self):
        config = ServeConfig(
            min_idle_ms=None, max_queue_depth=None, deadline_ms=None,
            mp_start_method=None,
        )
        assert config.max_queue_depth is None

    def test_valid_executor_names(self):
        for name in ("inline", "thread", "process"):
            assert ServeConfig(executor=name).executor == name


class TestAdmissionControlSync:
    def test_overflow_is_shed_with_structured_response(self, manager, workload):
        with SketchServer(
            manager, ServeConfig(max_queue_depth=4, use_cache=False)
        ) as server:
            for query in workload[:6]:
                server.submit(query)
            responses = server.flush()
        assert len(responses) == 6
        served = [r for r in responses if r.ok]
        shed = [r for r in responses if r.code == CODE_SHED]
        assert len(served) == 4
        assert len(shed) == 2
        for response in shed:
            assert not response.ok
            assert response.estimate is None
            assert response.shed
            assert "max_queue_depth" in response.error
        assert server.stats.n_shed == 2
        assert server.stats.n_errors == 2
        assert server.stats.n_answered == 4

    def test_reject_policy_sheds_the_newcomer(self, manager, workload):
        with SketchServer(
            manager,
            ServeConfig(max_queue_depth=2, shed_policy="reject", use_cache=False),
        ) as server:
            responses = server.serve(workload[:4])
        assert [r.ok for r in responses] == [True, True, False, False]

    def test_oldest_policy_evicts_in_favor_of_the_newcomer(self, manager, workload):
        with SketchServer(
            manager,
            ServeConfig(max_queue_depth=2, shed_policy="oldest", use_cache=False),
        ) as server:
            responses = server.serve(workload[:4])
        # The two oldest requests were evicted; the two newest served.
        assert [r.ok for r in responses] == [False, False, True, True]
        assert responses[0].code == CODE_SHED
        assert "oldest" in responses[0].error
        assert server.stats.n_shed == 2

    def test_unbounded_by_default(self, manager, workload):
        with SketchServer(manager, ServeConfig(use_cache=False)) as server:
            responses = server.serve(list(workload) * 4)
        assert all(r.ok for r in responses)
        assert server.stats.n_shed == 0


class TestAdmissionControlAsync:
    def test_burst_beyond_depth_sheds_and_drains_accepted(self, manager, workload):
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False, dedup=False, max_queue_depth=8,
        )
        server = AsyncSketchServer(manager, config).start()
        futures = [server.submit(q) for q in workload[:20]]
        # Shed futures resolve at submit time, before any flush.
        shed_now = [f for f in futures if f.done()]
        assert len(shed_now) == 12
        assert all(f.result(0).code == CODE_SHED for f in shed_now)
        assert server.pending == 8
        server.close()
        responses = [f.result(timeout=1.0) for f in futures]  # all resolved
        assert sum(1 for r in responses if r.ok) == 8
        assert sum(1 for r in responses if r.code == CODE_SHED) == 12
        assert server.stats.n_shed == 12
        # Accounting closes: every request is answered or errored.
        assert server.stats.n_requests == 20
        assert server.stats.n_answered + server.stats.n_errors == 20

    def test_queue_depth_gauge_tracks_buffered(self, manager, workload):
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False, dedup=False,
        )
        server = AsyncSketchServer(manager, config).start()
        for query in workload[:5]:
            server.submit(query)
        assert server.stats_summary()["queue_depth"] == 5
        assert server.engine.queue_depth_gauge.value == 5
        server.close()
        assert server.stats_summary()["queue_depth"] == 0
        assert server.engine.queue_depth_gauge.value == 0


class TestDeadlines:
    def test_expired_requests_resolve_with_deadline_code(self, manager, workload):
        # The flush deadline (max_wait) is far beyond the per-request
        # deadline, so by the time the engine would serve them the
        # requests have expired: they must resolve promptly (the loop
        # wakes at the deadline, not at max_wait) with code="deadline".
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False, deadline_ms=20.0,
        )
        with AsyncSketchServer(manager, config) as server:
            t0 = time.monotonic()
            futures = [server.submit(q) for q in workload[:3]]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            elapsed = time.monotonic() - t0
        assert all(not r.ok for r in responses)
        assert all(r.code == CODE_DEADLINE for r in responses)
        assert all("deadline" in r.error for r in responses)
        # Resolved near the 20ms deadline, not the 600s flush horizon.
        assert elapsed < RESULT_TIMEOUT / 2
        assert server.stats.n_deadline_missed == 3
        assert server.engine.deadline_counter.value == 3

    def test_dedup_never_merges_onto_an_expired_twin(self, manager, workload):
        # A duplicate arriving after its in-flight twin's deadline has
        # passed must become a fresh pending with its own deadline —
        # not inherit a doomed computation and a spurious deadline
        # error despite having waited 0 ms itself.  Driven through the
        # engine directly so the flush timing is caller-controlled.
        from repro.serve import EstimationEngine

        engine = EstimationEngine(
            manager, ServeConfig(use_cache=False, deadline_ms=30.0)
        )
        doomed = engine.submit(workload[0])
        time.sleep(0.06)  # let the first request expire in the buffer
        fresh = engine.submit(workload[0])
        assert fresh is not doomed
        engine.flush_pending()
        assert doomed.result(0).code == CODE_DEADLINE
        assert fresh.result(0).ok, fresh.result(0).error
        assert engine.counters.n_deduped == 0
        engine.close()

    def test_fast_requests_beat_their_deadline(self, manager, workload):
        config = AsyncServeConfig(
            max_wait_ms=2.0, deadline_ms=10_000.0, use_cache=False,
        )
        with AsyncSketchServer(manager, config) as server:
            response = server.submit(workload[0]).result(RESULT_TIMEOUT)
        assert response.ok
        assert server.stats.n_deadline_missed == 0


class TestTelemetry:
    def test_stats_summary_shape_is_shared_by_both_facades(self, manager, workload):
        with SketchServer(manager) as sync_server:
            sync_server.serve(workload[:4])
            sync_summary = sync_server.stats_summary()
        with AsyncSketchServer(manager, AsyncServeConfig(max_wait_ms=5.0)) as server:
            server.serve(workload[:4])
        async_summary = server.stats_summary()
        assert set(sync_summary) == set(async_summary)
        for summary in (sync_summary, async_summary):
            assert summary["requests"] == 4
            assert summary["answered"] == 4
            assert summary["queue_depth"] == 0
            assert summary["executor"] == "inline"
            assert set(summary["flushes"]) == {
                "total", "full", "timed", "idle", "drain", "forced",
            }
            for key in ("count", "p50", "p95", "p99", "max"):
                assert key in summary["flush_latency"]
                assert key in summary["queue_wait"]

    def test_flush_latency_summary_observes_chunks(self, manager, workload):
        with SketchServer(manager, ServeConfig(max_batch_size=4)) as server:
            server.serve(workload[:8])
        summary = server.stats_summary()["flush_latency"]
        assert summary["count"] == 2.0
        assert summary["max"] > 0.0
        assert len(server.engine.flush_latency) == 2

    def test_shed_counter_is_a_metrics_counter(self, manager, workload):
        with SketchServer(
            manager, ServeConfig(max_queue_depth=1, use_cache=False)
        ) as server:
            server.serve(workload[:3])
        assert isinstance(server.engine.shed_counter, Counter)
        assert isinstance(server.engine.queue_depth_gauge, Gauge)
        assert isinstance(server.engine.flush_latency, LatencySummary)
        assert server.engine.shed_counter.value == 2
        assert server.stats_summary()["shed"] == 2

    def test_sync_flushes_count_as_forced(self, manager, workload):
        with SketchServer(manager, ServeConfig(max_batch_size=64)) as server:
            server.serve(workload[:3])
        assert server.stats.n_flushes_forced >= 1
        assert server.stats_summary()["flushes"]["forced"] >= 1


class TestShutdownRaces:
    """Satellite: a submit racing close() is served or shed — never hung."""

    def test_concurrent_submits_during_close(self, manager, workload):
        config = AsyncServeConfig(
            max_batch_size=8, max_wait_ms=5.0, use_cache=False,
        )
        server = AsyncSketchServer(manager, config).start()
        n_threads = 8
        results: list = [None] * n_threads
        barrier = threading.Barrier(n_threads + 1)

        def hammer(i):
            futures = []
            barrier.wait()
            try:
                for k in range(40):
                    futures.append(server.submit(workload[(i + k) % len(workload)]))
            except SketchError:
                pass  # closed mid-stream: an acceptable structured outcome
            results[i] = futures

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        time.sleep(0.002)  # let submissions overlap the close
        server.close()
        for t in threads:
            t.join(RESULT_TIMEOUT)
            assert not t.is_alive()
        accepted = [f for futures in results for f in futures]
        assert accepted, "the race produced no accepted futures at all"
        for future in accepted:
            # Every future handed out resolves promptly: a served answer
            # or a structured error — never a hang, never a lost request.
            response = future.result(timeout=RESULT_TIMEOUT)
            assert response.ok or response.error is not None
        stats = server.stats
        assert stats.n_requests == stats.n_answered + stats.n_errors

    def test_submit_after_close_raises_not_hangs(self, manager, workload):
        server = AsyncSketchServer(manager).start()
        server.close()
        with pytest.raises(SketchError):
            server.submit(workload[0])
        with pytest.raises(SketchError):
            server.submit_many(workload[:2])

    def test_close_with_bounded_queue_drains_accepted_only(self, manager, workload):
        config = AsyncServeConfig(
            max_batch_size=64, max_wait_ms=600_000.0, min_idle_ms=None,
            use_cache=False, dedup=False, max_queue_depth=3,
        )
        server = AsyncSketchServer(manager, config).start()
        futures = [server.submit(q) for q in workload[:10]]
        server.close()
        responses = [f.result(timeout=1.0) for f in futures]
        assert sum(1 for r in responses if r.ok) == 3
        assert sum(1 for r in responses if r.code == CODE_SHED) == 7
        assert server.pending == 0

    def test_flush_loop_survives_internal_errors(self, manager, workload):
        # An unexpected exception inside the loop body must not kill
        # the flush thread and strand buffered futures — the loop backs
        # off and keeps serving.
        config = AsyncServeConfig(max_wait_ms=5.0)
        server = AsyncSketchServer(manager, config).start()
        engine = server.engine
        original = engine._next_deadline_locked
        fired = []

        def flaky(now):
            if not fired:
                fired.append(True)
                raise RuntimeError("injected loop fault")
            return original(now)

        engine._next_deadline_locked = flaky
        try:
            response = server.submit(workload[0]).result(RESULT_TIMEOUT)
        finally:
            engine._next_deadline_locked = original
            server.close()
        assert fired, "the injected fault never fired"
        assert response.ok

    def test_sync_close_is_idempotent_and_reusable_as_context(self, manager, workload):
        server = SketchServer(manager)
        server.submit(workload[0])
        server.close()
        server.close()
        assert server.engine.closed


class TestEngineViews:
    def test_facades_share_one_engine_implementation(self, manager):
        sync_server = SketchServer(manager)
        async_server = AsyncSketchServer(manager)
        assert type(sync_server.engine) is type(async_server.engine)
        assert sync_server.stats is sync_server.engine.counters
        assert async_server.stats is async_server.engine.counters
        assert sync_server.manager is manager
        assert async_server.manager is manager

    def test_sync_submit_returns_future_resolved_by_flush(self, manager, workload):
        # The SketchService surface: submit returns a future on every
        # implementation; on the sync facade it resolves at flush time.
        server = SketchServer(manager)
        first = server.submit(workload[0])
        second = server.submit(workload[1])
        assert isinstance(first, Future) and isinstance(second, Future)
        assert not first.done() and not second.done()
        assert server.pending == 2
        responses = server.flush()
        assert server.pending == 0
        assert first.done() and second.done()
        assert [first.result(), second.result()] == responses
        server.close()

    def test_resolved_futures_are_futures(self, manager):
        with AsyncSketchServer(manager) as server:
            future = server.submit("SELECT nonsense;")
            assert isinstance(future, Future)
            assert future.done()

    def _build_late_sketch(self, imdb_small):
        from repro.core import SketchConfig, build_sketch

        sketch, _ = build_sketch(
            imdb_small,
            spec_for_imdb(),
            name="late",
            config=SketchConfig(
                n_training_queries=300, epochs=1, sample_size=50,
                hidden_units=16, seed=3,
            ),
        )
        return sketch

    def test_route_at_flush_on_sync_facade(self, imdb_small, workload):
        # Regression (PR 4 routed at submit): a request submitted
        # before any covering sketch exists must still succeed if a
        # covering sketch is registered before the flush — the route
        # decision is deferred, not failed.
        empty = SketchManager(imdb_small)
        server = SketchServer(empty)
        early_future = server.submit(workload[0])
        assert not early_future.done()  # deferred, not failed
        empty.register_sketch(self._build_late_sketch(imdb_small))
        server.submit(workload[0])
        early, late = server.flush()
        server.close()
        assert early.ok and early.sketch == "late"
        assert early.estimate is not None and early.estimate > 0
        assert late.ok and late.sketch == "late"

    def test_route_at_flush_on_async_facade(self, imdb_small, workload):
        # Same contract through the background-loop facade: a long
        # max_wait keeps the flush from firing before the registration
        # lands; leaving the context drains, which is the flush.
        empty = SketchManager(imdb_small)
        with AsyncSketchServer(
            empty, AsyncServeConfig(max_wait_ms=60_000.0, min_idle_ms=None)
        ) as server:
            future = server.submit(workload[0])
            assert not future.done()
            empty.register_sketch(self._build_late_sketch(imdb_small))
        response = future.result(RESULT_TIMEOUT)
        assert response.ok and response.sketch == "late"
        assert response.estimate is not None and response.estimate > 0

    def test_unroutable_at_flush_is_still_a_route_error(self, imdb_small, workload):
        # With no covering sketch by flush time, the deferred request
        # resolves with the same structured route error as before.
        empty = SketchManager(imdb_small)
        server = SketchServer(empty)
        future = server.submit(workload[0])
        (response,) = server.flush()
        server.close()
        assert future.done()
        assert not response.ok and response.code == "route"
        assert "no registered sketch covers" in response.error

    def test_unknown_pin_reroutes_at_flush(self, imdb_small, workload):
        # A pinned request whose sketch name is unknown at submit time
        # defers too — and succeeds when the pin appears before flush.
        empty = SketchManager(imdb_small)
        server = SketchServer(empty)
        future = server.submit(workload[0], sketch="late")
        assert not future.done()
        empty.register_sketch(self._build_late_sketch(imdb_small))
        (response,) = server.flush()
        server.close()
        assert response.ok and response.sketch == "late"

"""Error-hierarchy contract: one catchable root, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.SchemaError,
            errors.ParseError,
            errors.QueryError,
            errors.FeaturizationError,
            errors.TrainingError,
            errors.SketchError,
            errors.SerializationError,
            errors.EstimationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, errors.ReproError)
        assert issubclass(exc_type, Exception)

    def test_parse_error_position_rendering(self):
        err = errors.ParseError("bad token", position=17)
        assert "offset 17" in str(err)
        assert err.position == 17

    def test_parse_error_without_position(self):
        err = errors.ParseError("empty query")
        assert err.position is None
        assert "offset" not in str(err)

    def test_single_catch_point(self):
        """Library errors are catchable with one except clause."""
        caught = []
        for raise_fn in (
            lambda: (_ for _ in ()).throw(errors.SchemaError("x")),
            lambda: (_ for _ in ()).throw(errors.SketchError("y")),
        ):
            try:
                next(raise_fn())
            except errors.ReproError as exc:
                caught.append(type(exc).__name__)
        assert caught == ["SchemaError", "SketchError"]


class TestEstimateSqlHelper:
    def test_estimate_sql_parses_and_delegates(self, trained_sketch):
        from repro.core import estimate_sql

        sketch, _ = trained_sketch
        direct = sketch.estimate(
            "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        )
        helper = estimate_sql(
            sketch, "SELECT COUNT(*) FROM title t WHERE t.production_year>2000;"
        )
        assert helper == pytest.approx(direct)

    def test_estimate_sql_rejects_bad_sql(self, trained_sketch):
        from repro.core import estimate_sql
        from repro.errors import ParseError

        sketch, _ = trained_sketch
        with pytest.raises(ParseError):
            estimate_sql(sketch, "DELETE FROM title")

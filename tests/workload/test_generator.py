"""Training-query generator tests (paper step 2)."""

import numpy as np
import pytest

from repro.db import execute_count
from repro.errors import QueryError
from repro.workload import TrainingQueryGenerator, WorkloadSpec, spec_for_imdb, spec_for_tpch


@pytest.fixture(scope="module")
def generator(request):
    imdb = request.getfixturevalue("imdb_small")
    return TrainingQueryGenerator(imdb, spec_for_imdb(), seed=1)


@pytest.fixture(scope="module")
def queries(generator):
    return generator.draw_many(300)


class TestStructure:
    def test_count(self, queries):
        assert len(queries) == 300

    def test_join_count_within_spec(self, queries):
        assert all(q.num_joins <= 2 for q in queries)
        # the full range 0..2 should be exercised
        assert {q.num_joins for q in queries} == {0, 1, 2}

    def test_queries_are_connected(self, queries):
        from repro.db.join_graph import build_join_graph
        import networkx as nx

        for query in queries:
            graph = build_join_graph(query)
            assert nx.number_connected_components(graph) == 1

    def test_joins_follow_foreign_keys(self, imdb_small, queries):
        for query in queries:
            for join in query.joins:
                t_left = query.alias_table(join.left_alias)
                t_right = query.alias_table(join.right_alias)
                fks = imdb_small.foreign_keys_between(t_left, t_right)
                assert fks, f"join {join} not backed by a foreign key"

    def test_predicates_use_spec_columns(self, queries):
        spec = spec_for_imdb()
        for query in queries:
            for pred in query.predicates:
                table = query.alias_table(pred.alias)
                assert pred.column in spec.columns_of(table)

    def test_operator_vocabulary(self, queries):
        ops = {p.op for q in queries for p in q.predicates}
        assert ops <= {"=", "<", ">"}
        assert "=" in ops and "<" in ops and ">" in ops

    def test_equality_literals_exist_in_data(self, imdb_small, queries):
        for query in queries[:80]:
            for pred in query.predicates:
                if pred.op != "=":
                    continue
                table = imdb_small.table(query.alias_table(pred.alias))
                mask = table.column(pred.column).evaluate("=", pred.literal)
                assert mask.any(), f"literal {pred} matches no row"

    def test_queries_execute(self, imdb_small, queries):
        for query in queries[:60]:
            assert execute_count(imdb_small, query) >= 0


class TestDeterminismAndErrors:
    def test_same_seed_same_queries(self, imdb_small):
        a = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=9).draw_many(20)
        b = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=9).draw_many(20)
        assert a == b

    def test_different_seeds_differ(self, imdb_small):
        a = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=1).draw_many(20)
        b = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=2).draw_many(20)
        assert a != b

    def test_unknown_table_in_spec(self, imdb_small):
        spec = WorkloadSpec(tables=("ghost",))
        with pytest.raises(QueryError):
            TrainingQueryGenerator(imdb_small, spec)

    def test_negative_draw_rejected(self, generator):
        with pytest.raises(QueryError):
            generator.draw_many(-1)

    def test_zero_max_joins_gives_single_tables(self, imdb_small):
        spec = spec_for_imdb(max_joins=0)
        gen = TrainingQueryGenerator(imdb_small, spec, seed=0)
        assert all(q.num_joins == 0 for q in gen.draw_many(30))


class TestTpchSpec:
    def test_tpch_generator_runs(self, tpch_small):
        gen = TrainingQueryGenerator(tpch_small, spec_for_tpch(), seed=0)
        queries = gen.draw_many(50)
        for query in queries[:20]:
            assert execute_count(tpch_small, query) >= 0

"""TrafficShaper: schedule shape + open-loop replay audits.

The replay tests drive real services — the async engine under
admission limits and a gateway over live HTTP backends — and assert
the serving tier's degradation contract: zero hung futures, failures
only as structured codes, queue bounds held.
"""

import numpy as np
import pytest

from repro.demo import SketchManager
from repro.errors import ReproError
from repro.serve import AsyncServeConfig, AsyncSketchServer
from repro.serve.engine import RESPONSE_CODES
from repro.workload import (
    SuiteConfig,
    TrafficConfig,
    TrafficShaper,
    generate_template_suite,
    spec_for_imdb,
)

#: time_scale=0 submits the whole schedule as fast as possible — an
#: instantaneous burst, the worst case for admission control.
FAST = dict(time_scale=0.0, timeout_s=60.0)


@pytest.fixture(scope="module")
def suite(request):
    # Over the JOB-light spec so the trained test sketch covers every
    # instance (keyword/company tables would route-error instead).
    imdb = request.getfixturevalue("imdb_small")
    config = SuiteConfig(n_templates=6, queries_per_template=8, max_joins=2)
    return generate_template_suite(
        imdb, spec_for_imdb(max_joins=2), config, seed=8
    )


@pytest.fixture()
def manager(imdb_small, trained_sketch):
    sketch, _ = trained_sketch
    sketch.clear_cache()
    manager = SketchManager(imdb_small)
    manager.register_sketch(sketch)
    yield manager
    sketch.clear_cache()


class TestSchedule:
    def test_deterministic_given_seed(self, suite):
        config = TrafficConfig(n_requests=64)
        a = TrafficShaper(suite, config, seed=5).schedule()
        b = TrafficShaper(suite, config, seed=5).schedule()
        assert a == b

    def test_different_seeds_differ(self, suite):
        config = TrafficConfig(n_requests=64)
        a = TrafficShaper(suite, config, seed=5).schedule()
        b = TrafficShaper(suite, config, seed=6).schedule()
        assert a != b

    def test_arrival_times_monotonic(self, suite):
        schedule = TrafficShaper(suite, TrafficConfig(n_requests=64), seed=1).schedule()
        times = [r.at_s for r in schedule]
        assert times == sorted(times)
        assert times[0] > 0

    def test_off_windows_spliced_in(self, suite):
        # With bursts ON the span must stretch by the OFF windows: the
        # same arrivals without bursts end sooner.
        on = TrafficConfig(
            n_requests=256, rate_qps=2000.0, burst_on_s=0.01, burst_off_s=0.1
        )
        off = TrafficConfig(
            n_requests=256, rate_qps=2000.0, burst_on_s=0.01, burst_off_s=0.0
        )
        with_bursts = TrafficShaper(suite, on, seed=2).schedule()
        without = TrafficShaper(suite, off, seed=2).schedule()
        assert with_bursts[-1].at_s > without[-1].at_s * 2

    def test_zipf_mix_is_skewed(self, suite):
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=400, zipf_s=1.5), seed=3
        )
        schedule = shaper.schedule()
        counts = {}
        for request in schedule:
            counts[request.template] = counts.get(request.template, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] >= 3 * ranked[-1]

    def test_zipf_zero_is_roughly_uniform(self, suite):
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=600, zipf_s=0.0), seed=3
        )
        counts = {}
        for request in shaper.schedule():
            counts[request.template] = counts.get(request.template, 0) + 1
        assert len(counts) == len(suite)
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] < 2 * ranked[-1]

    def test_instances_come_from_named_template(self, suite):
        shaper = TrafficShaper(suite, TrafficConfig(n_requests=128), seed=4)
        for request in shaper.schedule():
            assert request.query in suite.template(request.template).queries

    def test_weights_cover_all_templates(self, suite):
        weights = TrafficShaper(suite, seed=0).template_weights()
        assert set(weights) == set(suite.names)
        assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_empty_suite_rejected(self, suite):
        from repro.workload import TemplateSuite

        with pytest.raises(ReproError, match="empty suite"):
            TrafficShaper(TemplateSuite(templates=()))

    def test_config_validation(self):
        with pytest.raises(ReproError):
            TrafficConfig(n_requests=0)
        with pytest.raises(ReproError):
            TrafficConfig(rate_qps=0)
        with pytest.raises(ReproError):
            TrafficConfig(time_scale=-1)


class TestReplayAsyncServer:
    def test_unbounded_replay_serves_everything(self, manager, suite):
        config = AsyncServeConfig(max_batch_size=16, max_wait_ms=2.0)
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=80, **FAST), seed=11
        )
        with AsyncSketchServer(manager, config) as server:
            result = shaper.replay(server)
        assert result.ok
        assert result.n_ok == result.n_requests == 80
        assert result.n_failed == 0
        assert sum(result.per_template.values()) == 80

    def test_admission_limited_burst_sheds_structured(self, manager, suite):
        # An instantaneous burst of 200 against a queue bounded at 8,
        # with the flush deadline beyond the horizon: the overflow MUST
        # shed at submit time, every future resolves, the engine's
        # intake high-water mark never exceeds the bound.
        config = AsyncServeConfig(
            max_batch_size=8,
            max_wait_ms=600_000.0,
            min_idle_ms=None,
            use_cache=False,
            dedup=False,
            max_queue_depth=8,
        )
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=200, **FAST), seed=12
        )
        server = AsyncSketchServer(manager, config).start()
        try:
            result = shaper.replay(server)
        finally:
            depth_peak = int(server.stats_summary()["queue_depth_peak"])
            server.close()
        assert result.zero_hung
        assert result.structured_only
        assert result.n_ok + result.n_failed == 200
        assert result.code_counts.get("shed", 0) > 0
        assert set(result.code_counts) <= set(RESPONSE_CODES)
        assert depth_peak <= 8

    def test_deadline_failures_are_structured(self, manager, suite):
        # A deadline far below the flush wait expires requests in the
        # queue; the failure must surface as code="deadline", never as
        # an exception or an unresolved future.
        config = AsyncServeConfig(
            max_batch_size=4,
            max_wait_ms=150.0,
            min_idle_ms=None,
            use_cache=False,
            dedup=False,
            deadline_ms=0.000001,
        )
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=40, **FAST), seed=13
        )
        with AsyncSketchServer(manager, config) as server:
            result = shaper.replay(server)
        assert result.zero_hung
        assert result.structured_only
        assert result.code_counts.get("deadline", 0) > 0


class TestReplayGateway:
    def test_gateway_replay_resolves_everything(self, trained_sketch, suite):
        from repro.serve import ServeConfig, SketchGateway, SketchHTTPServer

        sketch, _ = trained_sketch
        sketch.clear_cache()
        servers = []
        for _ in range(2):
            backend_manager = SketchManager(db=None)
            backend_manager.register_sketch(sketch)
            servers.append(
                SketchHTTPServer(
                    backend_manager,
                    ServeConfig(
                        max_batch_size=8, use_cache=False, dedup=False,
                        max_queue_depth=16,
                    ),
                    port=0,
                ).start()
            )
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=60, **FAST), seed=14
        )
        try:
            with SketchGateway(
                [server.url for server in servers], health_interval_s=None
            ) as gateway:
                result = shaper.replay(gateway)
                stats = gateway.stats_summary()
                peaks = [
                    int(s["queue_depth_peak"])
                    for s in stats["backends"].values()
                    if s is not None
                ]
        finally:
            for server in servers:
                server.close()
        assert result.ok
        assert result.n_ok > 0
        assert all(peak <= 16 for peak in peaks)

    def test_bursty_stress_benchmark_audit(self, manager, trained_sketch, suite):
        from repro.serve.bench import run_bursty_stress_benchmark

        sketch, _ = trained_sketch
        stress = run_bursty_stress_benchmark(
            manager,
            sketch.name,
            suite,
            traffic=TrafficConfig(
                n_requests=60, rate_qps=3000.0, burst_on_s=0.01,
                burst_off_s=0.02,
            ),
            n_backends=2,
            max_queue_depth=16,
            max_batch_size=8,
            seed=15,
        )
        assert stress.ok
        assert stress.replay.zero_hung
        assert stress.replay.structured_only
        assert stress.bounded
        assert len(stress.queue_depth_peaks) == 2
        audit = stress.audit()
        assert audit["stress_ok"] and audit["bounded"]

    def test_dead_fleet_fails_structured_not_hung(self, trained_sketch, suite):
        # Every backend is gone: the audit must see structured route
        # failures, not exceptions and not hung futures.
        from repro.serve import ServeConfig, SketchGateway, SketchHTTPServer

        sketch, _ = trained_sketch
        backend_manager = SketchManager(db=None)
        backend_manager.register_sketch(sketch)
        server = SketchHTTPServer(
            backend_manager, ServeConfig(max_batch_size=8), port=0
        ).start()
        shaper = TrafficShaper(
            suite, TrafficConfig(n_requests=20, **FAST), seed=16
        )
        with SketchGateway(
            [server.url], health_interval_s=None, retries=0
        ) as gateway:
            server.close()  # the fleet dies before the stream starts
            result = shaper.replay(gateway)
        assert result.zero_hung
        assert result.structured_only
        assert result.n_ok == 0
        assert result.n_failed == 20


class TestReplayResult:
    def test_accounting_gates(self):
        from repro.workload import ReplayResult

        result = ReplayResult(n_requests=10, n_ok=7)
        result.code_counts["shed"] = 3
        assert result.ok
        result.n_unresolved = 1
        assert not result.zero_hung and not result.ok
        result.n_unresolved = 0
        result.n_unstructured = 1
        assert not result.structured_only and not result.ok

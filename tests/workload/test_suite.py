"""Templated suite generator: structure, families, determinism, JSON."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.db import execute_count, parse_sql, to_sql
from repro.errors import QueryError
from repro.workload import (
    PredicateSlot,
    SuiteConfig,
    TemplateQueries,
    TemplateSuite,
    generate_template_suite,
    spec_for_imdb_templates,
)
from repro.workload.suite import NUMERIC_FAMILIES, RANGE_OPS

SEED = 20240807


@pytest.fixture(scope="module")
def spec():
    return spec_for_imdb_templates(max_joins=3)


@pytest.fixture(scope="module")
def suite(request, spec):
    imdb = request.getfixturevalue("imdb_small")
    config = SuiteConfig(n_templates=10, queries_per_template=20, max_joins=3)
    return generate_template_suite(imdb, spec, config, seed=SEED)


class TestStructure:
    def test_counts(self, suite):
        assert len(suite) == 10
        assert all(1 <= len(t) <= 20 for t in suite)

    def test_names_are_unique_and_descriptive(self, suite):
        assert len(set(suite.names)) == 10
        for entry in suite:
            assert entry.name.startswith("q")
            assert f"{entry.template.n_joins}j" in entry.name

    def test_join_depth_within_config(self, suite):
        depths = {t.template.n_joins for t in suite}
        assert max(depths) <= 3
        assert len(depths) > 1  # several depths exercised

    def test_instances_share_template_shape(self, suite):
        for entry in suite:
            for query in entry.queries:
                # Query canonicalizes table/join order on construction.
                assert sorted(query.tables) == sorted(entry.template.tables)
                assert set(query.joins) == set(entry.template.joins)
                shape = [(p.alias, p.column, p.op) for p in query.predicates]
                expected = [
                    (s.alias, s.column, op)
                    for s in entry.template.slots
                    for op in s.ops
                ]
                assert sorted(shape) == sorted(expected)

    def test_instances_are_distinct_within_template(self, suite):
        for entry in suite:
            assert len(set(entry.queries)) == len(entry.queries)

    def test_all_families_appear(self, suite):
        families = {s.family for t in suite for s in t.template.slots}
        assert families == set(NUMERIC_FAMILIES)

    def test_range_ops_drawn_from_vocabulary(self, suite):
        for entry in suite:
            for slot in entry.template.slots:
                if slot.family == "range":
                    assert slot.ops[0] in RANGE_OPS

    def test_self_joins_appear_with_fresh_aliases(self, request, spec):
        imdb = request.getfixturevalue("imdb_small")
        config = SuiteConfig(
            n_templates=12, queries_per_template=4, max_joins=3,
            self_join_fraction=0.9,
        )
        drawn = generate_template_suite(imdb, spec, config, seed=3)
        selfish = [t for t in drawn if t.template.has_self_join]
        assert selfish, "no self-join templates drawn at fraction 0.9"
        for entry in selfish:
            aliases = [ref.alias for ref in entry.template.tables]
            assert len(aliases) == len(set(aliases))
            assert "s" in entry.name.split("_")[1]

    def test_in_slots_have_fixed_arity(self, suite):
        checked = 0
        for entry in suite:
            for slot in entry.template.slots:
                if slot.family != "in":
                    continue
                checked += 1
                for query in entry.queries:
                    for pred in query.predicates:
                        if pred.alias == slot.alias and pred.column == slot.column:
                            assert isinstance(pred.literal, tuple)
                            assert len(pred.literal) <= slot.in_arity
        assert checked > 0

    def test_between_slots_are_ordered(self, suite):
        for entry in suite:
            for slot in entry.template.slots:
                if slot.family != "between":
                    continue
                for query in entry.queries:
                    bounds = {
                        p.op: p.literal
                        for p in query.predicates
                        if p.alias == slot.alias and p.column == slot.column
                    }
                    assert bounds[">="] <= bounds["<="]


class TestSqlRoundTrip:
    def test_every_instance_round_trips_through_sql(self, suite):
        # All families (eq, range, between, IN; numeric and string) must
        # survive print -> parse with semantic equality.
        for query in suite.queries():
            assert parse_sql(to_sql(query)) == query


class TestDeterminism:
    def test_same_seed_same_digest(self, request, spec, suite):
        imdb = request.getfixturevalue("imdb_small")
        config = SuiteConfig(n_templates=10, queries_per_template=20, max_joins=3)
        again = generate_template_suite(imdb, spec, config, seed=SEED)
        assert again.digest() == suite.digest()
        assert again.queries() == suite.queries()

    def test_different_seed_different_digest(self, request, spec, suite):
        imdb = request.getfixturevalue("imdb_small")
        config = SuiteConfig(n_templates=10, queries_per_template=20, max_joins=3)
        other = generate_template_suite(imdb, spec, config, seed=SEED + 1)
        assert other.digest() != suite.digest()

    def test_cross_process_digest_regression(self):
        # Satellite 1: the same seed must yield a byte-identical suite
        # in a fresh interpreter (no hidden global-RNG or hash-seed
        # dependence).  The subprocess regenerates a small suite and
        # prints its digest; it must equal the in-process digest.
        program = textwrap.dedent(
            """
            from repro.datasets import ImdbConfig, generate_imdb
            from repro.workload import (
                SuiteConfig, generate_template_suite, spec_for_imdb_templates,
            )

            db = generate_imdb(ImdbConfig(scale=0.04, seed=5))
            suite = generate_template_suite(
                db,
                spec_for_imdb_templates(max_joins=2),
                SuiteConfig(n_templates=4, queries_per_template=6, max_joins=2),
                seed=99,
            )
            print(suite.digest())
            """
        )
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        env["PYTHONHASHSEED"] = "random"
        digests = set()
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", program],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert out.returncode == 0, out.stderr
            digests.add(out.stdout.strip())
        assert len(digests) == 1

        from repro.datasets import ImdbConfig, generate_imdb

        db = generate_imdb(ImdbConfig(scale=0.04, seed=5))
        local = generate_template_suite(
            db,
            spec_for_imdb_templates(max_joins=2),
            SuiteConfig(n_templates=4, queries_per_template=6, max_joins=2),
            seed=99,
        )
        assert digests == {local.digest()}


class TestLabeling:
    def test_label_attaches_exact_cardinalities(self, request, suite):
        imdb = request.getfixturevalue("imdb_small")
        labeled = suite.label(imdb)
        assert labeled.labeled
        for entry in labeled:
            for query, card in zip(entry.queries, entry.cardinalities):
                assert card == execute_count(imdb, query) > 0

    def test_label_drops_underpopulated_templates(self, request, suite):
        imdb = request.getfixturevalue("imdb_small")
        generous = suite.label(imdb, min_queries_per_template=1)
        strict = suite.label(imdb, min_queries_per_template=10**9)
        assert len(strict) == 0
        assert len(generous) >= len(strict)

    def test_labeled_pairs_requires_labels(self, suite):
        with pytest.raises(QueryError, match="not labeled"):
            suite.labeled_pairs()


class TestSerialization:
    def test_json_round_trip_preserves_digest(self, request, suite):
        imdb = request.getfixturevalue("imdb_small")
        labeled = suite.label(imdb)
        for original in (suite, labeled):
            payload = json.loads(json.dumps(original.to_json()))
            restored = TemplateSuite.from_json(payload)
            assert restored.digest() == original.digest()
            assert restored.queries() == original.queries()

    def test_malformed_payload_rejected(self):
        with pytest.raises(QueryError, match="malformed"):
            TemplateSuite.from_json({"version": 1, "templates": [{}]})

    def test_unsupported_version_rejected(self, suite):
        payload = suite.to_json()
        payload["version"] = 999
        with pytest.raises(QueryError, match="version"):
            TemplateSuite.from_json(payload)


class TestValidation:
    def test_duplicate_template_names_rejected(self, suite):
        entry = suite.templates[0]
        with pytest.raises(QueryError, match="duplicate"):
            TemplateSuite(templates=(entry, entry))

    def test_subset_unknown_name_rejected(self, suite):
        with pytest.raises(QueryError, match="unknown"):
            suite.subset(["nope"])

    def test_slot_validation(self):
        with pytest.raises(QueryError, match="family"):
            PredicateSlot("t", "title", "id", "like", ("like",))
        with pytest.raises(QueryError, match="arity"):
            PredicateSlot("t", "title", "id", "in", ("in",), in_arity=0)

    def test_mismatched_cardinalities_rejected(self, suite):
        entry = suite.templates[0]
        with pytest.raises(QueryError, match="cardinalities"):
            TemplateQueries(
                template=entry.template,
                queries=entry.queries,
                cardinalities=(1,) * (len(entry.queries) + 1),
            )

    def test_impossible_template_count_raises(self, request):
        imdb = request.getfixturevalue("imdb_small")
        from repro.workload import WorkloadSpec

        # One table, one column: very few distinct structures exist.
        spec = WorkloadSpec(
            tables=("title",),
            aliases={"title": "t"},
            predicate_columns={"title": ("production_year",)},
        )
        with pytest.raises(QueryError, match="distinct templates"):
            generate_template_suite(
                imdb, spec,
                SuiteConfig(n_templates=50, queries_per_template=2, max_joins=0),
                seed=1,
            )

"""JOB-light-style workload shape tests (the Table 1 evaluation set)."""

import pytest

from repro.db import execute_count
from repro.workload import JobLightConfig, generate_job_light


@pytest.fixture(scope="module")
def workload(request):
    imdb = request.getfixturevalue("imdb_small")
    return generate_job_light(imdb, JobLightConfig(n_queries=40, seed=4))


class TestShape:
    def test_query_count(self, workload):
        assert len(workload) == 40

    def test_all_queries_star_on_title(self, workload):
        for query in workload:
            assert "t" in query.aliases
            for join in query.joins:
                assert "t" in join.aliases
                assert join.side_for("t") == "id"
                other_alias, other_column = join.other("t")
                assert other_column == "movie_id"

    def test_join_range_one_to_four(self, workload):
        counts = {q.num_joins for q in workload}
        assert counts <= {1, 2, 3, 4}
        assert 2 in counts  # the dominant class must appear

    def test_no_string_predicates(self, workload):
        for query in workload:
            for pred in query.predicates:
                assert not isinstance(pred.literal, str)

    def test_only_range_predicate_is_production_year(self, workload):
        for query in workload:
            for pred in query.predicates:
                if pred.op in ("<", ">"):
                    assert pred.column == "production_year"

    def test_every_query_has_a_predicate(self, workload):
        assert all(query.predicates for query in workload)

    def test_queries_unique(self, workload):
        assert len(set(workload)) == len(workload)

    def test_nonzero_cardinalities(self, request, workload):
        imdb = request.getfixturevalue("imdb_small")
        for query in workload:
            assert execute_count(imdb, query) > 0

    def test_deterministic(self, request):
        imdb = request.getfixturevalue("imdb_small")
        a = generate_job_light(imdb, JobLightConfig(n_queries=10, seed=7))
        b = generate_job_light(imdb, JobLightConfig(n_queries=10, seed=7))
        assert a == b


class TestDistributionShift:
    def test_contains_queries_beyond_training_joins(self, workload):
        """The Table 1 point: evaluation has 3-4 joins, training has 0-2."""
        assert any(q.num_joins > 2 for q in workload)

"""Query template tests (placeholder instantiation, paper Figure 2)."""

import pytest

from repro.errors import QueryError
from repro.workload import JoinEdge, Predicate, Query, QueryTemplate, TableRef


@pytest.fixture
def base_query():
    return Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=(Predicate("mk", "keyword_id", "=", 1),),
    )


@pytest.fixture
def template(base_query):
    return QueryTemplate(base=base_query, alias="t", column="production_year")


class TestConstruction:
    def test_unknown_alias_rejected(self, base_query):
        with pytest.raises(QueryError):
            QueryTemplate(base=base_query, alias="zz", column="production_year")

    def test_already_constrained_column_rejected(self, base_query):
        with pytest.raises(QueryError):
            QueryTemplate(base=base_query, alias="mk", column="keyword_id")


class TestDistinct(object):
    def test_one_instance_per_distinct_sample_value(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="distinct")
        sample = imdb_samples.for_table("title")
        distinct = set(sample.column("production_year").non_null_values().tolist())
        assert len(instances) == len(distinct)
        labels = {inst.label for inst in instances}
        assert labels == {int(v) for v in distinct}

    def test_instances_extend_base(self, template, imdb_samples):
        inst = template.instantiate(imdb_samples, mode="distinct")[0]
        assert Predicate("t", "production_year", "=", inst.label) in inst.query.predicates
        assert Predicate("mk", "keyword_id", "=", 1) in inst.query.predicates
        assert inst.query.joins == template.base.joins

    def test_limit(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="distinct", limit=5)
        assert len(instances) == 5


class TestWidth:
    def test_year_grouping(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="width", width=10)
        assert instances
        # Each instance is a [lo, hi) range pair on production_year.
        for inst in instances:
            year_preds = [
                p for p in inst.query.predicates if p.column == "production_year"
            ]
            assert len(year_preds) == 2
            ops = sorted(p.op for p in year_preds)
            assert ops in (["<", ">="], ["<=", ">="])

    def test_ranges_cover_sample_span(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="width", width=5)
        sample_years = imdb_samples.for_table("title").column("production_year")
        lo, hi = sample_years.min_max()
        first_lo = min(
            p.literal
            for inst in instances
            for p in inst.query.predicates
            if p.op == ">=" and p.column == "production_year"
        )
        assert first_lo <= lo

    def test_invalid_width(self, template, imdb_samples):
        with pytest.raises(QueryError):
            template.instantiate(imdb_samples, mode="width", width=0)

    def test_width_requires_width(self, template, imdb_samples):
        with pytest.raises(QueryError):
            template.instantiate(imdb_samples, mode="width")


class TestBuckets:
    def test_bucket_count(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="buckets", n_buckets=7)
        assert len(instances) == 7

    def test_labels_monotonic(self, template, imdb_samples):
        instances = template.instantiate(imdb_samples, mode="buckets", n_buckets=5)
        labels = [inst.label for inst in instances]
        assert labels == sorted(labels)

    def test_invalid_bucket_count(self, template, imdb_samples):
        with pytest.raises(QueryError):
            template.instantiate(imdb_samples, mode="buckets", n_buckets=0)


class TestModeDispatch:
    def test_unknown_mode(self, template, imdb_samples):
        with pytest.raises(QueryError):
            template.instantiate(imdb_samples, mode="holographic")

    def test_string_column_distinct_works(self, imdb_small):
        from repro.sampling import materialize_samples

        samples = materialize_samples(imdb_small, ("keyword",), 50, seed=0)
        base = Query(tables=(TableRef("keyword", "k"),))
        template = QueryTemplate(base=base, alias="k", column="keyword")
        instances = template.instantiate(samples, mode="distinct", limit=10)
        assert all(isinstance(inst.label, str) for inst in instances)

    def test_string_column_width_rejected(self, imdb_small):
        from repro.sampling import materialize_samples

        samples = materialize_samples(imdb_small, ("keyword",), 50, seed=0)
        base = Query(tables=(TableRef("keyword", "k"),))
        template = QueryTemplate(base=base, alias="k", column="keyword")
        with pytest.raises(QueryError):
            template.instantiate(samples, mode="width", width=1)

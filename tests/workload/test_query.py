"""Query model tests: canonicalization, validation, set semantics."""

import pytest

from repro.errors import QueryError
from repro.workload import (
    JoinEdge,
    Predicate,
    Query,
    TableRef,
    make_join,
    single_table_query,
)


class TestJoinEdge:
    def test_canonical_order(self):
        a = JoinEdge("mk", "movie_id", "t", "id")
        b = JoinEdge("t", "id", "mk", "movie_id")
        assert a == b
        assert hash(a) == hash(b)

    def test_make_join_equivalent(self):
        assert make_join("t", "id", "mk", "movie_id") == JoinEdge(
            "mk", "movie_id", "t", "id"
        )

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinEdge("t", "a", "t", "b")

    def test_side_for_and_other(self):
        j = JoinEdge("mk", "movie_id", "t", "id")
        assert j.side_for("mk") == "movie_id"
        assert j.side_for("t") == "id"
        assert j.other("mk") == ("t", "id")
        with pytest.raises(QueryError):
            j.side_for("zz")


class TestPredicate:
    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Predicate("t", "x", "!!", 5)

    def test_bool_literal_rejected(self):
        with pytest.raises(QueryError):
            Predicate("t", "x", "=", True)

    def test_str_rendering(self):
        assert str(Predicate("t", "x", ">", 5)) == "t.x>5"
        assert str(Predicate("k", "name", "=", "a'b")) == "k.name='a''b'"


class TestQuery:
    def test_set_semantics_plan_independence(self):
        """(A ⋈ B) ⋈ C and A ⋈ (B ⋈ C) are the same query (paper §2)."""
        tables1 = (TableRef("a", "a"), TableRef("b", "b"), TableRef("c", "c"))
        tables2 = (TableRef("c", "c"), TableRef("a", "a"), TableRef("b", "b"))
        joins1 = (JoinEdge("a", "x", "b", "x"), JoinEdge("b", "y", "c", "y"))
        joins2 = (JoinEdge("c", "y", "b", "y"), JoinEdge("b", "x", "a", "x"))
        assert Query(tables1, joins1) == Query(tables2, joins2)
        assert hash(Query(tables1, joins1)) == hash(Query(tables2, joins2))

    def test_predicate_order_irrelevant(self):
        t = (TableRef("t", "t"),)
        p1 = (Predicate("t", "a", "=", 1), Predicate("t", "b", ">", 2))
        p2 = (Predicate("t", "b", ">", 2), Predicate("t", "a", "=", 1))
        assert Query(t, predicates=p1) == Query(t, predicates=p2)

    def test_no_tables_rejected(self):
        with pytest.raises(QueryError):
            Query(tables=())

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(tables=(TableRef("a", "x"), TableRef("b", "x")))

    def test_join_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                tables=(TableRef("a", "a"),),
                joins=(JoinEdge("a", "x", "zz", "y"),),
            )

    def test_predicate_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                tables=(TableRef("a", "a"),),
                predicates=(Predicate("zz", "x", "=", 1),),
            )

    def test_accessors(self):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
            predicates=(Predicate("t", "year", ">", 2000),),
        )
        assert query.alias_table("mk") == "movie_keyword"
        assert query.num_joins == 1
        assert query.predicates_for("t") == [Predicate("t", "year", ">", 2000)]
        assert query.predicates_for("mk") == []
        assert len(query.joins_for("t")) == 1
        with pytest.raises(QueryError):
            query.alias_table("zz")

    def test_single_table_query_helper(self):
        query = single_table_query("title", predicates=[Predicate("title", "id", "=", 1)])
        assert query.aliases == ["title"]


class TestValidateAgainstDb:
    def test_valid(self, tiny_db):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
            predicates=(Predicate("t", "year", "=", 2005),),
        )
        query.validate(tiny_db)  # must not raise

    def test_unknown_table(self, tiny_db):
        with pytest.raises(QueryError):
            Query(tables=(TableRef("ghost", "g"),)).validate(tiny_db)

    def test_unknown_join_column(self, tiny_db):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "ghost", "t", "id"),),
        )
        with pytest.raises(QueryError):
            query.validate(tiny_db)

    def test_literal_type_mismatch(self, tiny_db):
        query = Query(
            tables=(TableRef("title", "t"),),
            predicates=(Predicate("t", "year", "=", "twothousand"),),
        )
        with pytest.raises(QueryError):
            query.validate(tiny_db)

    def test_to_sql_smoke(self, tiny_db):
        query = Query(tables=(TableRef("title", "t"),))
        assert "COUNT(*)" in query.to_sql()
        assert str(query) == query.to_sql()

"""Template-level split semantics: no leaks, seed-stable, clear errors."""

import pytest

from repro.errors import QueryError
from repro.workload import (
    SuiteConfig,
    generate_template_suite,
    spec_for_imdb_templates,
    split_by_template,
    split_within_template,
    template_folds,
)


@pytest.fixture(scope="module")
def suite(request):
    imdb = request.getfixturevalue("imdb_small")
    config = SuiteConfig(n_templates=8, queries_per_template=10, max_joins=2)
    return generate_template_suite(
        imdb, spec_for_imdb_templates(max_joins=2), config, seed=42
    )


@pytest.fixture(scope="module")
def labeled(request, suite):
    imdb = request.getfixturevalue("imdb_small")
    return suite.label(imdb, min_queries_per_template=2)


class TestSplitByTemplate:
    def test_no_template_leaks_across_boundary(self, suite):
        split = split_by_template(suite, 0.25, seed=0)
        assert not set(split.train_names) & set(split.test_names)
        assert sorted(split.train_names + split.test_names) == sorted(suite.names)

    def test_no_query_leaks_across_boundary(self, suite):
        split = split_by_template(suite, 0.25, seed=0)
        train_queries = set(split.train.queries())
        test_queries = set(split.test.queries())
        assert not train_queries & test_queries

    def test_both_sides_nonempty(self, suite):
        for fraction in (0.1, 0.25, 0.5, 0.9):
            split = split_by_template(suite, fraction, seed=1)
            assert len(split.train) >= 1
            assert len(split.test) >= 1

    def test_seed_stable(self, suite):
        a = split_by_template(suite, 0.25, seed=7)
        b = split_by_template(suite, 0.25, seed=7)
        assert a.train_names == b.train_names
        assert a.test_names == b.test_names

    def test_different_seeds_differ(self, suite):
        partitions = {
            tuple(split_by_template(suite, 0.5, seed=s).test_names)
            for s in range(8)
        }
        assert len(partitions) > 1

    def test_fraction_bounds_rejected(self, suite):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(QueryError, match="test_fraction"):
                split_by_template(suite, bad, seed=0)

    def test_single_template_rejected(self, suite):
        lone = suite.subset(suite.names[:1])
        with pytest.raises(QueryError, match="at least 2 templates"):
            split_by_template(lone, 0.5, seed=0)

    def test_labels_travel_with_queries(self, labeled):
        split = split_by_template(labeled, 0.25, seed=0)
        assert split.train.labeled
        assert split.test.labeled


class TestTemplateFolds:
    def test_folds_partition_templates(self, suite):
        folds = template_folds(suite, 4, seed=0)
        assert len(folds) == 4
        held_out = [name for fold in folds for name in fold.test_names]
        assert sorted(held_out) == sorted(suite.names)

    def test_each_fold_leak_free(self, suite):
        for fold in template_folds(suite, 3, seed=2):
            assert not set(fold.train_names) & set(fold.test_names)

    def test_too_many_folds_is_clear_error(self, suite):
        with pytest.raises(QueryError, match="reduce n_folds or generate"):
            template_folds(suite, len(suite) + 1, seed=0)

    def test_fewer_than_two_folds_rejected(self, suite):
        with pytest.raises(QueryError, match="at least 2 folds"):
            template_folds(suite, 1, seed=0)


class TestSplitWithinTemplate:
    def test_every_template_on_both_sides(self, suite):
        split = split_within_template(suite, 0.3, seed=0)
        assert split.train_names == suite.names
        assert split.test_names == suite.names

    def test_no_instance_leaks(self, suite):
        split = split_within_template(suite, 0.3, seed=0)
        for name in suite.names:
            train_queries = set(split.train.template(name).queries)
            test_queries = set(split.test.template(name).queries)
            assert not train_queries & test_queries
            assert len(train_queries) + len(test_queries) == len(
                suite.template(name)
            )

    def test_seed_stable(self, suite):
        a = split_within_template(suite, 0.3, seed=9)
        b = split_within_template(suite, 0.3, seed=9)
        assert a.train.queries() == b.train.queries()

    def test_labels_stay_aligned(self, request, labeled):
        imdb = request.getfixturevalue("imdb_small")
        from repro.db import execute_count

        split = split_within_template(labeled, 0.3, seed=0)
        for side in (split.train, split.test):
            for entry in side:
                for query, card in zip(entry.queries, entry.cardinalities):
                    assert card == execute_count(imdb, query)

    def test_singleton_template_is_clear_error(self, suite):
        from repro.workload import TemplateQueries, TemplateSuite

        entry = suite.templates[0]
        lone = TemplateSuite(
            templates=(
                TemplateQueries(
                    template=entry.template, queries=entry.queries[:1]
                ),
            )
        )
        with pytest.raises(QueryError, match="at least 2 queries"):
            split_within_template(lone, 0.5, seed=0)

"""Baseline estimator tests: truth, sampling, HyPer-style, PostgreSQL-style."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    HyperEstimator,
    PostgresEstimator,
    SamplingEstimator,
    TruthEstimator,
)
from repro.db import execute_count
from repro.metrics import qerror
from repro.sampling import materialize_samples
from repro.workload import (
    JoinEdge,
    Predicate,
    Query,
    TableRef,
    TrainingQueryGenerator,
    spec_for_imdb,
)


def single(pred=None):
    predicates = (pred,) if pred else ()
    return Query(tables=(TableRef("title", "t"),), predicates=predicates)


def star(predicates=()):
    return Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=tuple(predicates),
    )


class TestTruth:
    def test_is_exact(self, imdb_small):
        oracle = TruthEstimator(imdb_small)
        query = star([Predicate("t", "production_year", ">", 2000)])
        assert oracle.estimate(query) == execute_count(imdb_small, query)

    def test_caches(self, imdb_small):
        oracle = TruthEstimator(imdb_small)
        query = single()
        oracle.estimate(query)
        assert query in oracle._cache


class TestSamplingEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, request):
        imdb = request.getfixturevalue("imdb_small")
        return SamplingEstimator(imdb, sample_size=200, seed=0)

    def test_unfiltered_table_is_exact(self, estimator, imdb_small):
        assert estimator.estimate(single()) == imdb_small.table("title").n_rows

    def test_unfiltered_join_is_exact(self, estimator, imdb_small):
        # No predicates: the scaled base is the exact join size itself.
        assert estimator.estimate(star()) == execute_count(imdb_small, star())

    def test_selective_predicate_reasonable(self, estimator, imdb_small):
        query = single(Predicate("t", "production_year", ">", 2000))
        truth = execute_count(imdb_small, query)
        assert qerror(estimator.estimate(query), truth) < 3.0

    def test_zero_tuple_fallback_is_half_tuple(self, estimator, imdb_small):
        query = single(Predicate("t", "production_year", ">", 90_000))
        n_rows = imdb_small.table("title").n_rows
        sample_rows = estimator.samples.for_table("title").n_rows
        assert estimator.estimate(query) == pytest.approx(
            max(n_rows * 0.5 / sample_rows, 1.0)
        )

    def test_join_size_cache_shared_across_predicates(self, imdb_small):
        fresh = SamplingEstimator(imdb_small, sample_size=100, seed=1)
        q1 = star([Predicate("t", "production_year", ">", 2000)])
        q2 = star([Predicate("t", "production_year", ">", 1990)])
        fresh.estimate(q1)
        fresh.estimate(q2)
        assert len(fresh._join_size_cache) == 1

    def test_estimate_at_least_one(self, estimator):
        query = star([Predicate("t", "production_year", ">", 90_000)])
        assert estimator.estimate(query) >= 1.0


class TestHyperEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, request):
        imdb = request.getfixturevalue("imdb_small")
        return HyperEstimator(imdb, sample_size=200, seed=0)

    def test_single_table_matches_sampling(self, estimator, imdb_small):
        query = single(Predicate("t", "kind_id", "=", 1))
        truth = execute_count(imdb_small, query)
        assert qerror(estimator.estimate(query), truth) < 3.0

    def test_fk_join_estimate_close_for_unfiltered(self, estimator, imdb_small):
        # |T ⋈ MK| = |MK| for a FK join; independence with nd(title.id)
        # = |title| gives exactly |MK| here — the estimator should be
        # within a small factor.
        truth = execute_count(imdb_small, star())
        assert qerror(estimator.estimate(star()), truth) < 2.0

    def test_zero_tuple_fallback(self, estimator):
        query = single(Predicate("t", "production_year", ">", 90_000))
        assert estimator.estimate(query) < 20  # educated guess, not huge

    def test_correlated_join_misestimates(self, estimator, imdb_small):
        """The paper's motivation: independence across joins fails on
        correlated data.  Find a correlated keyword query and verify the
        HyPer-style estimate is off by a visible factor."""
        mk = imdb_small.table("movie_keyword")
        kw = mk.column("keyword_id").values
        popular = int(np.bincount(kw).argmax())
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
            predicates=(
                Predicate("mk", "keyword_id", "=", popular),
                Predicate("t", "production_year", "<", 1950),
            ),
        )
        truth = max(execute_count(imdb_small, query), 1)
        est = estimator.estimate(query)
        assert qerror(est, truth) > 1.0  # sanity; exact factor checked in benches


class TestPostgresEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, request):
        imdb = request.getfixturevalue("imdb_small")
        return PostgresEstimator(imdb)

    def test_unfiltered_table_exact(self, estimator, imdb_small):
        assert estimator.estimate(single()) == imdb_small.table("title").n_rows

    def test_mcv_equality_is_accurate(self, estimator, imdb_small):
        kinds = imdb_small.table("title").column("kind_id").values
        top_kind = int(np.bincount(kinds).argmax())
        query = single(Predicate("t", "kind_id", "=", top_kind))
        truth = execute_count(imdb_small, query)
        assert qerror(estimator.estimate(query), truth) < 1.5

    def test_range_predicate_reasonable(self, estimator, imdb_small):
        query = single(Predicate("t", "production_year", ">", 2000))
        truth = execute_count(imdb_small, query)
        assert qerror(estimator.estimate(query), truth) < 2.5

    def test_out_of_range_literal_gives_minimum(self, estimator):
        query = single(Predicate("t", "production_year", "=", 10**6))
        assert estimator.estimate(query) == 1.0

    def test_fk_join_close_for_unfiltered(self, estimator, imdb_small):
        truth = execute_count(imdb_small, star())
        assert qerror(estimator.estimate(star()), truth) < 2.0

    def test_string_equality(self, estimator, imdb_small):
        query = Query(
            tables=(TableRef("keyword", "k"),),
            predicates=(Predicate("k", "keyword", "=", "artificial-intelligence"),),
        )
        assert estimator.estimate(query) >= 1.0

    def test_absent_string_literal(self, estimator):
        query = Query(
            tables=(TableRef("keyword", "k"),),
            predicates=(Predicate("k", "keyword", "=", "zzz-not-a-keyword"),),
        )
        assert estimator.estimate(query) == 1.0

    def test_not_equal_complementary(self, estimator, imdb_small):
        kinds = imdb_small.table("title").column("kind_id").values
        top_kind = int(np.bincount(kinds).argmax())
        eq = estimator.estimate(single(Predicate("t", "kind_id", "=", top_kind)))
        ne = estimator.estimate(single(Predicate("t", "kind_id", "<>", top_kind)))
        n_rows = imdb_small.table("title").n_rows
        assert eq + ne == pytest.approx(n_rows, rel=0.05)


class TestAllEstimatorsProperties:
    """Shared contract: estimates are finite and >= 1 for any valid query."""

    @pytest.fixture(scope="class")
    def estimators(self, request):
        imdb = request.getfixturevalue("imdb_small")
        shared = materialize_samples(imdb, imdb.table_names(), 150, seed=9)
        return [
            TruthEstimator(imdb),
            SamplingEstimator(imdb, samples=shared),
            HyperEstimator(imdb, samples=shared),
            PostgresEstimator(imdb),
        ]

    def test_contract_on_generated_queries(self, request, estimators):
        imdb = request.getfixturevalue("imdb_small")
        generator = TrainingQueryGenerator(imdb, spec_for_imdb(), seed=77)
        for query in generator.draw_many(40):
            for estimator in estimators:
                value = estimator.estimate(query)
                assert np.isfinite(value)
                if isinstance(estimator, TruthEstimator):
                    assert value >= 0.0  # the oracle may correctly say zero
                else:
                    assert value >= 1.0, f"{estimator.name} returned {value}"

"""Qualifying-bitmap tests (the MSCN runtime-sampling input)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db import table_filter_mask
from repro.sampling import (
    alias_bitmap,
    is_zero_tuple,
    materialize_samples,
    qualifying_fractions,
    query_bitmaps,
)
from repro.workload import JoinEdge, Predicate, Query, TableRef


def star_query(predicates=()):
    return Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=tuple(predicates),
    )


class TestBitmaps:
    def test_unfiltered_alias_all_ones(self, imdb_samples):
        bitmaps = query_bitmaps(imdb_samples, star_query())
        assert bitmaps["t"].all()
        assert bitmaps["mk"].all()

    def test_bitmap_length_is_sample_size(self, imdb_samples):
        bitmaps = query_bitmaps(imdb_samples, star_query())
        assert bitmaps["t"].shape == (imdb_samples.sample_size,)

    def test_padding_for_small_tables(self, imdb_small):
        samples = materialize_samples(imdb_small, ("kind_type",), 100, seed=0)
        query = Query(tables=(TableRef("kind_type", "kt"),))
        bitmap = alias_bitmap(samples, query, "kt")
        assert bitmap.shape == (100,)
        assert bitmap[:7].all()
        assert not bitmap[7:].any()

    def test_bitmap_matches_direct_evaluation(self, imdb_samples):
        pred = Predicate("t", "production_year", ">", 2000)
        query = star_query([pred])
        bitmap = alias_bitmap(imdb_samples, query, "t")
        sample = imdb_samples.for_table("title")
        expected = table_filter_mask(sample, [pred])
        assert np.array_equal(bitmap[: len(expected)], expected)

    def test_conjunction_is_and_of_bits(self, imdb_samples):
        p1 = Predicate("t", "production_year", ">", 1990)
        p2 = Predicate("t", "kind_id", "=", 1)
        both = alias_bitmap(imdb_samples, star_query([p1, p2]), "t")
        only1 = alias_bitmap(imdb_samples, star_query([p1]), "t")
        only2 = alias_bitmap(imdb_samples, star_query([p2]), "t")
        assert np.array_equal(both, only1 & only2)


class TestFractionsAndZeroTuple:
    def test_fraction_of_unfiltered_is_one(self, imdb_samples):
        fractions = qualifying_fractions(imdb_samples, star_query())
        assert fractions == {"t": 1.0, "mk": 1.0}

    def test_fraction_matches_bitmap_mean(self, imdb_samples):
        pred = Predicate("t", "production_year", ">", 2005)
        query = star_query([pred])
        fractions = qualifying_fractions(imdb_samples, query)
        sample = imdb_samples.for_table("title")
        expected = table_filter_mask(sample, [pred]).mean()
        assert fractions["t"] == pytest.approx(expected)

    def test_zero_tuple_detection(self, imdb_samples):
        impossible = Predicate("t", "production_year", ">", 99_999)
        assert is_zero_tuple(imdb_samples, star_query([impossible]))
        assert not is_zero_tuple(imdb_samples, star_query())

    def test_unpredicated_alias_ignored_for_zero_tuple(self, imdb_samples):
        # mk has no predicate; even if t qualifies fully the query is not
        # 0-tuple.
        query = star_query([Predicate("t", "production_year", ">", 1800)])
        assert not is_zero_tuple(imdb_samples, query)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1880, max_value=2019), st.sampled_from(["<", ">", "="]))
def test_fraction_always_in_unit_interval(year, op):
    from repro.datasets import ImdbConfig, generate_imdb

    global _BITMAP_DB, _BITMAP_SAMPLES
    try:
        samples = _BITMAP_SAMPLES
    except NameError:
        db = generate_imdb(ImdbConfig(scale=0.05, seed=3))
        samples = materialize_samples(db, ("title",), 60, seed=0)
        globals()["_BITMAP_DB"] = db
        globals()["_BITMAP_SAMPLES"] = samples
    query = Query(
        tables=(TableRef("title", "t"),),
        predicates=(Predicate("t", "production_year", op, year),),
    )
    fraction = qualifying_fractions(samples, query)["t"]
    assert 0.0 <= fraction <= 1.0
    bitmap = alias_bitmap(samples, query, "t")
    assert bitmap.sum() == pytest.approx(fraction * samples.for_table("title").n_rows)

"""batch_bitmaps: parity with the per-query path, predicate memoization."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.sampling import PredicateMaskMemo, batch_bitmaps, query_bitmaps
from repro.workload import spec_for_imdb
from repro.workload.generator import TrainingQueryGenerator


@pytest.fixture(scope="module")
def workload(imdb_small):
    gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=31)
    return gen.draw_many(120)


class TestParity:
    def test_identical_to_query_bitmaps(self, imdb_samples, workload):
        batched = batch_bitmaps(imdb_samples, workload)
        assert len(batched) == len(workload)
        for query, got in zip(workload, batched):
            expected = query_bitmaps(imdb_samples, query)
            assert set(got) == set(expected)
            for alias in expected:
                assert got[alias].dtype == np.bool_
                assert np.array_equal(got[alias], expected[alias]), (
                    f"bitmap mismatch for {alias} in {query}"
                )

    def test_duplicate_queries_share_arrays(self, imdb_samples, workload):
        query = workload[0]
        batched = batch_bitmaps(imdb_samples, [query, query])
        for alias in query.aliases:
            assert batched[0][alias] is batched[1][alias]

    def test_empty_batch(self, imdb_samples):
        assert batch_bitmaps(imdb_samples, []) == []


class TestMemoization:
    def test_each_distinct_predicate_evaluated_once(self, imdb_samples, workload):
        memo = PredicateMaskMemo(imdb_samples)
        batch_bitmaps(imdb_samples, workload, memo=memo)
        distinct = {
            (q.alias_table(p.alias), p.column, p.op, p.literal)
            for q in workload
            for p in q.predicates
        }
        assert memo.evaluations == len(distinct)

    def test_memo_reused_across_batches(self, imdb_samples, workload):
        memo = PredicateMaskMemo(imdb_samples)
        batch_bitmaps(imdb_samples, workload, memo=memo)
        first = memo.evaluations
        batch_bitmaps(imdb_samples, workload, memo=memo)
        assert memo.evaluations == first  # nothing new to evaluate

    def test_unfiltered_alias_bitmap_is_all_ones_over_sample(self, imdb_samples):
        from repro.workload.query import Query, TableRef

        query = Query(tables=(TableRef("title", "t"),))
        (bitmaps,) = batch_bitmaps(imdb_samples, [query])
        expected = query_bitmaps(imdb_samples, query)["t"]
        assert np.array_equal(bitmaps["t"], expected)
        n_sampled = imdb_samples.for_table("title").n_rows
        assert bitmaps["t"][:n_sampled].all()


class TestRandomizedParity:
    def test_random_small_batches(self, imdb_samples, imdb_small):
        rng = make_rng(77)
        gen = TrainingQueryGenerator(imdb_small, spec_for_imdb(), seed=78)
        pool = gen.draw_many(60)
        for _ in range(10):
            size = int(rng.integers(1, 20))
            picks = [pool[int(i)] for i in rng.integers(0, len(pool), size)]
            batched = batch_bitmaps(imdb_samples, picks)
            for query, got in zip(picks, batched):
                expected = query_bitmaps(imdb_samples, query)
                for alias in expected:
                    assert np.array_equal(got[alias], expected[alias])

"""Materialized-sample tests including serialization round-trip."""

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sampling import (
    MaterializedSamples,
    materialize_samples,
    samples_from_payload,
    samples_to_payload,
)


class TestMaterialize:
    def test_sample_sizes(self, imdb_small):
        samples = materialize_samples(
            imdb_small, ("title", "movie_keyword"), 50, seed=0
        )
        assert samples.for_table("title").n_rows == 50
        assert samples.sample_size == 50

    def test_small_table_taken_fully(self, imdb_small):
        samples = materialize_samples(imdb_small, ("kind_type",), 100, seed=0)
        assert samples.for_table("kind_type").n_rows == 7

    def test_unknown_table_raises_on_access(self, imdb_small):
        samples = materialize_samples(imdb_small, ("title",), 10, seed=0)
        with pytest.raises(SketchError):
            samples.for_table("movie_keyword")

    def test_invalid_sample_size(self, imdb_small):
        with pytest.raises(SketchError):
            materialize_samples(imdb_small, ("title",), 0)

    def test_deterministic(self, imdb_small):
        a = materialize_samples(imdb_small, ("title",), 20, seed=5)
        b = materialize_samples(imdb_small, ("title",), 20, seed=5)
        assert np.array_equal(
            a.for_table("title").column("id").values,
            b.for_table("title").column("id").values,
        )

    def test_rows_are_from_the_table(self, imdb_small):
        samples = materialize_samples(imdb_small, ("title",), 30, seed=1)
        ids = samples.for_table("title").column("id").values
        assert len(np.unique(ids)) == 30  # without replacement
        all_ids = set(imdb_small.table("title").column("id").values.tolist())
        assert set(ids.tolist()) <= all_ids

    def test_total_rows(self, imdb_small):
        samples = materialize_samples(imdb_small, ("title", "kind_type"), 10, seed=0)
        assert samples.total_rows() == 10 + 7

    def test_table_names(self, imdb_small):
        samples = materialize_samples(imdb_small, ("title", "keyword"), 10, seed=0)
        assert samples.table_names == ["keyword", "title"]


class TestPayloadRoundtrip:
    def test_roundtrip_preserves_values(self, imdb_small):
        samples = materialize_samples(
            imdb_small, ("title", "keyword"), 25, seed=2
        )
        arrays, manifest = samples_to_payload(samples)
        restored = samples_from_payload(arrays, manifest)
        assert restored.sample_size == 25
        for name in ("title", "keyword"):
            orig = samples.for_table(name)
            back = restored.for_table(name)
            assert back.n_rows == orig.n_rows
            for col_name, col in orig.columns.items():
                assert np.array_equal(back.column(col_name).values, col.values)
                assert np.array_equal(back.column(col_name).valid, col.valid)

    def test_string_dictionary_preserved(self, imdb_small):
        samples = materialize_samples(imdb_small, ("keyword",), 15, seed=2)
        arrays, manifest = samples_to_payload(samples)
        restored = samples_from_payload(arrays, manifest)
        orig = samples.for_table("keyword").column("keyword")
        back = restored.for_table("keyword").column("keyword")
        for i in range(15):
            assert orig.decode(i) == back.decode(i)

    def test_malformed_manifest_rejected(self):
        with pytest.raises(SketchError):
            samples_from_payload({}, {"nope": 1})

    def test_missing_array_rejected(self, imdb_small):
        samples = materialize_samples(imdb_small, ("title",), 5, seed=0)
        arrays, manifest = samples_to_payload(samples)
        arrays.pop(next(iter(arrays)))
        with pytest.raises(SketchError):
            samples_from_payload(arrays, manifest)

"""Importable test helpers (oracles and small builders).

Kept outside ``conftest.py`` so test modules can import them directly:
``conftest`` is pytest plugin machinery, not an importable module, and
``from ..conftest import ...`` breaks when the test tree is collected
without package ``__init__`` files.  Import as::

    from tests.helpers import brute_force_count

which resolves through the repository root on ``sys.path`` (configured
via ``pythonpath`` in ``pyproject.toml``).
"""

from __future__ import annotations

import itertools

from repro.db import Database


def brute_force_count(db: Database, query) -> int:
    """Oracle: enumerate the cross product row by row (tiny tables only)."""
    aliases = query.aliases
    tables = {a: db.table(query.alias_table(a)) for a in aliases}
    total_rows = 1
    for t in tables.values():
        total_rows *= max(t.n_rows, 1)
    assert total_rows <= 2_000_000, "brute force helper used on too-large input"

    count = 0
    ranges = [range(tables[a].n_rows) for a in aliases]
    for combo in itertools.product(*ranges):
        rows = dict(zip(aliases, combo))
        ok = True
        for join in query.joins:
            left_t = tables[join.left_alias]
            right_t = tables[join.right_alias]
            lcol = left_t.column(join.left_column)
            rcol = right_t.column(join.right_column)
            li, ri = rows[join.left_alias], rows[join.right_alias]
            if not (lcol.valid[li] and rcol.valid[ri]):
                ok = False
                break
            if lcol.values[li] != rcol.values[ri]:
                ok = False
                break
        if not ok:
            continue
        for pred in query.predicates:
            table = tables[pred.alias]
            mask = table.column(pred.column).evaluate(pred.op, pred.literal)
            if not mask[rows[pred.alias]]:
                ok = False
                break
        if ok:
            count += 1
    return count

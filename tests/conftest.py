"""Shared fixtures: small databases, samples, and a trained sketch.

Session-scoped so the expensive artifacts (dataset generation, sketch
training) are built once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ImdbConfig, TpchConfig, generate_imdb, generate_tpch
from repro.db import Column, ColumnSchema, Database, DType, ForeignKey, Table, TableSchema
from repro.sampling import materialize_samples
from repro.workload import spec_for_imdb
from repro.core import SketchConfig, build_sketch


@pytest.fixture(scope="session")
def imdb_small() -> Database:
    """A ~2k-title synthetic IMDb (fast enough for exact execution)."""
    return generate_imdb(ImdbConfig(scale=0.1, seed=7))


@pytest.fixture(scope="session")
def tpch_small() -> Database:
    return generate_tpch(TpchConfig(scale=0.2, seed=11))


@pytest.fixture()
def tiny_db() -> Database:
    """Handcrafted 3-table star with known exact counts.

    title(id, year): 6 rows; movie_keyword(movie_id, keyword_id): 8 rows;
    movie_info(movie_id, info_type_id): 5 rows.  Small enough for
    brute-force verification.
    """
    db = Database("tiny")
    title = Table(
        TableSchema(
            "title",
            [
                ColumnSchema("id", DType.INT64),
                ColumnSchema("year", DType.INT64, nullable=True),
            ],
            primary_key="id",
        ),
        {
            "id": Column.from_ints("id", [1, 2, 3, 4, 5, 6]),
            "year": Column.from_ints(
                "year",
                [2000, 2005, 2005, 2010, 0, 2015],
                valid=np.array([True, True, True, True, False, True]),
            ),
        },
    )
    mk = Table(
        TableSchema(
            "movie_keyword",
            [
                ColumnSchema("id", DType.INT64),
                ColumnSchema("movie_id", DType.INT64),
                ColumnSchema("keyword_id", DType.INT64),
            ],
            primary_key="id",
        ),
        {
            "id": Column.from_ints("id", range(8)),
            "movie_id": Column.from_ints("movie_id", [1, 1, 2, 3, 3, 4, 6, 6]),
            "keyword_id": Column.from_ints("keyword_id", [7, 8, 7, 9, 7, 8, 9, 9]),
        },
    )
    mi = Table(
        TableSchema(
            "movie_info",
            [
                ColumnSchema("id", DType.INT64),
                ColumnSchema("movie_id", DType.INT64),
                ColumnSchema("info_type_id", DType.INT64),
            ],
            primary_key="id",
        ),
        {
            "id": Column.from_ints("id", range(5)),
            "movie_id": Column.from_ints("movie_id", [2, 3, 3, 4, 5]),
            "info_type_id": Column.from_ints("info_type_id", [1, 1, 2, 2, 1]),
        },
    )
    db.add_table(title)
    db.add_table(mk)
    db.add_table(mi)
    db.add_foreign_key(ForeignKey("movie_keyword", "movie_id", "title", "id"))
    db.add_foreign_key(ForeignKey("movie_info", "movie_id", "title", "id"))
    return db


@pytest.fixture(scope="session")
def imdb_samples(imdb_small):
    return materialize_samples(
        imdb_small,
        ("title", "movie_keyword", "movie_info", "movie_info_idx",
         "movie_companies", "cast_info"),
        sample_size=100,
        seed=3,
    )


@pytest.fixture(scope="session")
def trained_sketch(imdb_small):
    """A small but genuinely trained sketch over the small IMDb."""
    sketch, report = build_sketch(
        imdb_small,
        spec_for_imdb(),
        name="test-sketch",
        config=SketchConfig(
            n_training_queries=800,
            epochs=6,
            sample_size=100,
            hidden_units=32,
            seed=5,
        ),
    )
    return sketch, report

"""Tests for the seeded RNG plumbing."""

import numpy as np

from repro.rng import make_rng, spawn


class TestMakeRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).integers(0, 1_000_000, 10)
        b = make_rng(None).integers(0, 1_000_000, 10)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        assert np.array_equal(
            make_rng(42).integers(0, 1_000_000, 10),
            make_rng(42).integers(0, 1_000_000, 10),
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            make_rng(1).integers(0, 1_000_000, 10),
            make_rng(2).integers(0, 1_000_000, 10),
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(make_rng(0), 3)
        draws = [c.integers(0, 1_000_000, 5).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_is_deterministic(self):
        a = spawn(make_rng(0), 2)
        b = spawn(make_rng(0), 2)
        assert np.array_equal(a[0].integers(0, 10**6, 5), b[0].integers(0, 10**6, 5))
        assert np.array_equal(a[1].integers(0, 10**6, 5), b[1].integers(0, 10**6, 5))

    def test_spawn_count(self):
        assert len(spawn(make_rng(0), 7)) == 7

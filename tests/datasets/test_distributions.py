"""Tests for the sampling helpers used by the generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.distributions import (
    conditional_counts,
    era_biased_choice,
    mixture_years,
    repeat_parent_rows,
    sample_zipf,
    truncated_normal_years,
    zipf_weights,
)
from repro.errors import ReproError
from repro.rng import make_rng


class TestZipf:
    def test_weights_normalized(self):
        assert zipf_weights(100, 1.1).sum() == pytest.approx(1.0)

    def test_weights_decreasing(self):
        w = zipf_weights(50, 1.0)
        assert np.all(np.diff(w) < 0)

    def test_zero_exponent_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            zipf_weights(0)
        with pytest.raises(ReproError):
            zipf_weights(5, -1.0)

    def test_sampling_follows_skew(self):
        rng = make_rng(0)
        draws = sample_zipf(rng, 100, 20_000, s=1.5)
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > counts[10] > counts[50]

    @given(st.integers(min_value=1, max_value=500), st.floats(min_value=0, max_value=3))
    def test_weights_property(self, n, s):
        w = zipf_weights(n, s)
        assert len(w) == n
        assert np.all(w > 0)
        assert w.sum() == pytest.approx(1.0)


class TestEraBias:
    def test_bias_shifts_distribution(self):
        rng = make_rng(1)
        base = np.ones(2) / 2
        peaks = np.array([1950.0, 2010.0])
        early_rows = np.full(5000, 1950.0)
        late_rows = np.full(5000, 2010.0)
        early_choice = era_biased_choice(rng, base, peaks, early_rows, width=15.0)
        late_choice = era_biased_choice(rng, base, peaks, late_rows, width=15.0)
        assert (early_choice == 0).mean() > 0.9
        assert (late_choice == 1).mean() > 0.9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            era_biased_choice(make_rng(0), np.ones(2), np.ones(3), np.ones(4))

    def test_invalid_width(self):
        with pytest.raises(ReproError):
            era_biased_choice(make_rng(0), np.ones(2), np.ones(2), np.ones(2), width=0)

    def test_output_in_range(self):
        rng = make_rng(2)
        out = era_biased_choice(
            rng, zipf_weights(7), np.linspace(1900, 2000, 7), rng.uniform(1880, 2019, 500)
        )
        assert out.min() >= 0 and out.max() < 7


class TestCountsAndExpansion:
    def test_conditional_counts_capped(self):
        counts = conditional_counts(make_rng(0), np.full(1000, 10.0), max_count=3)
        assert counts.max() <= 3

    def test_negative_mean_rejected(self):
        with pytest.raises(ReproError):
            conditional_counts(make_rng(0), np.array([-1.0]))

    def test_repeat_parent_rows(self):
        assert repeat_parent_rows(np.array([2, 0, 1])).tolist() == [0, 0, 2]

    def test_repeat_negative_rejected(self):
        with pytest.raises(ReproError):
            repeat_parent_rows(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=30))
    def test_expansion_length_property(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        parents = repeat_parent_rows(counts)
        assert len(parents) == counts.sum()
        for parent, count in enumerate(counts):
            assert (parents == parent).sum() == count


class TestYears:
    def test_truncation(self):
        years = truncated_normal_years(make_rng(0), 1000, 2005, 50, 1880, 2019)
        assert years.min() >= 1880 and years.max() <= 2019

    def test_invalid_range(self):
        with pytest.raises(ReproError):
            truncated_normal_years(make_rng(0), 10, 2000, 5, 2019, 1880)

    def test_mixture_modes(self):
        years = mixture_years(
            make_rng(0),
            20_000,
            components=[(0.5, 1930.0, 5.0), (0.5, 2010.0, 5.0)],
            low=1880,
            high=2019,
        )
        early = ((years > 1915) & (years < 1945)).mean()
        late = ((years > 1995) & (years < 2019)).mean()
        middle = ((years > 1950) & (years < 1990)).mean()
        assert early > 0.3 and late > 0.3 and middle < 0.05

    def test_empty_mixture_rejected(self):
        with pytest.raises(ReproError):
            mixture_years(make_rng(0), 10, components=[], low=1880, high=2019)


class TestRegistry:
    def test_load_and_cache(self):
        from repro.datasets import clear_dataset_cache, dataset_names, load_dataset

        clear_dataset_cache()
        assert set(dataset_names()) >= {"imdb", "tpch"}
        a = load_dataset("imdb", scale=0.02)
        b = load_dataset("imdb", scale=0.02)
        assert a is b  # cached
        c = load_dataset("imdb", scale=0.03)
        assert c is not a
        clear_dataset_cache()

    def test_unknown_dataset(self):
        from repro.datasets import load_dataset

        with pytest.raises(ReproError):
            load_dataset("enron")

"""Synthetic TPC-H generator tests."""

import numpy as np
import pytest

from repro.datasets import TpchConfig, generate_tpch
from repro.datasets.tpch import DATE_HIGH, DATE_LOW
from repro.db import execute_count
from repro.workload import JoinEdge, Predicate, Query, TableRef


class TestSchema:
    def test_tables(self, tpch_small):
        assert set(tpch_small.tables) == {
            "region", "nation", "supplier", "customer", "part", "orders", "lineitem",
        }

    def test_fixed_dimensions(self, tpch_small):
        assert tpch_small.table("region").n_rows == 5
        assert tpch_small.table("nation").n_rows == 25

    def test_fk_integrity(self, tpch_small):
        for fk in tpch_small.foreign_keys:
            child = tpch_small.table(fk.table).column(fk.column).non_null_values()
            parent = tpch_small.table(fk.ref_table).column(fk.ref_column).values
            assert np.isin(child, parent).all(), str(fk)

    def test_order_lineitem_fanout(self, tpch_small):
        orders = tpch_small.table("orders").n_rows
        lines = tpch_small.table("lineitem").n_rows
        assert 2.0 < lines / orders < 7.0

    def test_deterministic(self):
        a = generate_tpch(TpchConfig(scale=0.1, seed=2))
        b = generate_tpch(TpchConfig(scale=0.1, seed=2))
        assert np.array_equal(
            a.table("lineitem").column("l_quantity").values,
            b.table("lineitem").column("l_quantity").values,
        )


class TestCorrelations:
    def test_priority_correlates_with_price(self, tpch_small):
        orders = tpch_small.table("orders")
        price = orders.column("o_totalprice").values
        priority = orders.column("o_orderpriority").values
        assert price[priority == 1].mean() > price[priority == 3].mean() * 1.5

    def test_shipdate_trails_orderdate(self, tpch_small):
        lineitem = tpch_small.table("lineitem")
        orders = tpch_small.table("orders")
        odate_by_key = dict(
            zip(
                orders.column("o_orderkey").values.tolist(),
                orders.column("o_orderdate").values.tolist(),
            )
        )
        odates = np.array(
            [odate_by_key[k] for k in lineitem.column("l_orderkey").values.tolist()]
        )
        lag = lineitem.column("l_shipdate").values - odates
        assert (lag > 0).all()
        assert lag.max() <= 121

    def test_discount_correlates_with_quantity(self, tpch_small):
        li = tpch_small.table("lineitem")
        quantity = li.column("l_quantity").values
        discount = li.column("l_discount").values
        assert discount[quantity > 40].mean() > discount[quantity < 10].mean()

    def test_dates_in_window(self, tpch_small):
        odate = tpch_small.table("orders").column("o_orderdate").values
        assert odate.min() >= DATE_LOW
        assert odate.max() <= DATE_HIGH


class TestQueryability:
    def test_three_way_join(self, tpch_small):
        query = Query(
            tables=(
                TableRef("customer", "c"),
                TableRef("orders", "o"),
                TableRef("lineitem", "l"),
            ),
            joins=(
                JoinEdge("o", "o_custkey", "c", "c_custkey"),
                JoinEdge("l", "l_orderkey", "o", "o_orderkey"),
            ),
            predicates=(Predicate("l", "l_quantity", ">", 45),),
        )
        count = execute_count(tpch_small, query)
        assert count > 0

    def test_unfiltered_join_equals_lineitem_count(self, tpch_small):
        # orders->lineitem is a FK join; joining adds no rows.
        query = Query(
            tables=(TableRef("orders", "o"), TableRef("lineitem", "l")),
            joins=(JoinEdge("l", "l_orderkey", "o", "o_orderkey"),),
        )
        assert execute_count(tpch_small, query) == tpch_small.table("lineitem").n_rows

    def test_string_predicate(self, tpch_small):
        query = Query(
            tables=(TableRef("customer", "c"),),
            predicates=(Predicate("c", "c_mktsegment", "=", "BUILDING"),),
        )
        count = execute_count(tpch_small, query)
        assert 0 < count < tpch_small.table("customer").n_rows

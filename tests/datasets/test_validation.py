"""Dataset-diagnostics tests: correlation audit and decorrelation."""

import numpy as np
import pytest

from repro.datasets.validation import (
    CorrelationReport,
    analyze_imdb_correlations,
    cramers_v,
    decorrelated_imdb,
)
from repro.errors import ReproError


class TestCramersV:
    def test_independent_is_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 20_000)
        b = rng.integers(0, 5, 20_000)
        assert cramers_v(a, b) < 0.05

    def test_identical_is_one(self):
        a = np.arange(1000) % 4
        assert cramers_v(a, a) == pytest.approx(1.0, abs=1e-9)

    def test_deterministic_mapping_is_one(self):
        a = np.arange(1000) % 4
        b = (a + 2) % 4  # bijection of categories
        assert cramers_v(a, b) == pytest.approx(1.0, abs=1e-9)

    def test_degenerate_single_category(self):
        assert cramers_v(np.zeros(10), np.arange(10)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            cramers_v(np.zeros(3), np.zeros(4))

    def test_empty(self):
        assert cramers_v(np.empty(0), np.empty(0)) == 0.0


class TestCorrelationReport:
    def test_synthetic_imdb_is_correlated(self, imdb_small):
        report = analyze_imdb_correlations(imdb_small)
        assert report.is_correlated(), report

    def test_report_fields_finite(self, imdb_small):
        report = analyze_imdb_correlations(imdb_small)
        for value in (
            report.kind_year_cramers_v,
            report.keyword_era_spearman,
            report.fanout_spearman,
            report.top_keyword_share,
        ):
            assert np.isfinite(value)

    def test_is_correlated_logic(self):
        strong = CorrelationReport(0.5, 0.5, 0.5, 0.1)
        weak = CorrelationReport(0.01, 0.0, 0.0, 0.001)
        assert strong.is_correlated()
        assert not weak.is_correlated()


class TestDecorrelation:
    @pytest.fixture(scope="class")
    def shuffled(self, request):
        imdb = request.getfixturevalue("imdb_small")
        return imdb, decorrelated_imdb(imdb, seed=1)

    def test_marginals_preserved(self, shuffled):
        # movie_id columns are bijectively remapped (their *fan-out
        # histogram* is the preserved invariant, checked below); every
        # other column must keep its exact value multiset.
        original, shuffled_db = shuffled
        for name in ("title", "movie_keyword", "cast_info"):
            for col_name, col in original.table(name).columns.items():
                if col_name == "movie_id":
                    continue
                other = shuffled_db.table(name).column(col_name)
                assert np.array_equal(
                    np.sort(col.values[col.valid]),
                    np.sort(other.values[other.valid]),
                ), f"{name}.{col_name} marginal changed"

    def test_referential_integrity_preserved(self, shuffled):
        _, shuffled_db = shuffled
        for fk in shuffled_db.foreign_keys:
            child = shuffled_db.table(fk.table).column(fk.column)
            parent = shuffled_db.table(fk.ref_table).column(fk.ref_column)
            assert np.isin(child.non_null_values(), parent.values).all(), str(fk)

    def test_correlations_destroyed(self, shuffled):
        original, shuffled_db = shuffled
        before = analyze_imdb_correlations(original)
        after = analyze_imdb_correlations(shuffled_db)
        # Each dependence measure must collapse relative to the original
        # (small residuals remain from finite-sample/leave-one-out bias).
        assert after.kind_year_cramers_v < 0.5 * before.kind_year_cramers_v
        assert abs(after.keyword_era_spearman) < 0.35 * abs(
            before.keyword_era_spearman
        )
        assert abs(after.fanout_spearman) < 0.35 * abs(before.fanout_spearman)
        assert not after.is_correlated()

    def test_fanout_distribution_preserved(self, shuffled):
        original, shuffled_db = shuffled
        n = original.table("title").n_rows
        for fact in ("cast_info", "movie_companies"):
            orig_counts = np.bincount(
                original.table(fact).column("movie_id").values, minlength=n + 1
            )
            new_counts = np.bincount(
                shuffled_db.table(fact).column("movie_id").values, minlength=n + 1
            )
            assert np.array_equal(np.sort(orig_counts), np.sort(new_counts))

    def test_queries_still_execute(self, shuffled):
        from repro.db import execute_count, parse_sql

        _, shuffled_db = shuffled
        count = execute_count(
            shuffled_db,
            parse_sql(
                "SELECT COUNT(*) FROM title t, movie_keyword mk "
                "WHERE mk.movie_id=t.id AND t.production_year>2000;"
            ),
        )
        assert count > 0

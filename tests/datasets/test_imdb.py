"""Synthetic IMDb generator tests: schema, integrity, planted correlations."""

import numpy as np
import pytest

from repro.datasets import ImdbConfig, NAMED_KEYWORDS, generate_imdb
from repro.db import execute_count
from repro.workload import JoinEdge, Predicate, Query, TableRef


class TestSchema:
    def test_all_tables_present(self, imdb_small):
        expected = {
            "title", "movie_keyword", "keyword", "movie_info", "movie_info_idx",
            "movie_companies", "company_name", "cast_info", "info_type", "kind_type",
            "company_type", "role_type",
        }
        assert set(imdb_small.tables) == expected

    def test_scaling(self):
        db = generate_imdb(ImdbConfig(scale=0.05, seed=1))
        assert db.table("title").n_rows == 1000

    def test_foreign_key_integrity(self, imdb_small):
        """Every FK value must reference an existing PK (no dangling)."""
        for fk in imdb_small.foreign_keys:
            child = imdb_small.table(fk.table).column(fk.column)
            parent = imdb_small.table(fk.ref_table).column(fk.ref_column)
            child_vals = child.non_null_values()
            assert np.isin(child_vals, parent.values).all(), str(fk)

    def test_primary_keys_unique(self, imdb_small):
        for name, table in imdb_small.tables.items():
            pk = table.schema.primary_key
            assert pk is not None, name
            assert np.unique(table.column(pk).values).size == table.n_rows

    def test_named_keywords_present(self, imdb_small):
        keywords = imdb_small.table("keyword").column("keyword")
        present = {keywords.decode(i) for i in range(len(keywords))}
        assert set(NAMED_KEYWORDS) <= present

    def test_production_year_has_nulls(self, imdb_small):
        col = imdb_small.table("title").column("production_year")
        assert 0.0 < col.null_fraction() < 0.10

    def test_deterministic(self):
        a = generate_imdb(ImdbConfig(scale=0.05, seed=5))
        b = generate_imdb(ImdbConfig(scale=0.05, seed=5))
        assert np.array_equal(
            a.table("movie_keyword").column("keyword_id").values,
            b.table("movie_keyword").column("keyword_id").values,
        )

    def test_different_seed_differs(self):
        a = generate_imdb(ImdbConfig(scale=0.05, seed=5))
        b = generate_imdb(ImdbConfig(scale=0.05, seed=6))
        assert not np.array_equal(
            a.table("movie_keyword").column("keyword_id").values,
            b.table("movie_keyword").column("keyword_id").values,
        )


class TestPlantedCorrelations:
    """The correlations that make independence assumptions fail — the
    property that gives Table 1 its shape."""

    def test_kind_correlates_with_year(self, imdb_small):
        title = imdb_small.table("title")
        years = title.column("production_year")
        kinds = title.column("kind_id")
        valid = years.valid
        early = valid & (years.values < 1950)
        late = valid & (years.values > 2005)
        episode_rate_early = (kinds.values[early] == 7).mean()
        episode_rate_late = (kinds.values[late] == 7).mean()
        assert episode_rate_late > episode_rate_early * 2

    def test_keyword_popularity_drifts_with_era(self, imdb_small):
        """P(keyword | era) must differ across eras for top keywords."""
        title = imdb_small.table("title")
        mk = imdb_small.table("movie_keyword")
        years_by_id = dict(
            zip(
                title.column("id").values.tolist(),
                title.column("production_year").values.tolist(),
            )
        )
        mk_years = np.array(
            [years_by_id[m] for m in mk.column("movie_id").values.tolist()]
        )
        mk_kw = mk.column("keyword_id").values
        early = mk_kw[mk_years < 1960]
        late = mk_kw[mk_years > 2000]
        assert early.size > 30 and late.size > 30
        # Distribution distance between the two eras must be substantial.
        top = 30
        all_counts = np.bincount(mk_kw, minlength=mk_kw.max() + 1)
        top_kw = np.argsort(all_counts)[::-1][:top]
        p_early = np.array([(early == k).mean() for k in top_kw])
        p_late = np.array([(late == k).mean() for k in top_kw])
        l1 = np.abs(p_early - p_late).sum()
        assert l1 > 0.2, f"era drift too weak (L1={l1:.3f})"

    def test_popularity_drives_multiple_fanouts(self, imdb_small):
        """Cast size and company count correlate (shared latent factor)."""
        ci = np.bincount(
            imdb_small.table("cast_info").column("movie_id").values,
            minlength=imdb_small.table("title").n_rows + 1,
        )
        mc = np.bincount(
            imdb_small.table("movie_companies").column("movie_id").values,
            minlength=imdb_small.table("title").n_rows + 1,
        )
        n = min(len(ci), len(mc))
        corr = np.corrcoef(ci[1:n], mc[1:n])[0, 1]
        assert corr > 0.3, f"fan-out correlation too weak ({corr:.3f})"

    def test_recent_movies_have_more_keywords(self, imdb_small):
        title = imdb_small.table("title")
        years = title.column("production_year")
        kw_counts = np.bincount(
            imdb_small.table("movie_keyword").column("movie_id").values,
            minlength=title.n_rows + 1,
        )[1:]
        valid = years.valid
        early_mean = kw_counts[valid & (years.values < 1950)].mean()
        late_mean = kw_counts[valid & (years.values > 2000)].mean()
        assert late_mean > early_mean * 1.5


class TestQueryability:
    def test_example_query_from_paper_shape(self, imdb_small):
        """The paper's movie/keyword/year query template, structurally."""
        query = Query(
            tables=(
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("keyword", "k"),
            ),
            joins=(
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("mk", "keyword_id", "k", "id"),
            ),
            predicates=(
                Predicate("k", "keyword", "=", "artificial-intelligence"),
                Predicate("t", "production_year", "=", 2015),
            ),
        )
        assert execute_count(imdb_small, query) >= 0

    def test_zero_config_generation(self):
        db = generate_imdb(ImdbConfig(scale=0.02, seed=0))
        assert db.table("title").n_rows == 400

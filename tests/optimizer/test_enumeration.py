"""DP and greedy enumeration tests, including optimality properties."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import TruthEstimator
from repro.errors import QueryError
from repro.optimizer import (
    CardinalityCache,
    PlanOptimizer,
    cout_cost,
    dp_optimal_plan,
    greedy_plan,
    validate_plan,
)
from repro.optimizer.plans import JoinNode, LeafNode
from repro.workload import JoinEdge, Predicate, Query, TableRef


class _FixedCards:
    """Estimator stub with scripted subset cardinalities."""

    name = "fixed"

    def __init__(self, table: dict[frozenset, float], default: float = 100.0):
        self.table = table
        self.default = default

    def estimate(self, query):
        return self.table.get(frozenset(query.aliases), self.default)


def chain_query(n):
    """a0 - a1 - ... chain joins (each consecutive pair joined on x)."""
    tables = tuple(TableRef(f"t{i}", f"a{i}") for i in range(n))
    joins = tuple(JoinEdge(f"a{i}", "x", f"a{i+1}", "x") for i in range(n - 1))
    return Query(tables=tables, joins=joins)


class TestDP:
    def test_single_table(self):
        query = Query(tables=(TableRef("t", "t"),))
        cards = CardinalityCache(_FixedCards({}), query)
        plan, cost = dp_optimal_plan(query, cards)
        assert plan == LeafNode("t")
        assert cost == 0.0

    def test_two_tables(self):
        query = chain_query(2)
        cards = CardinalityCache(_FixedCards({frozenset(["a0", "a1"]): 42.0}), query)
        plan, cost = dp_optimal_plan(query, cards)
        assert cost == 42.0
        assert plan.aliases == frozenset(["a0", "a1"])

    def test_prefers_cheap_intermediate(self):
        # Chain a0-a1-a2: joining (a1,a2) first is scripted much cheaper.
        scripted = {
            frozenset(["a0", "a1"]): 1000.0,
            frozenset(["a1", "a2"]): 5.0,
            frozenset(["a0", "a1", "a2"]): 50.0,
        }
        query = chain_query(3)
        cards = CardinalityCache(_FixedCards(scripted), query)
        plan, cost = dp_optimal_plan(query, cards)
        assert cost == 55.0  # 5 (a1⨝a2) + 50 (final)
        first_join = next(iter(plan.join_nodes()))
        assert first_join.aliases == frozenset(["a1", "a2"])

    def test_never_uses_cross_products(self):
        query = chain_query(4)
        cards = CardinalityCache(_FixedCards({}, default=10.0), query)
        plan, _ = dp_optimal_plan(query, cards)
        validate_plan(plan, query)
        # Every join node of a chain plan must be a connected subset.
        for node in plan.join_nodes():
            indices = sorted(int(a[1:]) for a in node.aliases)
            assert indices == list(range(indices[0], indices[-1] + 1))

    def test_disconnected_rejected(self):
        query = Query(tables=(TableRef("a", "a"), TableRef("b", "b")))
        cards = CardinalityCache(_FixedCards({}), query)
        with pytest.raises(QueryError):
            dp_optimal_plan(query, cards)

    def test_relation_limit(self):
        query = chain_query(11)
        cards = CardinalityCache(_FixedCards({}), query)
        with pytest.raises(QueryError):
            dp_optimal_plan(query, cards)

    def test_dp_cost_consistent_with_cout(self):
        query = chain_query(4)
        cards = CardinalityCache(_FixedCards({}, default=7.0), query)
        plan, cost = dp_optimal_plan(query, cards)
        assert cost == pytest.approx(cout_cost(plan, cards))


class TestDPOptimalityProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=7, max_size=7))
    def test_dp_beats_all_left_deep_orders(self, card_values):
        """DP's plan must cost <= every left-deep permutation's plan
        under the same scripted cardinalities (3-relation chain)."""
        query = chain_query(3)
        subsets = [
            frozenset(["a0", "a1"]),
            frozenset(["a1", "a2"]),
            frozenset(["a0", "a2"]),
            frozenset(["a0", "a1", "a2"]),
            frozenset(["a0"]),
            frozenset(["a1"]),
            frozenset(["a2"]),
        ]
        scripted = dict(zip(subsets, card_values))
        cards = CardinalityCache(_FixedCards(scripted), query)
        _, dp_cost = dp_optimal_plan(query, cards)

        neighbors = {"a0": {"a1"}, "a1": {"a0", "a2"}, "a2": {"a1"}}
        for order in itertools.permutations(["a0", "a1", "a2"]):
            # left-deep; skip orders that need a cross product
            joined = {order[0]}
            plan = LeafNode(order[0])
            valid = True
            for alias in order[1:]:
                if not (neighbors[alias] & joined):
                    valid = False
                    break
                plan = JoinNode(plan, LeafNode(alias))
                joined.add(alias)
            if not valid:
                continue
            assert dp_cost <= cout_cost(plan, cards) + 1e-6


class TestGreedy:
    def test_greedy_valid_plan(self):
        query = chain_query(4)
        cards = CardinalityCache(_FixedCards({}, default=3.0), query)
        plan, cost = greedy_plan(query, cards)
        validate_plan(plan, query)
        assert cost == pytest.approx(cout_cost(plan, cards))

    def test_greedy_never_beats_dp(self):
        scripted = {
            frozenset(["a0", "a1"]): 10.0,
            frozenset(["a1", "a2"]): 9.0,
            frozenset(["a2", "a3"]): 8.0,
            frozenset(["a0", "a1", "a2"]): 500.0,
            frozenset(["a1", "a2", "a3"]): 400.0,
            frozenset(["a0", "a1", "a2", "a3"]): 50.0,
        }
        query = chain_query(4)
        cards = CardinalityCache(_FixedCards(scripted, default=300.0), query)
        _, dp_cost = dp_optimal_plan(query, cards)
        _, greedy_cost = greedy_plan(query, cards)
        assert dp_cost <= greedy_cost + 1e-9


class TestPlanOptimizerOnData:
    def test_quality_factor_at_least_one(self, imdb_small):
        from repro.workload import JobLightConfig, generate_job_light

        workload = [
            q
            for q in generate_job_light(imdb_small, JobLightConfig(n_queries=15, seed=5))
            if q.num_joins >= 2
        ]
        optimizer = PlanOptimizer(imdb_small, TruthEstimator(imdb_small))
        for query in workload[:5]:
            factor = optimizer.plan_quality_factor(query)
            assert factor == pytest.approx(1.0)  # truth estimator is optimal

    def test_strategies(self, imdb_small):
        with pytest.raises(QueryError):
            PlanOptimizer(imdb_small, TruthEstimator(imdb_small), strategy="quantum")
        greedy = PlanOptimizer(imdb_small, TruthEstimator(imdb_small), strategy="greedy")
        query = Query(
            tables=(
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("movie_info", "mi"),
            ),
            joins=(
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("mi", "movie_id", "t", "id"),
            ),
        )
        planned = greedy.optimize(query)
        validate_plan(planned.plan, query)

    def test_sketch_as_estimator(self, imdb_small, trained_sketch):
        """The headline integration: the Deep Sketch drives the optimizer."""
        sketch, _ = trained_sketch
        optimizer = PlanOptimizer(imdb_small, sketch)
        query = Query(
            tables=(
                TableRef("title", "t"),
                TableRef("movie_keyword", "mk"),
                TableRef("cast_info", "ci"),
            ),
            joins=(
                JoinEdge("mk", "movie_id", "t", "id"),
                JoinEdge("ci", "movie_id", "t", "id"),
            ),
            predicates=(Predicate("t", "production_year", ">", 2005),),
        )
        planned = optimizer.optimize(query)
        validate_plan(planned.plan, query)
        factor = optimizer.plan_quality_factor(query)
        assert np.isfinite(factor) and factor >= 1.0

"""C_out cost model and cardinality-cache tests."""

import pytest

from repro.optimizer import CardinalityCache, cout_cost
from repro.optimizer.cost import true_cost
from repro.optimizer.plans import JoinNode, LeafNode
from repro.workload import JoinEdge, Query, TableRef


class _ScriptedCards:
    """Estimator stub with scripted subset cardinalities."""

    name = "scripted"

    def __init__(self, table: dict, default: float = 100.0):
        self.table = table
        self.default = default
        self.calls = 0

    def estimate(self, query):
        self.calls += 1
        return self.table.get(frozenset(query.aliases), self.default)


def star_query():
    """t joined to mk and mi (the tiny-star shape)."""
    return Query(
        tables=(
            TableRef("title", "t"),
            TableRef("movie_keyword", "mk"),
            TableRef("movie_info", "mi"),
        ),
        joins=(
            JoinEdge("mk", "movie_id", "t", "id"),
            JoinEdge("mi", "movie_id", "t", "id"),
        ),
    )


class TestCardinalityCache:
    def test_memoizes_one_probe_per_subset(self):
        query = star_query()
        estimator = _ScriptedCards({}, default=5.0)
        cards = CardinalityCache(estimator, query)
        subset = frozenset(["t", "mk"])
        assert cards.cardinality(subset) == 5.0
        assert cards.cardinality(subset) == 5.0
        assert estimator.calls == 1
        assert cards.probes == 1

    def test_clamps_to_at_least_one(self):
        # Sub-one and negative estimates would make C_out prefer plans
        # through "free" intermediates; the cache floors them at 1.
        query = star_query()
        cards = CardinalityCache(
            _ScriptedCards({frozenset(["t", "mk"]): 0.001}), query
        )
        assert cards.cardinality(frozenset(["t", "mk"])) == 1.0


class TestCoutCost:
    def test_single_table_plan_is_free(self):
        # Base-table scans are excluded: their size does not depend on
        # the join order.
        query = Query(tables=(TableRef("title", "t"),))
        cards = CardinalityCache(_ScriptedCards({}), query)
        assert cout_cost(LeafNode("t"), cards) == 0.0
        assert cards.probes == 0  # no estimator traffic at all

    def test_two_way_join_costs_its_output(self):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        )
        cards = CardinalityCache(
            _ScriptedCards({frozenset(["t", "mk"]): 42.0}), query
        )
        plan = JoinNode(LeafNode("t"), LeafNode("mk"))
        assert cout_cost(plan, cards) == 42.0

    def test_sums_every_intermediate_including_root(self):
        scripted = {
            frozenset(["t", "mk"]): 10.0,
            frozenset(["t", "mk", "mi"]): 3.0,
        }
        cards = CardinalityCache(_ScriptedCards(scripted), star_query())
        plan = JoinNode(JoinNode(LeafNode("t"), LeafNode("mk")), LeafNode("mi"))
        assert cout_cost(plan, cards) == pytest.approx(13.0)

    def test_cost_depends_on_join_order(self):
        scripted = {
            frozenset(["t", "mk"]): 1000.0,
            frozenset(["t", "mi"]): 2.0,
            frozenset(["t", "mk", "mi"]): 50.0,
        }
        query = star_query()
        via_mk = JoinNode(
            JoinNode(LeafNode("t"), LeafNode("mk")), LeafNode("mi")
        )
        via_mi = JoinNode(
            JoinNode(LeafNode("t"), LeafNode("mi")), LeafNode("mk")
        )
        cards = CardinalityCache(_ScriptedCards(scripted), query)
        assert cout_cost(via_mi, cards) < cout_cost(via_mk, cards)

    def test_true_cost_is_cout_under_the_given_cache(self):
        query = star_query()
        cards = CardinalityCache(_ScriptedCards({}, default=7.0), query)
        plan = JoinNode(JoinNode(LeafNode("t"), LeafNode("mk")), LeafNode("mi"))
        assert true_cost(plan, query, cards) == cout_cost(plan, cards)

"""Join-plan tree and sub-query tests."""

import pytest

from repro.errors import QueryError
from repro.optimizer import JoinNode, LeafNode, sub_query, validate_plan
from repro.workload import JoinEdge, Predicate, Query, TableRef


@pytest.fixture
def star3():
    return Query(
        tables=(
            TableRef("title", "t"),
            TableRef("movie_keyword", "mk"),
            TableRef("movie_info", "mi"),
        ),
        joins=(
            JoinEdge("mk", "movie_id", "t", "id"),
            JoinEdge("mi", "movie_id", "t", "id"),
        ),
        predicates=(
            Predicate("t", "year", ">", 2000),
            Predicate("mk", "keyword_id", "=", 7),
        ),
    )


class TestPlanNodes:
    def test_leaf(self):
        leaf = LeafNode("t")
        assert leaf.aliases == frozenset(["t"])
        assert list(leaf.join_nodes()) == []
        assert str(leaf) == "t"

    def test_join_aliases_union(self):
        plan = JoinNode(LeafNode("t"), LeafNode("mk"))
        assert plan.aliases == frozenset(["t", "mk"])
        assert plan.leaf_count() == 2

    def test_join_nodes_bottom_up(self):
        inner = JoinNode(LeafNode("t"), LeafNode("mk"))
        outer = JoinNode(inner, LeafNode("mi"))
        nodes = list(outer.join_nodes())
        assert nodes == [inner, outer]

    def test_overlapping_children_rejected(self):
        with pytest.raises(QueryError):
            JoinNode(LeafNode("t"), JoinNode(LeafNode("t"), LeafNode("mk")))

    def test_rendering(self):
        plan = JoinNode(JoinNode(LeafNode("t"), LeafNode("mk")), LeafNode("mi"))
        assert str(plan) == "((t ⨝ mk) ⨝ mi)"


class TestSubQuery:
    def test_restriction(self, star3):
        sub = sub_query(star3, frozenset(["t", "mk"]))
        assert sorted(sub.aliases) == ["mk", "t"]
        assert len(sub.joins) == 1
        assert len(sub.predicates) == 2  # both predicates inside

    def test_single_alias(self, star3):
        sub = sub_query(star3, frozenset(["mi"]))
        assert sub.aliases == ["mi"]
        assert sub.joins == ()
        assert sub.predicates == ()

    def test_cross_join_pair_keeps_no_edges(self, star3):
        sub = sub_query(star3, frozenset(["mk", "mi"]))
        assert sub.joins == ()  # mk-mi only connect through t

    def test_unknown_alias_rejected(self, star3):
        with pytest.raises(QueryError):
            sub_query(star3, frozenset(["zz"]))


class TestValidatePlan:
    def test_matching(self, star3):
        plan = JoinNode(JoinNode(LeafNode("t"), LeafNode("mk")), LeafNode("mi"))
        validate_plan(plan, star3)

    def test_missing_alias_rejected(self, star3):
        with pytest.raises(QueryError):
            validate_plan(JoinNode(LeafNode("t"), LeafNode("mk")), star3)

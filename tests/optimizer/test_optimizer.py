"""PlanOptimizer unit tests and `connected_subsets` enumeration tests."""

import pytest

from repro.baselines import TruthEstimator
from repro.errors import QueryError
from repro.optimizer import (
    MAX_DP_RELATIONS,
    PlannedQuery,
    PlanOptimizer,
    connected_subsets,
    cout_cost,
    CardinalityCache,
    validate_plan,
)
from repro.optimizer.plans import LeafNode
from repro.workload import JoinEdge, Query, TableRef


class _ScriptedCards:
    name = "scripted"

    def __init__(self, table: dict, default: float = 100.0):
        self.table = table
        self.default = default

    def estimate(self, query):
        return self.table.get(frozenset(query.aliases), self.default)


def chain_query(n):
    tables = tuple(TableRef(f"t{i}", f"a{i}") for i in range(n))
    joins = tuple(JoinEdge(f"a{i}", "x", f"a{i+1}", "x") for i in range(n - 1))
    return Query(tables=tables, joins=joins)


def tiny_star_query():
    return Query(
        tables=(
            TableRef("title", "t"),
            TableRef("movie_keyword", "mk"),
            TableRef("movie_info", "mi"),
        ),
        joins=(
            JoinEdge("mk", "movie_id", "t", "id"),
            JoinEdge("mi", "movie_id", "t", "id"),
        ),
    )


class TestPlanOptimizer:
    def test_single_table(self, tiny_db):
        optimizer = PlanOptimizer(tiny_db, _ScriptedCards({}))
        planned = optimizer.optimize(Query(tables=(TableRef("title", "t"),)))
        assert isinstance(planned, PlannedQuery)
        assert planned.plan == LeafNode("t")
        assert planned.estimated_cost == 0.0

    def test_two_way_join(self, tiny_db):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
            joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        )
        optimizer = PlanOptimizer(
            tiny_db, _ScriptedCards({frozenset(["t", "mk"]): 42.0})
        )
        planned = optimizer.optimize(query)
        validate_plan(planned.plan, query)
        assert planned.estimated_cost == 42.0

    def test_picks_the_cheap_side_of_a_star(self, tiny_db):
        scripted = {
            frozenset(["t", "mk"]): 1000.0,
            frozenset(["t", "mi"]): 2.0,
            frozenset(["t", "mk", "mi"]): 50.0,
        }
        optimizer = PlanOptimizer(tiny_db, _ScriptedCards(scripted))
        planned = optimizer.optimize(tiny_star_query())
        # The cheap (t ⨝ mi) intermediate must be built first.
        inner = next(iter(planned.plan.join_nodes()))
        assert inner.aliases == frozenset(["t", "mi"])
        assert planned.estimated_cost == pytest.approx(52.0)

    def test_cost_consistent_with_cout(self, tiny_db):
        estimator = _ScriptedCards({}, default=9.0)
        optimizer = PlanOptimizer(tiny_db, estimator)
        query = tiny_star_query()
        planned = optimizer.optimize(query)
        cards = CardinalityCache(estimator, query)
        assert planned.estimated_cost == pytest.approx(
            cout_cost(planned.plan, cards)
        )

    def test_disconnected_join_graph_rejected(self, tiny_db):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk"))
        )
        optimizer = PlanOptimizer(tiny_db, _ScriptedCards({}))
        with pytest.raises(QueryError):
            optimizer.optimize(query)

    def test_unknown_strategy_rejected(self, tiny_db):
        with pytest.raises(QueryError):
            PlanOptimizer(tiny_db, _ScriptedCards({}), strategy="quantum")

    def test_truth_estimator_is_optimal(self, tiny_db):
        optimizer = PlanOptimizer(tiny_db, TruthEstimator(tiny_db))
        factor = optimizer.plan_quality_factor(tiny_star_query())
        assert factor == pytest.approx(1.0)

    def test_quality_factor_at_least_one(self, tiny_db):
        # A deliberately misleading estimator can only make plans worse,
        # never better than the truth-optimal plan.
        scripted = {
            frozenset(["t", "mk"]): 1.0,
            frozenset(["t", "mi"]): 1e6,
            frozenset(["t", "mk", "mi"]): 1.0,
        }
        optimizer = PlanOptimizer(tiny_db, _ScriptedCards(scripted))
        factor = optimizer.plan_quality_factor(tiny_star_query())
        assert factor >= 1.0


class TestConnectedSubsets:
    def test_singletons_first_full_query_last(self):
        query = chain_query(3)
        subsets = connected_subsets(query)
        n = len(query.aliases)
        assert subsets[:n] == [frozenset((a,)) for a in query.aliases]
        assert subsets[-1] == frozenset(query.aliases)

    def test_excludes_disconnected_subsets(self):
        # Chain a0-a1-a2: {a0, a2} has no join edge.
        subsets = connected_subsets(chain_query(3))
        assert frozenset(["a0", "a2"]) not in subsets
        assert len(subsets) == 6  # 3 singletons + {01} + {12} + {012}

    def test_deterministic_order(self):
        query = chain_query(4)
        assert connected_subsets(query) == connected_subsets(query)

    def test_single_table(self):
        subsets = connected_subsets(Query(tables=(TableRef("t", "t"),)))
        assert subsets == [frozenset(["t"])]

    def test_guards_match_the_dp(self):
        with pytest.raises(QueryError):
            connected_subsets(chain_query(MAX_DP_RELATIONS + 1))
        with pytest.raises(QueryError):
            connected_subsets(
                Query(tables=(TableRef("a", "a"), TableRef("b", "b")))
            )

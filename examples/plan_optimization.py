"""Feeding Deep Sketch estimates to a query optimizer.

Section 1 of the paper: "The estimates produced by Deep Sketches can
directly be leveraged by existing, sophisticated join enumeration
algorithms and cost models."  This example does exactly that: it builds
a sketch, plugs it into the DP join enumerator under the C_out cost
model, and compares the chosen join orders (and their true costs)
against plans picked with PostgreSQL-style estimates and with perfect
estimates.

Run with:  python examples/plan_optimization.py
"""

import numpy as np

from repro.baselines import PostgresEstimator, TruthEstimator
from repro.core import SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.optimizer import PlanOptimizer
from repro.workload import JobLightConfig, generate_job_light, spec_for_imdb


def main() -> None:
    db = load_dataset("imdb", scale=0.5)
    sketch, _ = build_sketch(
        db,
        spec_for_imdb(),
        name="optimizer-input",
        config=SketchConfig(
            n_training_queries=6000, epochs=12, sample_size=500, hidden_units=64
        ),
    )

    optimizers = {
        "Deep Sketch": PlanOptimizer(db, sketch),
        "PostgreSQL": PlanOptimizer(db, PostgresEstimator(db)),
        "True cards": PlanOptimizer(db, TruthEstimator(db)),
    }

    queries = [
        q
        for q in generate_job_light(db, JobLightConfig(n_queries=30, seed=17))
        if q.num_joins >= 3
    ][:5]

    for i, query in enumerate(queries, start=1):
        print(f"query {i}: {query.to_sql()[:90]}...")
        for name, optimizer in optimizers.items():
            planned = optimizer.optimize(query)
            true_cost = optimizer.true_cost_of(planned)
            print(
                f"  {name:<12} plan {str(planned.plan):<38} "
                f"true C_out {true_cost:12.0f}"
            )
        print()

    factors = {
        name: np.mean([opt.plan_quality_factor(q) for q in queries])
        for name, opt in optimizers.items()
    }
    print("mean plan-quality factor (1.0 = always the optimal join order):")
    for name, factor in factors.items():
        print(f"  {name:<12} {factor:.3f}")


if __name__ == "__main__":
    main()

"""Quickstart: build a Deep Sketch and estimate ad-hoc SQL queries.

Walks the paper's Figure 1 end to end on the synthetic IMDb:

1. load a dataset and define a sketch (tables + parameters),
2. watch the four creation stages run (generate / execute / train),
3. issue ad-hoc SQL queries against the trained sketch,
4. compare against the true cardinality and the traditional estimators.

Run with:  python examples/quickstart.py
"""

from repro.baselines import HyperEstimator, PostgresEstimator
from repro.core import SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.db import execute_count, parse_sql
from repro.metrics import qerror
from repro.workload import spec_for_imdb


def main() -> None:
    # -- 1. dataset and sketch definition -----------------------------
    db = load_dataset("imdb", scale=0.5)
    spec = spec_for_imdb()  # the six JOB-light tables
    config = SketchConfig(
        sample_size=500,
        n_training_queries=10_000,
        epochs=18,
        hidden_units=64,
    )
    print(f"database: {db.name} with {db.total_rows():,} rows")
    print(f"sketch over tables: {', '.join(spec.tables)}")

    # -- 2. creation with progress reporting --------------------------
    def progress(event):
        if event.stage == "train":
            print(f"  [train] {event.message}")
        elif event.current == event.total:
            print(f"  [{event.stage}] done")

    sketch, report = build_sketch(db, spec, name="quickstart", config=config, progress=progress)
    print(
        f"built in {report.total_seconds:.1f}s "
        f"({report.n_zero_cardinality_dropped} empty-result training queries dropped)"
    )
    print(f"footprint: {sketch.footprint_bytes() / 1024:.0f} KiB\n")

    # -- 3 + 4. ad-hoc queries with comparisons ------------------------
    hyper = HyperEstimator(db, sample_size=500)
    postgres = PostgresEstimator(db)
    queries = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year>2010;",
        "SELECT COUNT(*) FROM title t, movie_keyword mk "
        "WHERE mk.movie_id=t.id AND t.production_year=2015;",
        "SELECT COUNT(*) FROM title t, movie_companies mc, cast_info ci "
        "WHERE mc.movie_id=t.id AND ci.movie_id=t.id "
        "AND mc.company_type_id=2 AND ci.role_id=1 AND t.production_year>2000;",
    ]
    header = f"{'truth':>10} {'sketch':>10} {'hyper':>10} {'postgres':>10}   query"
    print(header)
    print("-" * len(header))
    for sql in queries:
        query = parse_sql(sql)
        truth = execute_count(db, query)
        est_sketch = sketch.estimate(query)
        est_hyper = hyper.estimate(query)
        est_pg = postgres.estimate(query)
        print(
            f"{truth:>10} {est_sketch:>10.0f} {est_hyper:>10.0f} {est_pg:>10.0f}"
            f"   {sql[22:70]}..."
        )
        print(
            f"{'q-error:':>10} {qerror(est_sketch, truth):>10.2f} "
            f"{qerror(est_hyper, truth):>10.2f} {qerror(est_pg, truth):>10.2f}"
        )


if __name__ == "__main__":
    main()

"""The HTTP front door end to end: server, curl-style JSON, client SDK.

Demonstrates that remote serving is the *same* estimation API as
in-process serving (the ``SketchService`` protocol):

1. build a small Deep Sketch over the synthetic IMDb,
2. start a ``SketchHTTPServer`` (the stdlib-only front door) on an
   ephemeral port,
3. speak the versioned wire protocol by hand — the raw JSON a ``curl``
   user would POST to ``/v1/estimate`` — and read the structured
   response envelope,
4. serve a query stream through the ``RemoteSketchServer`` client SDK
   (one-line swap for the in-process facade),
5. assert **parity**: remote estimates match the in-process
   ``SketchServer`` on the same stream to <= 1e-12 relative (observed:
   0.0 — the wire does not change numbers),
6. print the ``GET /v1/stats`` telemetry snapshot — the same JSON
   local ``stats_summary()`` callers see.

Run from the repository root::

    python examples/serve_http.py           # full (a minute or two)
    python examples/serve_http.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import (  # noqa: E402
    RemoteSketchServer,
    ServeConfig,
    SketchHTTPServer,
    SketchServer,
    SketchService,
)
from repro.serve.bench import tile_workload  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: The acceptance bound: remote estimates vs the in-process facade.
PARITY_RTOL = 1e-12


def build_manager(args) -> SketchManager:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "imdb",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )
    return manager


def curl_style_estimate(url: str, sql: str) -> dict:
    """What ``curl -X POST $URL/v1/estimate -d '{...}'`` would do."""
    body = json.dumps(
        {"protocol_version": 1, "sql": sql, "sketch": None}
    ).encode()
    request = urllib.request.Request(
        url + "/v1/estimate",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.05, 300, 2
        args.samples, args.hidden = 50, 16
        args.requests, args.distinct = 64, 10

    manager = build_manager(args)
    distinct = generate_job_light(
        manager.db, JobLightConfig(n_queries=args.distinct, seed=1)
    )
    workload = tile_workload(distinct, args.requests)

    # The in-process reference: the sync facade on the same manager.
    with SketchServer(manager, ServeConfig(use_cache=False)) as local:
        local_responses = local.serve(workload)

    with SketchHTTPServer(
        manager, ServeConfig(use_cache=False), port=0
    ) as front_door:
        print(f"front door listening on {front_door.url}", file=sys.stderr)

        # 1. the raw wire protocol, as curl would speak it
        envelope = curl_style_estimate(front_door.url, distinct[0].to_sql())
        print(
            "curl-style envelope: "
            f"ok={envelope['ok']} estimate={envelope['estimate']:.1f} "
            f"sketch={envelope['sketch']} server_ms={envelope['server_ms']:.2f}"
        )

        # 2. the client SDK — the same SketchService surface as local
        with RemoteSketchServer(front_door.url) as remote:
            assert isinstance(remote, SketchService)
            health = remote.healthz()
            print(f"healthz: {health['status']} sketches={health['sketches']}")
            remote_responses = remote.serve(workload)
            timings = remote.timings()

        # 3. parity: the wire must not change numbers
        worst = 0.0
        n_errors = 0
        for local_r, remote_r in zip(local_responses, remote_responses):
            if not (local_r.ok and remote_r.ok):
                n_errors += 1
                continue
            rel = abs(remote_r.estimate - local_r.estimate) / abs(local_r.estimate)
            worst = max(worst, rel)
        print(
            f"parity: {len(workload)} requests, max rel diff {worst:.2e} "
            f"({n_errors} errors)"
        )
        print(
            f"client timings: wire p50 {timings['wire']['p50'] * 1000:.2f}ms, "
            f"server p50 {timings['server']['p50'] * 1000:.2f}ms"
        )

        # 4. the operator view — same JSON shape as stats_summary()
        stats = json.loads(
            urllib.request.urlopen(
                front_door.url + "/v1/stats", timeout=30
            ).read()
        )
        print(
            f"GET /v1/stats: {stats['requests']} requests, "
            f"{stats['forward_batches']} forward batches, "
            f"executor={stats['executor']}"
        )

        if n_errors or worst > PARITY_RTOL:
            print(
                f"FAIL: remote serving diverged (max rel diff {worst:.2e}, "
                f"{n_errors} errors)",
                file=sys.stderr,
            )
            return 1
    print("remote == local: the front door is a one-line swap")
    return 0


if __name__ == "__main__":
    sys.exit(main())

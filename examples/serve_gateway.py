"""Multi-node serving end to end: shard, replicate, fail over.

Demonstrates that a fleet behind ``SketchGateway`` is still the *same*
estimation API (the ``SketchService`` protocol):

1. build a small Deep Sketch over the synthetic IMDb,
2. start TWO ``SketchHTTPServer`` backends on ephemeral ports, each
   replicating the sketch,
3. front them with a ``SketchGateway`` — it learns the fleet map from
   ``/v1/healthz``, routes queries, and round-robins across replicas,
4. assert **parity**: gateway estimates match the in-process
   ``SketchServer`` on the same stream to <= 1e-12 relative,
5. **kill one backend mid-stream** and show the failover contract:
   every future resolves (zero hangs), failures carry structured
   ``route``/``shed`` codes, and surviving answers still match the
   reference,
6. print the fleet ``stats_summary()`` — gateway + per-backend + summed
   fleet views in one snapshot.

Run from the repository root::

    python examples/serve_gateway.py           # full (a minute or two)
    python examples/serve_gateway.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeConfig,
    SketchGateway,
    SketchHTTPServer,
    SketchServer,
    SketchService,
)
from repro.serve.bench import tile_workload  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: The acceptance bound: gateway estimates vs the in-process facade.
PARITY_RTOL = 1e-12
#: Structured codes the failover path is allowed to emit.
STRUCTURED_CODES = ("route", "shed")


def build_manager(args) -> SketchManager:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "imdb",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )
    return manager


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.05, 300, 2
        args.samples, args.hidden = 50, 16
        args.requests, args.distinct = 64, 10

    manager = build_manager(args)
    distinct = generate_job_light(
        manager.db, JobLightConfig(n_queries=args.distinct, seed=1)
    )
    workload = tile_workload(distinct, args.requests)

    # The in-process reference: the sync facade on the same manager.
    with SketchServer(manager, ServeConfig(use_cache=False)) as local:
        reference = {
            query: r.estimate
            for query, r in zip(workload, local.serve(workload))
            if r.ok
        }

    # Two backends, each replicating the sketch (same manager here; in
    # production each backend loads its own copy from disk).
    config = ServeConfig(use_cache=False, dedup=False)
    servers = [
        SketchHTTPServer(manager, config, port=0) for _ in range(2)
    ]
    gateway = None
    try:
        for server in servers:
            server.start()
            print(f"backend listening on {server.url}", file=sys.stderr)

        gateway = SketchGateway(
            [server.url for server in servers], health_interval_s=None
        )
        assert isinstance(gateway, SketchService)
        print(
            "gateway fleet map: "
            + json.dumps(gateway.describe_sketches()),
            file=sys.stderr,
        )

        # 1. parity: the fleet must not change numbers
        responses = gateway.serve(workload)
        worst, n_errors = 0.0, 0
        for query, response in zip(workload, responses):
            if not response.ok:
                n_errors += 1
                continue
            expected = reference[query]
            worst = max(worst, abs(response.estimate - expected) / abs(expected))
        print(
            f"parity: {len(workload)} requests over 2 backends, "
            f"max rel diff {worst:.2e} ({n_errors} errors)"
        )
        if n_errors or worst > PARITY_RTOL:
            print(
                f"FAIL: gateway serving diverged (max rel diff {worst:.2e}, "
                f"{n_errors} errors)",
                file=sys.stderr,
            )
            return 1

        # 2. kill a backend mid-stream: submit everything, close one
        #    backend halfway through, then gather every future.
        futures = []
        for index, query in enumerate(workload):
            if index == len(workload) // 2:
                print("killing backend 2 mid-stream...", file=sys.stderr)
                servers[1].close()
            futures.append(gateway.submit(query))
        n_ok = n_structured = n_unstructured = n_hung = 0
        kill_worst = 0.0
        for query, future in zip(workload, futures):
            try:
                response = future.result(timeout=60.0)
            except Exception:
                n_hung += 1
                continue
            if response.ok:
                n_ok += 1
                expected = reference[query]
                kill_worst = max(
                    kill_worst, abs(response.estimate - expected) / abs(expected)
                )
            elif response.code in STRUCTURED_CODES:
                n_structured += 1
            else:
                n_unstructured += 1
        stats = gateway.stats_summary()
        print(
            f"kill audit: {n_ok}/{len(futures)} served, "
            f"{n_structured} structured route/shed, "
            f"{n_unstructured} unstructured, {n_hung} hung futures, "
            f"{stats['gateway']['failovers']} failovers, "
            f"survivors max rel diff {kill_worst:.2e}"
        )

        # 3. the operator view: gateway + backends + summed fleet
        fleet = stats["fleet"]
        print(
            f"fleet stats: {fleet['requests']} requests, "
            f"{fleet['backends_live']}/{fleet['backends_total']} backends live"
        )

        if n_hung or n_unstructured or not n_ok or kill_worst > PARITY_RTOL:
            print(
                f"FAIL: failover contract broken ({n_hung} hung, "
                f"{n_unstructured} unstructured, {n_ok} ok, "
                f"survivor diff {kill_worst:.2e})",
                file=sys.stderr,
            )
            return 1
    finally:
        if gateway is not None:
            gateway.close()
        for server in servers:
            server.close()

    print("fleet == local: the gateway is a one-line swap")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The paper's running example: keyword popularity over time.

Section 1 motivates Deep Sketches with a movie producer asking how
popular a certain keyword is per production year:

    SELECT COUNT(*)
    FROM title t, movie_keyword mk, keyword k
    WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
    AND k.keyword='artificial-intelligence'
    AND t.production_year=?

This example builds a sketch, defines that query as a template with a
placeholder on ``production_year``, groups it by decade (the demo's
"EXTRACT(YEAR FROM ...)"-style function), and prints the Figure 2 chart
data: Deep Sketch vs HyPer vs PostgreSQL vs the true cardinality.

The dimension-table hop (keyword name -> keyword_id) is resolved against
the database first, exactly like the demo's UI resolves clicked values,
so the sketch itself only sees its JOB-light table subset.

Run with:  python examples/movie_keyword_trend.py
"""

import numpy as np

from repro.baselines import HyperEstimator, PostgresEstimator, TruthEstimator
from repro.core import SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.demo import run_template
from repro.workload import (
    JoinEdge,
    Predicate,
    Query,
    QueryTemplate,
    TableRef,
    spec_for_imdb,
)

KEYWORD = "artificial-intelligence"


def keyword_id_for(db, name: str) -> int:
    """Resolve a keyword string to its id (the demo UI's lookup step)."""
    keyword = db.table("keyword").column("keyword")
    code = keyword.encode_literal(name)
    if code is None:
        raise SystemExit(f"keyword {name!r} not in the database")
    row = int(np.flatnonzero(keyword.values == code)[0])
    return int(db.table("keyword").column("id").values[row])


def main() -> None:
    db = load_dataset("imdb", scale=1.0)
    kw_id = keyword_id_for(db, KEYWORD)
    print(f"keyword {KEYWORD!r} has id {kw_id}")

    sketch, report = build_sketch(
        db,
        spec_for_imdb(),
        name="keyword-trend",
        config=SketchConfig(
            sample_size=1000, n_training_queries=8000, epochs=15, hidden_units=64
        ),
    )
    print(
        f"sketch trained in {report.total_seconds:.0f}s, "
        f"validation mean q-error {report.training.final_val_mean_qerror:.2f}"
    )

    base = Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=(Predicate("mk", "keyword_id", "=", kw_id),),
    )
    template = QueryTemplate(base=base, alias="t", column="production_year")

    estimators = [
        TruthEstimator(db),
        HyperEstimator(db, sample_size=1000),
        PostgresEstimator(db),
    ]
    result = run_template(sketch, template, estimators, mode="width", width=10)

    print(f"\n{KEYWORD!r} mentions per decade (Figure 2 chart data):\n")
    print(result.as_table())
    print("\nq-error vs truth, per system:")
    for system in (sketch.name, "HyPer", "PostgreSQL"):
        summary = result.qerror_summary(system)
        print(f"  {system:<16} median {summary.median:7.2f}  mean {summary.mean:7.2f}")


if __name__ == "__main__":
    main()

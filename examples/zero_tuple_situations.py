"""0-tuple situations: where learned sketches beat pure sampling.

Section 2 of the paper: "One advantage of our approach over pure
sampling-based cardinality estimators is that it addresses 0-tuple
situations, which is when no sampled tuples qualify.  In such
situations, sampling-based approaches usually fall back to an
'educated' guess — causing large estimation errors."

This example hunts for such queries (selective predicates that miss the
materialized sample entirely but match real rows), then shows the
estimates of the Deep Sketch, the pure-sampling estimator sharing the
*same* samples, and the true cardinality side by side.

Run with:  python examples/zero_tuple_situations.py
"""

import numpy as np

from repro.baselines import SamplingEstimator
from repro.core import SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.db import execute_count
from repro.metrics import qerror, summarize_qerrors
from repro.sampling import is_zero_tuple
from repro.workload import TrainingQueryGenerator, WorkloadSpec, spec_for_imdb


def main() -> None:
    db = load_dataset("imdb", scale=1.0)
    sketch, _ = build_sketch(
        db,
        spec_for_imdb(),
        name="zero-tuple-demo",
        config=SketchConfig(
            sample_size=1000, n_training_queries=8000, epochs=15, hidden_units=64
        ),
    )
    # The sampling estimator uses the sketch's own samples: identical
    # information, the only difference is the learned model.
    sampler = SamplingEstimator(db, samples=sketch.samples)

    base = spec_for_imdb()
    spec = WorkloadSpec(
        tables=base.tables,
        aliases=base.aliases,
        predicate_columns=base.predicate_columns,
        literal_distribution="distinct",  # tail literals miss samples often
    )
    generator = TrainingQueryGenerator(db, spec, seed=31)

    print("hunting for 0-tuple queries (predicates missing all 1000 samples)...\n")
    found = []
    while len(found) < 12:
        query = generator.draw()
        if not query.predicates or not is_zero_tuple(sketch.samples, query):
            continue
        truth = execute_count(db, query)
        if truth == 0:
            continue
        found.append((query, truth))

    print(f"{'truth':>8} {'sketch':>9} {'sampling':>9}  {'q(sketch)':>9} {'q(sampl)':>9}")
    sketch_errors, sampling_errors = [], []
    for query, truth in found:
        est_sketch = sketch.estimate(query)
        est_sampling = sampler.estimate(query)
        q_sketch = qerror(est_sketch, truth)
        q_sampling = qerror(est_sampling, truth)
        sketch_errors.append(q_sketch)
        sampling_errors.append(q_sampling)
        print(
            f"{truth:>8} {est_sketch:>9.1f} {est_sampling:>9.1f}"
            f"  {q_sketch:>9.1f} {q_sampling:>9.1f}"
        )

    print("\nsummary over the 0-tuple slice:")
    print(f"  Deep Sketch : {summarize_qerrors(sketch_errors)}")
    print(f"  Sampling    : {summarize_qerrors(sampling_errors)}")
    ratio = np.mean(sampling_errors) / np.mean(sketch_errors)
    print(f"\nthe learned model is {ratio:.1f}x more accurate (mean q-error) here")


if __name__ == "__main__":
    main()

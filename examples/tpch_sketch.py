"""Deep Sketches on TPC-H — the demo's second dataset.

Builds a sketch over the customer/orders/lineitem core of the TPC-H
schema, then uses a query template with a placeholder on the order date
grouped by ~year (the demo's Date-column grouping: "for columns with
many distinct values — such as Date columns, users may want to 'group'
the results by year"), previewing order volumes per year without
executing the queries.

Run with:  python examples/tpch_sketch.py
"""

from repro.baselines import PostgresEstimator, TruthEstimator
from repro.core import SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.demo import run_template
from repro.workload import (
    JoinEdge,
    Predicate,
    Query,
    QueryTemplate,
    TableRef,
    spec_for_tpch,
)

#: The synthetic TPC-H encodes dates as day numbers; 365 days ~ one year.
DAYS_PER_YEAR = 365


def main() -> None:
    db = load_dataset("tpch", scale=1.0)
    spec = spec_for_tpch(tables=("customer", "orders", "lineitem"))
    sketch, report = build_sketch(
        db,
        spec,
        name="tpch-core",
        config=SketchConfig(
            sample_size=500, n_training_queries=4000, epochs=12, hidden_units=64
        ),
    )
    print(
        f"sketch over {spec.tables} trained in {report.total_seconds:.0f}s, "
        f"validation mean q-error {report.training.final_val_mean_qerror:.2f}"
    )

    # Ad-hoc query first: large high-quantity orders.
    sql = (
        "SELECT COUNT(*) FROM orders o, lineitem l "
        "WHERE l.l_orderkey=o.o_orderkey AND l.l_quantity>45 "
        "AND o.o_orderpriority=1;"
    )
    from repro.db import execute_count, parse_sql

    estimate = sketch.estimate(sql)
    truth = execute_count(db, parse_sql(sql))
    print(f"\nad-hoc query estimate {estimate:.0f} vs truth {truth}")

    # Template: urgent-order volume per year of order date.
    base = Query(
        tables=(TableRef("orders", "o"), TableRef("lineitem", "l")),
        joins=(JoinEdge("l", "l_orderkey", "o", "o_orderkey"),),
        predicates=(Predicate("o", "o_orderpriority", "=", 1),),
    )
    template = QueryTemplate(base=base, alias="o", column="o_orderdate")
    result = run_template(
        sketch,
        template,
        [TruthEstimator(db), PostgresEstimator(db)],
        mode="width",
        width=DAYS_PER_YEAR,
    )
    print("\nurgent-order lineitems per order year (grouped by 365-day bins):\n")
    print(result.as_table())


if __name__ == "__main__":
    main()

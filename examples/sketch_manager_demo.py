"""The demo backend walkthrough: SHOW SKETCHES, create, monitor, query.

Mirrors Section 3 of the paper programmatically:

* pre-built models are registered and instantly queryable,
* a new sketch is defined and its training monitored stage by stage,
* a second model trains incrementally *while* the pre-built sketch keeps
  answering queries (the demo's third latency mitigation),
* sketches are persisted to disk and reloaded.

Run with:  python examples/sketch_manager_demo.py
"""

import os
import tempfile

from repro.core import DeepSketch, SketchConfig, build_sketch
from repro.datasets import load_dataset
from repro.demo import SketchManager
from repro.workload import spec_for_imdb

FAST = SketchConfig(n_training_queries=1500, epochs=6, sample_size=300, hidden_units=32)
SQL = (
    "SELECT COUNT(*) FROM title t, movie_keyword mk "
    "WHERE mk.movie_id=t.id AND t.production_year>2010;"
)


def main() -> None:
    db = load_dataset("imdb", scale=0.5)
    manager = SketchManager(db)

    # -- pre-built (high quality) models, queryable right away ---------
    prebuilt, _ = build_sketch(
        db, spec_for_imdb(), name="prebuilt-joblight", config=FAST
    )
    manager.register_sketch(prebuilt)
    print("SHOW SKETCHES ->", manager.list_sketches())

    # -- create a new sketch with monitoring --------------------------
    spec_small = spec_for_imdb(tables=("title", "movie_keyword", "movie_info"))
    sketch, report = manager.create_sketch("three-tables", spec_small, config=FAST)
    monitor = manager.monitor_for("three-tables")
    print("\ncreation stages:", " -> ".join(monitor.stages_seen()))
    for message in monitor.epoch_messages():
        print("  ", message)

    # -- train a third model while querying the first ------------------
    print("\nincremental build (querying 'prebuilt-joblight' between epochs):")
    manager.start_build("background-model", spec_small, config=FAST)
    while manager.pending_builds():
        pending = manager.step_build("background-model")
        estimate = manager.query("prebuilt-joblight", SQL)
        print(
            f"  epoch {pending.epochs_done}/{FAST.epochs} done; "
            f"prebuilt sketch answered {estimate:.0f} meanwhile"
        )
    print("SHOW SKETCHES ->", manager.list_sketches())

    # -- persistence ----------------------------------------------------
    path = os.path.join(tempfile.gettempdir(), "deep-sketch-demo.bin")
    size = sketch.save(path)
    loaded = DeepSketch.load(path)
    print(f"\nsaved 'three-tables' to {path} ({size / 1024:.0f} KiB)")
    print(f"loaded sketch answers: {loaded.estimate(SQL):.0f}")


if __name__ == "__main__":
    main()

"""Bursty templated traffic against a live gateway, end to end.

Demonstrates the templated workload subsystem driving the serving
tier's degradation contract:

1. build a small Deep Sketch over the synthetic IMDb,
2. generate a seedable **template suite** (range / BETWEEN / IN
   predicates, join chains, self-joins) and label it with exact
   cardinalities,
3. replay it through a ``TrafficShaper`` — Zipf-skewed template mix,
   on/off bursts, **open-loop** (arrival times never wait for
   completions) — against a two-backend ``SketchGateway`` fleet with
   bounded admission queues,
4. audit the contract: every future resolves (zero hangs), failures
   carry structured codes only, and each backend's queue-depth
   high-water mark stays within its configured bound.

Run from the repository root::

    python examples/workload_stress.py           # full (a minute or two)
    python examples/workload_stress.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve.bench import run_bursty_stress_benchmark  # noqa: E402
from repro.workload import (  # noqa: E402
    SuiteConfig,
    TrafficConfig,
    generate_template_suite,
    spec_for_imdb,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--templates", type=int, default=10)
    parser.add_argument("--per-template", type=int, default=20)
    parser.add_argument("--requests", type=int, default=512)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.05, 300, 2
        args.samples, args.hidden = 50, 16
        args.templates, args.per_template = 5, 8
        args.requests, args.queue_depth = 96, 8

    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    # The suite uses the JOB-light spec so every instance is in scope
    # for the sketch; swap in spec_for_imdb_templates for deeper chains
    # (out-of-scope templates then fail with structured route codes).
    spec = spec_for_imdb(max_joins=2)
    manager.create_sketch(
        "imdb",
        spec,
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )

    print(
        f"generating {args.templates} templates x {args.per_template} "
        "instances...",
        file=sys.stderr,
    )
    suite = generate_template_suite(
        db,
        spec,
        SuiteConfig(
            n_templates=args.templates,
            queries_per_template=args.per_template,
            max_joins=2,
        ),
        seed=13,
    )
    suite = suite.label(db, min_queries_per_template=2)
    print(f"suite digest {suite.digest()[:12]}", file=sys.stderr)

    traffic = TrafficConfig(
        n_requests=args.requests,
        rate_qps=3000.0,
        zipf_s=1.1,
        burst_on_s=0.02,
        burst_off_s=0.03,
    )
    print(
        f"replaying {args.requests} bursty requests through a 2-backend "
        f"gateway (queue depth {args.queue_depth})...",
        file=sys.stderr,
    )
    stress = run_bursty_stress_benchmark(
        manager,
        "imdb",
        suite,
        traffic=traffic,
        n_backends=2,
        max_queue_depth=args.queue_depth,
        max_batch_size=max(8, args.queue_depth // 2),
        seed=1,
    )

    print(stress.report())
    print(json.dumps(stress.audit(), indent=2))
    if not stress.ok:
        print("STRESS AUDIT FAILED", file=sys.stderr)
        return 1
    print("stress audit passed: zero hung futures, structured codes only, "
          "queues bounded", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

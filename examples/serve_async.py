"""Concurrent clients against the asynchronous sketch server.

Demonstrates the latency-bounded serving loop end to end:

1. build a small Deep Sketch over the synthetic IMDb,
2. start an ``AsyncSketchServer`` (background flush loop),
3. fire a templated query stream from several client threads — each
   client submits requests and waits on futures, exactly like
   independent application threads would,
4. await a few queries from ``asyncio`` through the same server,
5. print the serving statistics: flush triggers, dedup, cache hits,
   and queue-wait percentiles.

Run from the repository root::

    python examples/serve_async.py           # full (a minute or two)
    python examples/serve_async.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import AsyncServeConfig, AsyncSketchServer  # noqa: E402
from repro.serve.bench import tile_workload  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)


def build_manager(args) -> SketchManager:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "imdb",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )
    return manager


def run_clients(server: AsyncSketchServer, workload, n_clients: int) -> float:
    """Each client thread submits its share and waits on the futures.

    Failures inside a client thread (timeouts, failed responses) are
    collected and re-raised in the caller — a thread's exception must
    not be swallowed by ``Thread.join``, or the smoke run would pass
    while serving is broken.
    """
    failures: list[BaseException] = []

    def client(client_id: int) -> None:
        try:
            futures = [
                server.submit(workload[i])
                for i in range(client_id, len(workload), n_clients)
            ]
            for future in futures:
                response = future.result(timeout=60)
                if not response.ok:
                    raise RuntimeError(f"request failed: {response.error}")
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(n_clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(f"{len(failures)} client(s) failed") from failures[0]
    return time.perf_counter() - start


async def run_asyncio_clients(server: AsyncSketchServer, queries) -> None:
    """The same server is awaitable from an event loop."""
    responses = await asyncio.gather(
        *[server.submit_async(q) for q in queries]
    )
    assert all(r.ok for r in responses)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=512)
    parser.add_argument("--distinct", type=int, default=40)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.05, 300, 2
        args.samples, args.hidden = 50, 16
        args.requests, args.distinct = 64, 10

    manager = build_manager(args)
    distinct = generate_job_light(
        manager.db, JobLightConfig(n_queries=args.distinct, seed=1)
    )
    workload = tile_workload(distinct, args.requests)

    config = AsyncServeConfig(max_wait_ms=args.max_wait_ms)
    with AsyncSketchServer(manager, config) as server:
        elapsed = run_clients(server, workload, args.clients)
        asyncio.run(run_asyncio_clients(server, distinct[: min(8, len(distinct))]))

        stats = server.stats
        waits = server.wait_summary()
        print(
            f"{stats.n_answered} requests from {args.clients} threads in "
            f"{elapsed:.3f}s ({len(workload) / elapsed:.0f} q/s)"
        )
        print(
            f"flushes: {stats.n_flushes} "
            f"({stats.n_flushes_full} full, {stats.n_flushes_timed} timed, "
            f"{stats.n_flushes_idle} idle, {stats.n_flushes_drain} drain)"
        )
        print(
            f"shared work: {stats.n_deduped} deduped, "
            f"{stats.n_cache_hits} cache hits "
            f"({stats.n_fast_cache_hits} at submit), "
            f"{stats.n_forward_batches} forward batches"
        )
        print(
            f"queue wait: p50 {waits['p50'] * 1000:.2f}ms, "
            f"p99 {waits['p99'] * 1000:.2f}ms "
            f"(max_wait_ms={args.max_wait_ms:g})"
        )
        print(f"feature cache: {server.feature_cache!r}")
        if stats.n_errors:
            print(f"errors: {stats.n_errors}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Plan advice as a service: one POST, a whole join order.

Demonstrates the ``/v1/plan`` advisory surface end to end:

1. build a small Deep Sketch over the synthetic IMDb,
2. start a ``SketchHTTPServer`` front door on an ephemeral port and
   feature-detect the capability from ``/v1/healthz`` (``"plan": true``),
3. speak the wire protocol by hand — the raw JSON a ``curl`` user
   would POST to ``/v1/plan`` — and read the structured response:
   the chosen join order, its estimated C_out cost, and every
   connected subplan's served cardinality,
4. ask the ``RemoteSketchServer`` SDK for plans on a JOB-light
   workload; all subplan estimates for a query travel as **one**
   batched round trip,
5. assert **parity**: every remote plan is *identical* (same join
   order, same cost) to what the in-process
   ``PlanOptimizer`` chooses from the same sketch — the wire does not
   change plans,
6. show a structured failure: malformed SQL answers ``code="parse"``,
   never an exception or a hang.

Run from the repository root::

    python examples/plan_advisory.py           # full (a minute or two)
    python examples/plan_advisory.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.optimizer import PlanOptimizer  # noqa: E402
from repro.serve import RemoteSketchServer, SketchHTTPServer  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: The acceptance bound: remote plan cost vs the in-process optimizer.
PARITY_RTOL = 1e-12


def build_manager(args) -> SketchManager:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "imdb",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )
    return manager


def curl_style_plan(url: str, sql: str) -> dict:
    """What ``curl -X POST $URL/v1/plan -d '{...}'`` would do."""
    body = json.dumps(
        {"protocol_version": 1, "sql": sql, "sketch": None}
    ).encode()
    request = urllib.request.Request(
        url + "/v1/plan",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--plans", type=int, default=30)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.05, 300, 2
        args.samples, args.hidden = 50, 16
        args.plans = 10

    manager = build_manager(args)
    queries = [
        q
        for q in generate_job_light(
            manager.db, JobLightConfig(n_queries=args.plans, seed=1)
        )
        if q.num_joins >= 1
    ]
    sketch = manager.get_sketch("imdb")

    # The in-process reference: the DP optimizer over the same sketch.
    optimizer = PlanOptimizer(manager.db, sketch)
    reference = {q: optimizer.optimize(q) for q in queries}

    with SketchHTTPServer(manager, port=0) as front_door:
        print(f"front door listening on {front_door.url}", file=sys.stderr)

        # 1. feature detection, then the raw wire protocol
        with RemoteSketchServer(front_door.url) as remote:
            health = remote.healthz()
            print(f"healthz: plan={health['plan']} status={health['status']}")
            assert remote.plan_capable(health)

            envelope = curl_style_plan(front_door.url, queries[0].to_sql())
            print(
                "curl-style envelope: "
                f"ok={envelope['ok']} plan={envelope['plan']} "
                f"cost={envelope['estimated_cost']:.1f} "
                f"subplans={len(envelope['subplans'])} "
                f"server_ms={envelope['server_ms']:.2f}"
            )

            # 2. the SDK: one call per query, one round trip per call
            worst = 0.0
            n_divergent = 0
            n_degraded = 0
            for query in queries:
                response = remote.plan(query)
                assert response.ok, response.error
                local = reference[query]
                if str(response.plan) != str(local.plan):
                    n_divergent += 1
                    continue
                n_degraded += response.degraded
                scale = max(abs(local.estimated_cost), 1e-300)
                worst = max(
                    worst,
                    abs(response.estimated_cost - local.estimated_cost)
                    / scale,
                )
            print(
                f"parity: {len(queries)} plans, {n_divergent} divergent, "
                f"max cost rel diff {worst:.2e}, {n_degraded} degraded"
            )
            widest = max(queries, key=lambda q: q.num_joins)
            shown = remote.plan(widest)
            print(
                f"advice for {widest.num_joins + 1} relations: "
                f"{shown.join_order}  (C_out {shown.estimated_cost:.1f}, "
                f"estimate {shown.estimate_ms:.2f} ms + "
                f"enumerate+DP {shown.enumerate_ms:.2f} ms)"
            )

            # 3. failure is a value with a code, not a hang
            broken = remote.plan("SELECT nonsense")
            print(f"malformed SQL: code={broken.code} error={broken.error!r}")
            assert not broken.ok and broken.code == "parse"

    if n_divergent or worst > PARITY_RTOL:
        print(
            f"FAIL: served plans diverged ({n_divergent} different plans, "
            f"max cost rel diff {worst:.2e})",
            file=sys.stderr,
        )
        return 1
    print("remote plan == in-process plan: advice without the optimizer")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sketch lifecycle, end to end: drift watch, shadow refresh, hot swap.

Demonstrates the background lifecycle subsystem the paper's closing
remark asks for ("more research is needed to automate the training and
utilization of Deep Sketches"):

1. build a small Deep Sketch over the synthetic IMDb, save it to a
   versioned **registry** (checksummed blobs + atomic manifest), and
   serve it through the async engine,
2. mutate the database underneath the sketch (production years shifted
   three decades) so its materialized samples drift,
3. run one **lifecycle pass**: the drift detector trips, a replacement
   is shadow-trained off the serving path, published to the registry as
   v2, and hot-swapped into the live engine with zero dropped requests,
4. **roll back**: re-activate v1 from the registry (checksum-verified)
   and swap it in — the one-command recovery story for a bad refresh,
5. inspect the whole story via ``engine.stats()`` — swaps, last swap,
   per-sketch versions, and lifecycle state (the same block
   ``/v1/healthz`` serves over HTTP).

Run from the repository root::

    python examples/lifecycle_demo.py           # full (a minute or two)
    python examples/lifecycle_demo.py --tiny    # smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.core import SketchConfig, build_sketch  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncServeConfig,
    AsyncSketchServer,
    LifecycleConfig,
    LifecycleManager,
    SketchRegistry,
)
from repro.workload import spec_for_imdb  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--refresh-queries", type=int, default=600)
    parser.add_argument("--refresh-epochs", type=int, default=3)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale, args.queries, args.epochs = 0.06, 300, 2
        args.samples, args.hidden = 50, 16
        args.refresh_queries, args.refresh_epochs = 120, 2

    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    spec = spec_for_imdb(max_joins=2)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    sketch, _ = build_sketch(
        db,
        spec,
        name="imdb",
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=0,
        ),
    )
    manager = SketchManager(db=None)
    manager.register_sketch(sketch)

    sql = (
        "SELECT COUNT(*) FROM title t, movie_keyword mk "
        "WHERE mk.movie_id=t.id AND t.production_year>2005;"
    )

    with tempfile.TemporaryDirectory() as registry_dir:
        registry = SketchRegistry(registry_dir)
        v1 = registry.save(sketch, note="initial build")
        print(f"registry: saved v{v1} (active)", file=sys.stderr)

        with AsyncSketchServer(manager, AsyncServeConfig()) as server:
            lifecycle = LifecycleManager(
                server,
                db,
                {"imdb": spec},
                registry=registry,
                config=LifecycleConfig(
                    check_interval_s=5.0,
                    refresh_queries=args.refresh_queries,
                    refresh_epochs=args.refresh_epochs,
                ),
                seed=0,
            )

            before = server.estimate(sql).estimate
            print(f"serving v1: estimate({sql[:40]}...) = {before:.0f}")

            # -- drift: the world changes under the sketch --------------
            print(
                "mutating database (production years shifted 3 decades) "
                "and running one lifecycle pass...",
                file=sys.stderr,
            )
            title = db.table("title")
            title.columns["production_year"].values[:] = np.clip(
                title.columns["production_year"].values - 30, 1880, 2019
            )
            outcome = lifecycle.run_once()
            state = lifecycle.state()["sketches"]["imdb"]
            print(
                f"lifecycle pass: drift {state['last_drift']:.3f}, "
                f"outcome {outcome['imdb']!r}, "
                f"{state['refreshes']} refresh(es)"
            )
            after = server.estimate(sql).estimate
            print(f"serving v2: same query now estimates {after:.0f}")
            print(
                "registry:",
                json.dumps(registry.describe()["imdb"]),
            )

            # -- rollback: one command back to the known-good version ---
            restored = lifecycle.rollback("imdb")
            rolled = server.estimate(sql).estimate
            print(
                f"rolled back to v{restored}: same query estimates "
                f"{rolled:.0f} again"
            )

            stats = server.engine.stats()
            print("engine lifecycle telemetry:")
            print(
                json.dumps(
                    {
                        "swaps": stats["swaps"],
                        "last_swap": stats["last_swap"],
                        "versions": stats["versions"],
                        "lifecycle": stats["lifecycle"],
                    },
                    indent=2,
                )
            )

    ok = (
        outcome.get("imdb") == "idle"
        and restored == 1
        and stats["swaps"] == 2
        and stats["versions"]["imdb"]["registry_version"] == 1
    )
    if not ok:
        print("LIFECYCLE DEMO FAILED", file=sys.stderr)
        return 1
    print(
        "lifecycle demo passed: drift -> shadow refresh -> hot swap -> "
        "rollback, previous version never dropped a request",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

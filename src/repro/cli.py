"""Command-line interface: build, inspect, and query Deep Sketches.

The file-based analogue of the demo's workflow::

    python -m repro build --dataset imdb --scale 0.5 \
        --queries 5000 --epochs 12 --samples 500 --out imdb.sketch
    python -m repro info imdb.sketch
    python -m repro estimate imdb.sketch \
        "SELECT COUNT(*) FROM title t WHERE t.production_year>2010;"
    python -m repro plan \
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id=t.id;" imdb.sketch
    python -m repro compare --dataset imdb --scale 0.5 imdb.sketch \
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id=t.id AND t.production_year>2010;"
"""

from __future__ import annotations

import argparse
import sys

from .core import DeepSketch, SketchConfig, build_sketch
from .datasets import load_dataset
from .errors import ReproError
from .workload import spec_for_imdb, spec_for_tpch

_SPECS = {"imdb": spec_for_imdb, "tpch": spec_for_tpch}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep Sketches: learned cardinality estimation "
        "(reproduction of Kipf et al., SIGMOD 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="train a sketch and save it")
    build.add_argument("--dataset", choices=sorted(_SPECS), default="imdb")
    build.add_argument("--scale", type=float, default=0.5)
    build.add_argument("--queries", type=int, default=5000,
                       help="number of training queries")
    build.add_argument("--epochs", type=int, default=12)
    build.add_argument("--samples", type=int, default=500,
                       help="materialized samples per table")
    build.add_argument("--hidden", type=int, default=64,
                       help="MSCN hidden units")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--name", default=None, help="sketch name")
    build.add_argument("--out", required=True, help="output path")

    info = commands.add_parser("info", help="describe a saved sketch")
    info.add_argument("sketch", help="path to a saved sketch")

    estimate = commands.add_parser(
        "estimate",
        help="estimate a SQL query (against a local sketch file, or a "
        "remote serving endpoint via --url)",
    )
    estimate.add_argument("sketch", nargs="?", default=None,
                          help="path to a saved sketch (omit with --url)")
    estimate.add_argument("sql", help="SELECT COUNT(*) query text")
    estimate.add_argument("--url", default=None,
                          help="estimate remotely against a running "
                          "'repro serve --http' front door "
                          "(e.g. http://127.0.0.1:8080)")

    plan = commands.add_parser(
        "plan",
        help="join-order advice for one SQL query: every connected "
        "subplan estimated as one batch, the answers injected into "
        "the C_out dynamic-programming enumerator (local sketch "
        "files, or one POST /v1/plan round trip via --url)",
    )
    plan.add_argument("sql", help="SELECT COUNT(*) query text")
    plan.add_argument("sketches", nargs="*",
                      help="saved sketch file(s); the query routes to the "
                      "narrowest covering sketch (omit with --url)")
    plan.add_argument("--url", default=None,
                      help="plan remotely against a running "
                      "'repro serve --http' front door or gateway "
                      "(e.g. http://127.0.0.1:8080)")
    plan.add_argument("--sketch", default=None,
                      help="pin the plan to a named sketch instead of "
                      "routing by table coverage")

    compare = commands.add_parser(
        "compare",
        help="estimate with the sketch AND the baselines AND the truth",
    )
    compare.add_argument("--dataset", choices=sorted(_SPECS), default="imdb")
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("sketch", help="path to a saved sketch")
    compare.add_argument("sql", help="SELECT COUNT(*) query text")

    serve = commands.add_parser(
        "serve",
        help="answer a stream of SQL queries with batched estimation, "
        "or run the HTTP front door (--http)",
    )
    serve.add_argument("sketches", nargs="+",
                       help="saved sketch file(s); queries are routed to "
                       "the narrowest covering sketch")
    serve.add_argument("--sql", default=None,
                       help="stream mode: file with one SQL query per line "
                       "('-' = stdin, the default)")
    serve.add_argument("--http", action="store_true",
                       help="serve over HTTP instead of a SQL stream: "
                       "POST /v1/estimate, POST /v1/estimate_batch, "
                       "GET /v1/stats, GET /v1/healthz (versioned JSON "
                       "wire protocol; stop with Ctrl-C)")
    serve.add_argument("--host", default=None,
                       help="--http only: bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="--http only: TCP port (default 8080; 0 picks "
                       "an ephemeral port)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="micro-batch size per model forward pass")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the per-sketch estimate cache")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve through the asynchronous latency-bounded "
                       "facade (background flush loop, request dedup, "
                       "shared feature cache)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="async/http only: max queueing delay before a "
                       "partial micro-batch is flushed")
    serve.add_argument("--executor", choices=("inline", "thread", "process"),
                       default="inline",
                       help="where micro-batches execute: the calling/flush "
                       "thread (inline), a thread pool, or a process pool "
                       "of shipped weight snapshots (multi-core)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker count for --executor thread/process")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="admission control: bound on buffered requests; "
                       "overload returns structured shed errors instead of "
                       "queueing without limit (meant for --async, where a "
                       "background flusher drains while clients submit; the "
                       "sync facade buffers the whole stream first, so a "
                       "bound below the stream length sheds its tail)")
    serve.add_argument("--shed-policy", choices=("reject", "oldest"),
                       default="reject",
                       help="who loses when the queue is full: the new "
                       "request (reject) or the longest-waiting one (oldest)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline: requests waiting longer "
                       "resolve as structured deadline errors instead of "
                       "consuming model time (meant for --async; the sync "
                       "facade buffers the whole stream before one flush, "
                       "so a deadline shorter than that buffering window "
                       "expires the stream's head)")

    gateway = commands.add_parser(
        "gateway",
        help="run the sharded multi-node serving gateway: one wire-v1 "
        "front door fanning out over N backend servers with "
        "replication, health-checked failover, and merged fleet stats",
    )
    gateway.add_argument("sketches", nargs="*",
                         help="local-fleet mode: saved sketch file(s); "
                         "spawns --shards local backend servers on "
                         "ephemeral ports and shards the sketches "
                         "across them (omit when using --backend)")
    gateway.add_argument("--backend", action="append", default=None,
                         metavar="URL",
                         help="existing backend front door to fan out "
                         "over (repeatable); mutually exclusive with "
                         "sketch files")
    gateway.add_argument("--shards", type=int, default=None,
                         help="local-fleet mode: number of backend "
                         "servers to spawn (default: one per sketch)")
    gateway.add_argument("--replicas", type=int, default=1,
                         help="local-fleet mode: register each sketch "
                         "on this many shards (replicating a hot "
                         "sketch scales its throughput and survives "
                         "backend loss)")
    gateway.add_argument("--host", default=None,
                         help="gateway bind address (default 127.0.0.1)")
    gateway.add_argument("--port", type=int, default=None,
                         help="gateway TCP port (default 8080; 0 picks "
                         "an ephemeral port)")
    gateway.add_argument("--retries", type=int, default=2,
                         help="extra attempts per request after the "
                         "first, each against the next live replica")
    gateway.add_argument("--backoff-ms", type=float, default=50.0,
                         help="initial failover backoff (doubles per "
                         "retry, capped at 1s; connection loss fails "
                         "over without waiting)")
    gateway.add_argument("--health-interval", type=float, default=1.0,
                         help="seconds between backend health probes "
                         "(<= 0 disables the probe thread)")
    gateway.add_argument("--timeout", type=float, default=30.0,
                         help="per-round-trip timeout to a backend")
    gateway.add_argument("--max-batch", type=int, default=256,
                         help="local-fleet mode: micro-batch size on "
                         "the spawned backends")
    gateway.add_argument("--no-cache", action="store_true",
                         help="local-fleet mode: disable the spawned "
                         "backends' estimate caches")

    workload = commands.add_parser(
        "workload",
        help="templated workload suites: generate, split, and replay "
        "them as skewed/bursty traffic against a serving endpoint",
    )
    wl_commands = workload.add_subparsers(dest="workload_command", required=True)

    wl_gen = wl_commands.add_parser(
        "generate",
        help="draw a seeded template suite (joins, self-joins, range/"
        "string/IN predicate slots) and write it as JSON",
    )
    wl_gen.add_argument("--dataset", choices=sorted(_SPECS), default="imdb")
    wl_gen.add_argument("--scale", type=float, default=0.2)
    wl_gen.add_argument("--templates", type=int, default=8,
                        help="distinct templates to draw")
    wl_gen.add_argument("--per-template", dest="per_template", type=int,
                        default=50, help="query instances per template")
    wl_gen.add_argument("--max-joins", dest="max_joins", type=int, default=4)
    wl_gen.add_argument("--seed", type=int, default=0)
    wl_gen.add_argument("--label", action="store_true",
                        help="execute every instance for its true "
                        "cardinality (drops empty-result instances)")
    wl_gen.add_argument("--min-per-template", dest="min_per_template",
                        type=int, default=2,
                        help="--label only: drop templates left with "
                        "fewer than this many non-empty instances")
    wl_gen.add_argument("--out", default="-",
                        help="output JSON path ('-' = stdout)")

    wl_split = wl_commands.add_parser(
        "split",
        help="split a suite for generalization testing: held-out "
        "templates (default) or held-out literals (--within)",
    )
    wl_split.add_argument("suite", help="suite JSON from 'workload generate'")
    wl_split.add_argument("--test-fraction", dest="test_fraction",
                         type=float, default=0.25)
    wl_split.add_argument("--within", action="store_true",
                         help="hold literals out inside every template "
                         "instead of holding whole templates out")
    wl_split.add_argument("--seed", type=int, default=0)
    wl_split.add_argument("--train-out", dest="train_out", required=True,
                         help="output JSON path for the training side")
    wl_split.add_argument("--test-out", dest="test_out", required=True,
                         help="output JSON path for the test side")

    wl_replay = wl_commands.add_parser(
        "replay",
        help="replay a suite as a Zipf-skewed, bursty, open-loop stream "
        "against a serving endpoint and audit the outcome",
    )
    wl_replay.add_argument("suite", help="suite JSON from 'workload generate'")
    wl_replay.add_argument("sketches", nargs="*",
                          help="saved sketch file(s) for local mode: an "
                          "async server is spun up in-process (omit "
                          "with --url)")
    wl_replay.add_argument("--url", default=None,
                          help="replay against a running front door or "
                          "gateway (e.g. http://127.0.0.1:8080) instead "
                          "of a local server")
    wl_replay.add_argument("--requests", type=int, default=256)
    wl_replay.add_argument("--rate", type=float, default=2000.0,
                          help="arrival rate inside ON windows (q/s)")
    wl_replay.add_argument("--zipf-s", dest="zipf_s", type=float, default=1.1,
                          help="template-popularity skew (0 = uniform)")
    wl_replay.add_argument("--burst-on-ms", dest="burst_on_ms", type=float,
                          default=50.0)
    wl_replay.add_argument("--burst-off-ms", dest="burst_off_ms", type=float,
                          default=100.0)
    wl_replay.add_argument("--time-scale", dest="time_scale", type=float,
                          default=1.0,
                          help="multiplier on scheduled gaps (0 = submit "
                          "as fast as possible)")
    wl_replay.add_argument("--timeout", type=float, default=60.0,
                          help="future-collection deadline (seconds)")
    wl_replay.add_argument("--seed", type=int, default=0)
    wl_replay.add_argument("--max-batch", type=int, default=64,
                          help="local mode: micro-batch size")
    wl_replay.add_argument("--max-queue-depth", type=int, default=None,
                          help="local mode: admission-control bound")

    lifecycle = commands.add_parser(
        "lifecycle",
        help="versioned model registry: save sketch versions, pin, "
        "roll back, and inspect the fleet's lifecycle state",
    )
    lc_commands = lifecycle.add_subparsers(
        dest="lifecycle_command", required=True
    )

    lc_save = lc_commands.add_parser(
        "save",
        help="store a saved sketch file as the next registry version "
        "(checksummed blob + manifest entry)",
    )
    lc_save.add_argument("sketch", help="path to a saved sketch file")
    lc_save.add_argument("--registry", required=True,
                         help="registry root directory (created if missing)")
    lc_save.add_argument("--note", default="",
                         help="free-form note recorded in the manifest")
    lc_save.add_argument("--no-activate", dest="activate",
                         action="store_false",
                         help="record the version without making it active")

    lc_list = lc_commands.add_parser(
        "list",
        help="list registered sketches with their active/pinned versions",
    )
    lc_list.add_argument("--registry", required=True)

    lc_status = lc_commands.add_parser(
        "status",
        help="full registry manifest as JSON (every version, checksums, "
        "notes, rollback count)",
    )
    lc_status.add_argument("--registry", required=True)

    lc_pin = lc_commands.add_parser(
        "pin",
        help="pin a version as the rollback target for a sketch",
    )
    lc_pin.add_argument("name", help="sketch name in the registry")
    lc_pin.add_argument("version", type=int, help="version number to pin")
    lc_pin.add_argument("--registry", required=True)

    lc_rollback = lc_commands.add_parser(
        "rollback",
        help="activate the pinned version (or the latest older one), "
        "verify its checksum, and optionally write the restored "
        "sketch to a file",
    )
    lc_rollback.add_argument("name", help="sketch name in the registry")
    lc_rollback.add_argument("--registry", required=True)
    lc_rollback.add_argument("--out", default=None,
                             help="write the restored sketch here so it "
                             "can be re-served")

    bench = commands.add_parser(
        "bench-serve",
        help="measure single-query vs batched serving throughput",
    )
    bench.add_argument("--scale", type=float, default=0.3,
                       help="synthetic IMDb scale factor")
    bench.add_argument("--queries", type=int, default=2000,
                       help="training queries for the benchmark sketch")
    bench.add_argument("--epochs", type=int, default=4)
    bench.add_argument("--samples", type=int, default=500)
    bench.add_argument("--hidden", type=int, default=64)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--distinct", type=int, default=70,
                       help="distinct JOB-light-style queries")
    bench.add_argument("--batch", type=int, default=512,
                       help="total requests (distinct queries tiled)")
    bench.add_argument("--max-batch", type=int, default=256,
                       help="micro-batch size per model forward pass")
    bench.add_argument("--executor", choices=("inline", "thread", "process"),
                       default="inline",
                       help="executor for the serving-engine pass")
    bench.add_argument("--workers", type=int, default=2,
                       help="worker count for --executor thread/process")
    bench.add_argument("--tiny", action="store_true",
                       help="smoke-test configuration (seconds, not minutes)")
    return parser


def _cmd_build(args) -> int:
    db = load_dataset(args.dataset, scale=args.scale)
    spec = _SPECS[args.dataset]()
    config = SketchConfig(
        sample_size=args.samples,
        n_training_queries=args.queries,
        epochs=args.epochs,
        hidden_units=args.hidden,
        seed=args.seed,
    )
    name = args.name or f"{args.dataset}-sketch"

    def progress(event):
        if event.stage == "train" and event.message:
            print(f"  {event.message}")

    sketch, report = build_sketch(db, spec, name=name, config=config, progress=progress)
    size = sketch.save(args.out)
    print(
        f"built {name!r} in {report.total_seconds:.1f}s "
        f"(val mean q-error {report.training.final_val_mean_qerror:.2f}); "
        f"saved {size / 1024:.0f} KiB to {args.out}"
    )
    return 0


def _cmd_info(args) -> int:
    sketch = DeepSketch.load(args.sketch)
    print(f"name       : {sketch.name}")
    print(f"tables     : {', '.join(sketch.tables)}")
    print(f"joins      : {len(sketch.featurizer.joins)}")
    print(f"columns    : {len(sketch.featurizer.columns)}")
    print(f"parameters : {sketch.model.num_parameters()}")
    print(f"samples    : {sketch.samples.total_rows()} rows "
          f"({sketch.samples.sample_size} per table)")
    print(f"footprint  : {sketch.footprint_bytes() / 1024:.0f} KiB")
    for key, value in sorted(sketch.metadata.items()):
        print(f"meta.{key}: {value}")
    return 0


def _cmd_estimate(args) -> int:
    if args.url is not None:
        from .serve import RemoteSketchServer

        with RemoteSketchServer(args.url) as client:
            response = client.estimate(args.sql)
        if not response.ok:
            print(f"error[{response.code}]: {response.error}", file=sys.stderr)
            return 1
        print(f"{response.estimate:.0f}")
        return 0
    sketch = DeepSketch.load(args.sketch)
    estimate = sketch.estimate(args.sql)
    print(f"{estimate:.0f}")
    return 0


def _cmd_plan(args) -> int:
    import json

    if args.url is not None:
        from .serve import RemoteSketchServer

        with RemoteSketchServer(args.url) as client:
            response = client.plan(args.sql, args.sketch)
    else:
        from .demo import SketchManager
        from .serve import SketchServer

        manager = SketchManager(db=None)
        for path in args.sketches:
            manager.register_sketch(DeepSketch.load(path))
        with SketchServer(manager) as server:
            response = server.plan(args.sql, args.sketch)
    payload = {
        "ok": response.ok,
        "join_order": response.join_order,
        "estimated_cost": response.estimated_cost,
        "sketch": response.sketch,
        "degraded": response.degraded,
        "subplans": [
            {
                "aliases": list(sub.aliases),
                "estimate": sub.estimate,
                "cached": sub.cached,
                "degraded": sub.degraded,
                "code": sub.code,
                "error": sub.error,
            }
            for sub in response.subplans
        ],
        "error": response.error,
        "code": response.code,
        "estimate_ms": response.estimate_ms,
        "enumerate_ms": response.enumerate_ms,
    }
    print(json.dumps(payload, indent=2))
    return 0 if response.ok else 1


def _cmd_compare(args) -> int:
    from .baselines import HyperEstimator, PostgresEstimator
    from .db import execute_count, parse_sql
    from .metrics import qerror

    sketch = DeepSketch.load(args.sketch)
    db = load_dataset(args.dataset, scale=args.scale)
    query = parse_sql(args.sql)
    truth = execute_count(db, query)
    rows = [
        ("Deep Sketch", sketch.estimate(query)),
        ("HyPer", HyperEstimator(db, sample_size=sketch.samples.sample_size).estimate(query)),
        ("PostgreSQL", PostgresEstimator(db).estimate(query)),
    ]
    print(f"{'system':<14} {'estimate':>12} {'q-error':>10}")
    print(f"{'truth':<14} {truth:>12}")
    for name, estimate in rows:
        print(f"{name:<14} {estimate:>12.0f} {qerror(estimate, truth):>10.2f}")
    return 0


def _read_sql_lines(path: str) -> list[str]:
    """SQL queries, one per line; blank lines and #-comments skipped."""
    if path == "-":
        lines = sys.stdin.readlines()
    else:
        with open(path) as f:
            lines = f.readlines()
    return [s for s in (line.strip() for line in lines) if s and not s.startswith("#")]


def _print_stats_snapshot(summary: dict) -> None:
    """The operator-facing shutdown snapshot: one JSON line on stderr.

    Exactly the ``stats_summary()`` / ``GET /v1/stats`` shape, so shed
    and deadline counters, queue depth, and latency percentiles are
    visible without instrumenting code.
    """
    import json

    print("stats_summary: " + json.dumps(summary, sort_keys=True),
          file=sys.stderr)


def _http_wait(server) -> None:
    """Block until the front door stops (Ctrl-C).  Module-level so
    tests can replace it with a driver that talks to ``server.url``."""
    server.join()


def _cmd_serve_http(args, manager, engine_knobs) -> int:
    from .serve import ServeConfig, SketchHTTPServer

    server = SketchHTTPServer(
        manager,
        ServeConfig(max_wait_ms=args.max_wait_ms, **engine_knobs),
        host=args.host if args.host is not None else "127.0.0.1",
        port=args.port if args.port is not None else 8080,
    )
    server.start()
    print(
        f"serving {len(args.sketches)} sketch(es) on {server.url} "
        "(POST /v1/estimate, POST /v1/estimate_batch, GET /v1/stats, "
        "GET /v1/healthz; Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        _http_wait(server)
    except KeyboardInterrupt:
        print("shutting down (draining accepted requests)...", file=sys.stderr)
    finally:
        server.close()
        _print_stats_snapshot(server.stats_summary())
    return 0


def _cmd_serve(args) -> int:
    import time

    from .demo import SketchManager
    from .serve import (
        AsyncServeConfig,
        AsyncSketchServer,
        ServeConfig,
        SketchServer,
    )

    manager = SketchManager(db=None)
    for path in args.sketches:
        manager.register_sketch(DeepSketch.load(path))
    engine_knobs = dict(
        max_batch_size=args.max_batch,
        use_cache=not args.no_cache,
        executor=args.executor,
        executor_workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        shed_policy=args.shed_policy,
        deadline_ms=args.deadline_ms,
    )
    if args.http:
        return _cmd_serve_http(args, manager, engine_knobs)
    requests = _read_sql_lines(args.sql if args.sql is not None else "-")
    if args.use_async:
        server = AsyncSketchServer(
            manager,
            AsyncServeConfig(max_wait_ms=args.max_wait_ms, **engine_knobs),
        )
        start = time.perf_counter()
        with server:
            responses = server.serve(requests)
        elapsed = time.perf_counter() - start
    else:
        with SketchServer(manager, ServeConfig(**engine_knobs)) as server:
            start = time.perf_counter()
            responses = server.serve(requests)
            # Captured before __exit__: executor teardown (process-pool
            # joins) is lifecycle cost, not serving throughput.
            elapsed = time.perf_counter() - start
    for response in responses:
        if response.ok:
            flags = " (cached)" if response.cached else ""
            print(f"{response.estimate:.0f}\t{response.sketch}{flags}")
        else:
            kind = f"error:{response.code}" if response.code else "error"
            print(f"{kind}\t{response.error}")
    stats = server.stats
    summary = server.stats_summary()
    print(
        f"served {stats.n_answered}/{stats.n_requests} requests in "
        f"{elapsed:.3f}s ({stats.n_answered / max(elapsed, 1e-9):.0f} q/s; "
        f"executor={summary['executor']}, "
        f"{stats.n_forward_batches} forward batches, "
        f"{stats.n_cache_hits} cache hits, {stats.n_errors} errors, "
        f"{stats.n_shed} shed, {stats.n_deadline_missed} deadline-missed)",
        file=sys.stderr,
    )
    if args.use_async:
        waits = server.wait_summary()
        print(
            f"async waits: p50 {waits['p50'] * 1000:.2f}ms, "
            f"p99 {waits['p99'] * 1000:.2f}ms "
            f"({stats.n_flushes} flushes: {stats.n_flushes_full} full, "
            f"{stats.n_flushes_timed} timed, {stats.n_flushes_idle} idle, "
            f"{stats.n_flushes_drain} drain; "
            f"{stats.n_deduped} deduped, "
            f"{stats.n_fast_cache_hits} fast cache hits)",
            file=sys.stderr,
        )
    _print_stats_snapshot(summary)
    return 0 if stats.n_errors == 0 else 1


def _shard_assignments(
    n_sketches: int, n_shards: int, replicas: int
) -> list[list[int]]:
    """Round-robin shard map: sketch ``i`` lives on shards
    ``(i + r) % n_shards`` for ``r`` in ``range(replicas)``."""
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for i in range(n_sketches):
        for r in range(replicas):
            shards[(i + r) % n_shards].append(i)
    return shards


def _cmd_gateway(args) -> int:
    from .demo import SketchManager
    from .serve import ServeConfig, SketchGateway, SketchHTTPServer

    local_backends: list = []
    if args.backend:
        urls = list(args.backend)
    else:
        # Local-fleet mode: spawn the backends ourselves and shard the
        # sketch files across them with --replicas-way replication.
        sketches = [DeepSketch.load(path) for path in args.sketches]
        n_shards = args.shards if args.shards is not None else len(sketches)
        config = ServeConfig(
            max_batch_size=args.max_batch, use_cache=not args.no_cache
        )
        assignments = _shard_assignments(
            len(sketches), n_shards, args.replicas
        )
        for members in assignments:
            manager = SketchManager(db=None)
            for i in sorted(set(members)):
                manager.register_sketch(sketches[i])
            server = SketchHTTPServer(manager, config, port=0).start()
            local_backends.append(server)
            names = ", ".join(sketches[i].name for i in sorted(set(members)))
            print(
                f"  shard {server.url}: {names or '(empty)'}",
                file=sys.stderr,
            )
        urls = [server.url for server in local_backends]

    health = args.health_interval if args.health_interval > 0 else None
    door = None
    try:
        gateway = SketchGateway(
            urls,
            timeout=args.timeout,
            retries=args.retries,
            backoff_s=args.backoff_ms / 1000.0,
            health_interval_s=health,
        )
        door = SketchHTTPServer(
            service=gateway,
            host=args.host if args.host is not None else "127.0.0.1",
            port=args.port if args.port is not None else 8080,
        )
        door.start()
        live = sum(
            1 for status in gateway.backend_status().values()
            if status["alive"]
        )
        print(
            f"gateway on {door.url} over {len(urls)} backend(s) "
            f"({live} live; sketches: "
            f"{', '.join(gateway.list_sketches()) or '(none)'}; "
            "Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            _http_wait(door)
        except KeyboardInterrupt:
            print("shutting down the gateway...", file=sys.stderr)
    finally:
        if door is not None:
            summary = door.stats_summary()
            door.close()  # closes the gateway with it
            _print_stats_snapshot(summary)
        for server in local_backends:
            server.close()
    return 0


def _cmd_bench_serve(args) -> int:
    from .demo import SketchManager
    from .serve import run_serving_benchmark
    from .serve.bench import apply_tiny_args
    from .workload import JobLightConfig, generate_job_light

    if args.tiny:
        apply_tiny_args(args)
    db = load_dataset("imdb", scale=args.scale)
    spec = _SPECS["imdb"]()
    manager = SketchManager(db)
    print(
        f"building benchmark sketch (scale={args.scale}, "
        f"{args.queries} training queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec,
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    queries = generate_job_light(
        db, JobLightConfig(n_queries=args.distinct, seed=args.seed + 1)
    )
    result = run_serving_benchmark(
        manager, "bench", queries,
        batch_size=args.batch, max_batch_size=args.max_batch,
        executor=args.executor, executor_workers=args.workers,
    )
    print(result.report())
    if result.n_errors:
        print(
            f"note: {result.n_errors}/{result.n_queries} served requests "
            "errored (isolated per request)",
            file=sys.stderr,
        )
    if result.all_failed:
        print("error: every served request failed", file=sys.stderr)
        return 1
    if not result.identical:
        print("error: batched estimates diverge from the single-query path",
              file=sys.stderr)
        return 1
    return 0


def _write_suite(suite, path: str) -> None:
    import json

    payload = json.dumps(suite.to_json(), indent=2) + "\n"
    if path == "-":
        sys.stdout.write(payload)
    else:
        with open(path, "w") as f:
            f.write(payload)


def _load_suite(path: str):
    import json

    from .workload import TemplateSuite

    with open(path) as f:
        return TemplateSuite.from_json(json.load(f))


def _cmd_workload_generate(args) -> int:
    from .workload import SuiteConfig, generate_template_suite
    from .workload.generator import spec_for_imdb_templates

    db = load_dataset(args.dataset, scale=args.scale)
    if args.dataset == "imdb":
        spec = spec_for_imdb_templates(max_joins=args.max_joins)
    else:
        spec = _SPECS[args.dataset](max_joins=args.max_joins)
    suite = generate_template_suite(
        db,
        spec,
        SuiteConfig(
            n_templates=args.templates,
            queries_per_template=args.per_template,
            max_joins=args.max_joins,
        ),
        seed=args.seed,
    )
    if args.label:
        suite = suite.label(
            db, min_queries_per_template=args.min_per_template
        )
    _write_suite(suite, args.out)
    print(
        f"generated {len(suite)} templates / {suite.n_queries} instances "
        f"({'labeled' if suite.labeled else 'unlabeled'}; "
        f"digest {suite.digest()[:12]}...)",
        file=sys.stderr,
    )
    return 0


def _cmd_workload_split(args) -> int:
    from .workload import split_by_template, split_within_template

    suite = _load_suite(args.suite)
    if args.within:
        split = split_within_template(suite, args.test_fraction, seed=args.seed)
        kind = "held-out literals within every template"
    else:
        split = split_by_template(suite, args.test_fraction, seed=args.seed)
        kind = "held-out templates"
    _write_suite(split.train, args.train_out)
    _write_suite(split.test, args.test_out)
    print(
        f"split by {kind}: train {len(split.train)} templates / "
        f"{split.train.n_queries} instances -> {args.train_out}; "
        f"test {len(split.test)} templates / {split.test.n_queries} "
        f"instances -> {args.test_out}",
        file=sys.stderr,
    )
    return 0


def _cmd_workload_replay(args) -> int:
    import json

    from .workload import TrafficConfig, TrafficShaper

    suite = _load_suite(args.suite)
    shaper = TrafficShaper(
        suite,
        TrafficConfig(
            n_requests=args.requests,
            zipf_s=args.zipf_s,
            rate_qps=args.rate,
            burst_on_s=args.burst_on_ms / 1000.0,
            burst_off_s=args.burst_off_ms / 1000.0,
            time_scale=args.time_scale,
            timeout_s=args.timeout,
        ),
        seed=args.seed,
    )
    if args.url is not None:
        from .serve import RemoteSketchServer

        with RemoteSketchServer(args.url) as service:
            result = shaper.replay(service)
    else:
        from .demo import SketchManager
        from .serve import AsyncServeConfig, AsyncSketchServer

        manager = SketchManager(db=None)
        for path in args.sketches:
            manager.register_sketch(DeepSketch.load(path))
        config = AsyncServeConfig(
            max_batch_size=args.max_batch,
            max_queue_depth=args.max_queue_depth,
        )
        with AsyncSketchServer(manager, config) as service:
            result = shaper.replay(service)
    print(json.dumps(result.audit(), indent=2))
    if not result.ok:
        print(
            f"error: replay audit failed ({result.n_unresolved} hung "
            f"futures, {result.n_unstructured} unstructured failures)",
            file=sys.stderr,
        )
        return 1
    return 0


_WORKLOAD_COMMANDS = {
    "generate": _cmd_workload_generate,
    "split": _cmd_workload_split,
    "replay": _cmd_workload_replay,
}


def _cmd_workload(args) -> int:
    return _WORKLOAD_COMMANDS[args.workload_command](args)


def _open_registry(path: str):
    from .serve.registry import SketchRegistry

    return SketchRegistry(path)


def _cmd_lifecycle_save(args) -> int:
    sketch = DeepSketch.load(args.sketch)
    registry = _open_registry(args.registry)
    version = registry.save(sketch, note=args.note, activate=args.activate)
    state = "active" if args.activate else "inactive"
    print(f"saved {sketch.name!r} as version {version} ({state})")
    return 0


def _cmd_lifecycle_list(args) -> int:
    registry = _open_registry(args.registry)
    names = registry.list_sketches()
    if not names:
        print("registry is empty")
        return 0
    for name in names:
        versions = registry.versions(name)
        active = registry.active_version(name)
        pinned = registry.pinned(name)
        pin_note = f", pinned v{pinned}" if pinned is not None else ""
        print(
            f"{name}: {len(versions)} version(s), "
            f"active v{active}{pin_note}"
        )
    return 0


def _cmd_lifecycle_status(args) -> int:
    import json

    registry = _open_registry(args.registry)
    print(json.dumps(registry.describe(), indent=2))
    return 0


def _cmd_lifecycle_pin(args) -> int:
    registry = _open_registry(args.registry)
    registry.pin(args.name, args.version)
    print(f"pinned {args.name!r} to version {args.version}")
    return 0


def _cmd_lifecycle_rollback(args) -> int:
    registry = _open_registry(args.registry)
    version = registry.rollback(args.name)
    sketch = registry.load(args.name, version)
    if args.out is not None:
        sketch.save(args.out)
        print(
            f"rolled {args.name!r} back to version {version}; "
            f"restored sketch written to {args.out}"
        )
    else:
        print(f"rolled {args.name!r} back to version {version}")
    return 0


_LIFECYCLE_COMMANDS = {
    "save": _cmd_lifecycle_save,
    "list": _cmd_lifecycle_list,
    "status": _cmd_lifecycle_status,
    "pin": _cmd_lifecycle_pin,
    "rollback": _cmd_lifecycle_rollback,
}


def _cmd_lifecycle(args) -> int:
    return _LIFECYCLE_COMMANDS[args.lifecycle_command](args)


_COMMANDS = {
    "build": _cmd_build,
    "info": _cmd_info,
    "estimate": _cmd_estimate,
    "plan": _cmd_plan,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "gateway": _cmd_gateway,
    "workload": _cmd_workload,
    "lifecycle": _cmd_lifecycle,
    "bench-serve": _cmd_bench_serve,
}


def _validate_args(parser: argparse.ArgumentParser, args) -> None:
    """Cross-flag validation argparse cannot express (exits with 2)."""
    if args.command == "estimate":
        if args.url is not None and args.sketch is not None:
            parser.error(
                "estimate takes a sketch path OR --url, not both "
                "(remote mode estimates against the server's sketches)"
            )
        if args.url is None and args.sketch is None:
            parser.error("estimate needs a sketch path (or --url for remote)")
    elif args.command == "plan":
        if args.url is not None and args.sketches:
            parser.error(
                "plan takes sketch file(s) OR --url, not both "
                "(remote mode plans against the server's sketches)"
            )
        if args.url is None and not args.sketches:
            parser.error("plan needs sketch file(s) (or --url for remote)")
    elif args.command == "serve":
        if args.http and args.use_async:
            parser.error(
                "--http and --async are mutually exclusive: the HTTP "
                "front door already drives the background-loop engine"
            )
        if not args.http and (args.host is not None or args.port is not None):
            parser.error("--host/--port only apply to --http mode")
        if args.http and args.sql is not None:
            parser.error(
                "--sql only applies to stream mode: the HTTP front door "
                "takes its queries from the network, not a file"
            )
    elif args.command == "workload" and args.workload_command == "replay":
        if args.url is not None and args.sketches:
            parser.error(
                "workload replay takes sketch files (local mode) OR "
                "--url (remote endpoint), not both"
            )
        if args.url is None and not args.sketches:
            parser.error(
                "workload replay needs sketch file(s) or --url"
            )
    elif args.command == "gateway":
        if bool(args.backend) == bool(args.sketches):
            parser.error(
                "gateway takes sketch files (local-fleet mode) OR "
                "--backend URLs (existing fleet), not both and not "
                "neither"
            )
        if args.backend and (args.shards is not None or args.replicas != 1):
            parser.error(
                "--shards/--replicas only apply to local-fleet mode: "
                "an existing fleet's sharding is decided by what each "
                "backend serves"
            )
        if args.sketches:
            n_shards = (
                args.shards if args.shards is not None else len(args.sketches)
            )
            if n_shards < 1:
                parser.error("--shards must be >= 1")
            if not 1 <= args.replicas <= n_shards:
                parser.error(
                    "--replicas must be between 1 and the shard count "
                    f"({n_shards})"
                )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

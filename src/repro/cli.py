"""Command-line interface: build, inspect, and query Deep Sketches.

The file-based analogue of the demo's workflow::

    python -m repro build --dataset imdb --scale 0.5 \
        --queries 5000 --epochs 12 --samples 500 --out imdb.sketch
    python -m repro info imdb.sketch
    python -m repro estimate imdb.sketch \
        "SELECT COUNT(*) FROM title t WHERE t.production_year>2010;"
    python -m repro compare --dataset imdb --scale 0.5 imdb.sketch \
        "SELECT COUNT(*) FROM title t, movie_keyword mk \
         WHERE mk.movie_id=t.id AND t.production_year>2010;"
"""

from __future__ import annotations

import argparse
import sys

from .core import DeepSketch, SketchConfig, build_sketch
from .datasets import load_dataset
from .errors import ReproError
from .workload import spec_for_imdb, spec_for_tpch

_SPECS = {"imdb": spec_for_imdb, "tpch": spec_for_tpch}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deep Sketches: learned cardinality estimation "
        "(reproduction of Kipf et al., SIGMOD 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="train a sketch and save it")
    build.add_argument("--dataset", choices=sorted(_SPECS), default="imdb")
    build.add_argument("--scale", type=float, default=0.5)
    build.add_argument("--queries", type=int, default=5000,
                       help="number of training queries")
    build.add_argument("--epochs", type=int, default=12)
    build.add_argument("--samples", type=int, default=500,
                       help="materialized samples per table")
    build.add_argument("--hidden", type=int, default=64,
                       help="MSCN hidden units")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--name", default=None, help="sketch name")
    build.add_argument("--out", required=True, help="output path")

    info = commands.add_parser("info", help="describe a saved sketch")
    info.add_argument("sketch", help="path to a saved sketch")

    estimate = commands.add_parser("estimate", help="estimate a SQL query")
    estimate.add_argument("sketch", help="path to a saved sketch")
    estimate.add_argument("sql", help="SELECT COUNT(*) query text")

    compare = commands.add_parser(
        "compare",
        help="estimate with the sketch AND the baselines AND the truth",
    )
    compare.add_argument("--dataset", choices=sorted(_SPECS), default="imdb")
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("sketch", help="path to a saved sketch")
    compare.add_argument("sql", help="SELECT COUNT(*) query text")
    return parser


def _cmd_build(args) -> int:
    db = load_dataset(args.dataset, scale=args.scale)
    spec = _SPECS[args.dataset]()
    config = SketchConfig(
        sample_size=args.samples,
        n_training_queries=args.queries,
        epochs=args.epochs,
        hidden_units=args.hidden,
        seed=args.seed,
    )
    name = args.name or f"{args.dataset}-sketch"

    def progress(event):
        if event.stage == "train" and event.message:
            print(f"  {event.message}")

    sketch, report = build_sketch(db, spec, name=name, config=config, progress=progress)
    size = sketch.save(args.out)
    print(
        f"built {name!r} in {report.total_seconds:.1f}s "
        f"(val mean q-error {report.training.final_val_mean_qerror:.2f}); "
        f"saved {size / 1024:.0f} KiB to {args.out}"
    )
    return 0


def _cmd_info(args) -> int:
    sketch = DeepSketch.load(args.sketch)
    print(f"name       : {sketch.name}")
    print(f"tables     : {', '.join(sketch.tables)}")
    print(f"joins      : {len(sketch.featurizer.joins)}")
    print(f"columns    : {len(sketch.featurizer.columns)}")
    print(f"parameters : {sketch.model.num_parameters()}")
    print(f"samples    : {sketch.samples.total_rows()} rows "
          f"({sketch.samples.sample_size} per table)")
    print(f"footprint  : {sketch.footprint_bytes() / 1024:.0f} KiB")
    for key, value in sorted(sketch.metadata.items()):
        print(f"meta.{key}: {value}")
    return 0


def _cmd_estimate(args) -> int:
    sketch = DeepSketch.load(args.sketch)
    estimate = sketch.estimate(args.sql)
    print(f"{estimate:.0f}")
    return 0


def _cmd_compare(args) -> int:
    from .baselines import HyperEstimator, PostgresEstimator
    from .db import execute_count, parse_sql
    from .metrics import qerror

    sketch = DeepSketch.load(args.sketch)
    db = load_dataset(args.dataset, scale=args.scale)
    query = parse_sql(args.sql)
    truth = execute_count(db, query)
    rows = [
        ("Deep Sketch", sketch.estimate(query)),
        ("HyPer", HyperEstimator(db, sample_size=sketch.samples.sample_size).estimate(query)),
        ("PostgreSQL", PostgresEstimator(db).estimate(query)),
    ]
    print(f"{'system':<14} {'estimate':>12} {'q-error':>10}")
    print(f"{'truth':<14} {truth:>12}")
    for name, estimate in rows:
        print(f"{name:<14} {estimate:>12.0f} {qerror(estimate, truth):>10.2f}")
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "info": _cmd_info,
    "estimate": _cmd_estimate,
    "compare": _cmd_compare,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Estimation-quality metrics and serving telemetry primitives.

The paper reports estimation errors as **q-errors** (Moerkotte et al.,
PVLDB 2009): the factor between the true and the estimated cardinality,

    q(est, true) = max(est / true, true / est)   with q >= 1.

Table 1 of the paper summarizes q-error distributions with the median,
90th, 95th, and 99th percentiles, the maximum, and the mean; this module
computes exactly those rows.

The second half of the module is the serving subsystem's telemetry
vocabulary: :class:`Counter`, :class:`Gauge`, and the windowed
:class:`LatencySummary` (nearest-rank :func:`percentile` over a bounded
deque of recent observations).  The estimation engine
(:class:`repro.serve.engine.EstimationEngine`) maintains one of each —
a queue-depth gauge, shed/deadline-miss counters, and flush-latency /
queue-wait summaries — and snapshots them through its single
``stats()`` call, shared by both server facades.  All three classes are
internally locked so submit threads, the flush loop, and executor
worker threads can update them without external coordination.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

import numpy as np

from .errors import ReproError

#: Estimates and truths are clamped to at least this value before the
#: q-error ratio is formed, matching the reference MSCN evaluation code
#: (a COUNT(*) estimate below one row is never useful to an optimizer).
MIN_CARDINALITY = 1.0


def qerror(estimate: float, truth: float) -> float:
    """Return the q-error between one estimate and one true cardinality.

    Both inputs are clamped to :data:`MIN_CARDINALITY` first, so zero
    (or negative, for a badly behaved estimator) values do not produce
    infinite or undefined errors.
    """
    est = max(float(estimate), MIN_CARDINALITY)
    tru = max(float(truth), MIN_CARDINALITY)
    return max(est / tru, tru / est)


def qerrors(estimates: Iterable[float], truths: Iterable[float]) -> np.ndarray:
    """Vectorized :func:`qerror` over two equal-length sequences."""
    est = np.maximum(np.asarray(list(estimates), dtype=np.float64), MIN_CARDINALITY)
    tru = np.maximum(np.asarray(list(truths), dtype=np.float64), MIN_CARDINALITY)
    if est.shape != tru.shape:
        raise ReproError(
            f"estimates and truths have different lengths: {est.shape} vs {tru.shape}"
        )
    return np.maximum(est / tru, tru / est)


@dataclass(frozen=True)
class QErrorSummary:
    """The q-error distribution summary used by Table 1 of the paper."""

    median: float
    p90: float
    p95: float
    p99: float
    max: float
    mean: float
    count: int

    #: Column order used by the paper's Table 1.
    COLUMNS = ("median", "90th", "95th", "99th", "max", "mean")

    def row(self) -> tuple[float, float, float, float, float, float]:
        """Return the summary as a Table 1 row (median..mean)."""
        return (self.median, self.p90, self.p95, self.p99, self.max, self.mean)

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.COLUMNS, self.row()))

    def __str__(self) -> str:
        cells = "  ".join(f"{v:>10.4g}" for v in self.row())
        return f"{cells}  (n={self.count})"


def _contained_mean(arr: np.ndarray, lo: float, hi: float) -> float:
    """Arithmetic mean of ``arr``, guaranteed inside ``[lo, hi]``.

    ``np.mean``'s pairwise summation can land 1 ULP outside the sample
    range (e.g. ``[1.1] * 3``).  When the fast path escapes the bounds,
    recompute the mean exactly over the same float64 values as
    rationals; the single final ``float()`` conversion is correctly
    rounded and monotone, and ``lo``/``hi`` are members of the sample
    (hence exactly representable), so the result cannot escape.
    """
    mean = float(np.mean(arr))
    if lo <= mean <= hi:
        return mean
    total = sum(map(Fraction, arr.tolist()), Fraction(0))
    return float(total / arr.size)


def summarize_qerrors(errors: Iterable[float]) -> QErrorSummary:
    """Summarize a q-error sample into the paper's Table 1 statistics.

    ``min``/``max``/``mean`` come from one pass over the same float64
    values, and the mean provably lies in ``[min, max]`` (see
    :func:`_contained_mean` — no clamping involved).
    """
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty q-error sample")
    if np.any(arr < 1.0 - 1e-9):
        raise ReproError("q-errors must be >= 1; got a smaller value")
    lo = float(np.min(arr))
    hi = float(np.max(arr))
    return QErrorSummary(
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=hi,
        mean=_contained_mean(arr, lo, hi),
        count=int(arr.size),
    )


def summarize_estimates(
    estimates: Iterable[float], truths: Iterable[float]
) -> QErrorSummary:
    """Convenience: q-errors of ``estimates`` vs ``truths``, summarized."""
    return summarize_qerrors(qerrors(estimates, truths))


def format_table(
    rows: Mapping[str, QErrorSummary], title: str = "Estimation errors"
) -> str:
    """Render estimator-name -> summary as a Table 1-style text table."""
    names = list(rows)
    name_width = max([len(n) for n in names] + [len(title)])
    header = " ".join(f"{c:>10}" for c in QErrorSummary.COLUMNS)
    lines = [f"{title:<{name_width}} {header}"]
    for name in names:
        cells = " ".join(f"{v:>10.4g}" for v in rows[name].row())
        lines.append(f"{name:<{name_width}} {cells}")
    return "\n".join(lines)


def relative_error(estimate: float, truth: float) -> float:
    """Signed relative error (est - true) / true, truth clamped to >= 1."""
    tru = max(float(truth), MIN_CARDINALITY)
    return (float(estimate) - tru) / tru


def geometric_mean_qerror(errors: Sequence[float]) -> float:
    """Geometric mean of a q-error sample (robust tail-insensitive score)."""
    arr = np.asarray(errors, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot average an empty q-error sample")
    return float(np.exp(np.mean(np.log(arr))))


# ----------------------------------------------------------------------
# serving telemetry (consumed by repro.serve.engine)
# ----------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q * len(ordered))), 1)
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing event counter (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value that can move both ways (thread-safe).

    The serving engine uses one for its queue depth, mirroring its
    (lock-guarded, authoritative) depth counter via :meth:`set` on
    every change; ``value`` is what ``stats()`` reports.  ``adjust``
    is for gauges whose owner has no counter of its own to mirror.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = 0):
        self._lock = threading.Lock()
        self._value = value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def adjust(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class LatencySummary:
    """Percentile summary over a bounded window of recent observations.

    Observations are seconds (or any nonnegative duration); the window
    bounds memory so a long-running server reports *recent* behavior
    rather than an all-time blur.  ``summary()`` returns the dict shape
    the serving layer has exposed since PR 2: ``count``/``p50``/``p95``/
    ``p99``/``max`` (count as a float, for JSON friendliness).
    """

    __slots__ = ("_lock", "_window")

    def __init__(self, window: int = 8192):
        if window <= 0:
            raise ReproError(f"summary window must be positive, got {window}")
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._window.append(float(seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    def summary(self) -> dict[str, float]:
        with self._lock:
            ordered = sorted(self._window)
        if not ordered:
            return {"count": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

        def rank(q: float) -> float:
            # Nearest-rank on the already-sorted window: one sort serves
            # every percentile of this snapshot.
            return ordered[max(int(math.ceil(q * len(ordered))), 1) - 1]

        return {
            "count": float(len(ordered)),
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "max": ordered[-1],
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"LatencySummary(n={s['count']:.0f}, p50={s['p50']:.6f}, "
            f"p99={s['p99']:.6f})"
        )

"""Estimation-quality metrics.

The paper reports estimation errors as **q-errors** (Moerkotte et al.,
PVLDB 2009): the factor between the true and the estimated cardinality,

    q(est, true) = max(est / true, true / est)   with q >= 1.

Table 1 of the paper summarizes q-error distributions with the median,
90th, 95th, and 99th percentiles, the maximum, and the mean; this module
computes exactly those rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .errors import ReproError

#: Estimates and truths are clamped to at least this value before the
#: q-error ratio is formed, matching the reference MSCN evaluation code
#: (a COUNT(*) estimate below one row is never useful to an optimizer).
MIN_CARDINALITY = 1.0


def qerror(estimate: float, truth: float) -> float:
    """Return the q-error between one estimate and one true cardinality.

    Both inputs are clamped to :data:`MIN_CARDINALITY` first, so zero
    (or negative, for a badly behaved estimator) values do not produce
    infinite or undefined errors.
    """
    est = max(float(estimate), MIN_CARDINALITY)
    tru = max(float(truth), MIN_CARDINALITY)
    return max(est / tru, tru / est)


def qerrors(estimates: Iterable[float], truths: Iterable[float]) -> np.ndarray:
    """Vectorized :func:`qerror` over two equal-length sequences."""
    est = np.maximum(np.asarray(list(estimates), dtype=np.float64), MIN_CARDINALITY)
    tru = np.maximum(np.asarray(list(truths), dtype=np.float64), MIN_CARDINALITY)
    if est.shape != tru.shape:
        raise ReproError(
            f"estimates and truths have different lengths: {est.shape} vs {tru.shape}"
        )
    return np.maximum(est / tru, tru / est)


@dataclass(frozen=True)
class QErrorSummary:
    """The q-error distribution summary used by Table 1 of the paper."""

    median: float
    p90: float
    p95: float
    p99: float
    max: float
    mean: float
    count: int

    #: Column order used by the paper's Table 1.
    COLUMNS = ("median", "90th", "95th", "99th", "max", "mean")

    def row(self) -> tuple[float, float, float, float, float, float]:
        """Return the summary as a Table 1 row (median..mean)."""
        return (self.median, self.p90, self.p95, self.p99, self.max, self.mean)

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.COLUMNS, self.row()))

    def __str__(self) -> str:
        cells = "  ".join(f"{v:>10.4g}" for v in self.row())
        return f"{cells}  (n={self.count})"


def summarize_qerrors(errors: Iterable[float]) -> QErrorSummary:
    """Summarize a q-error sample into the paper's Table 1 statistics."""
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty q-error sample")
    if np.any(arr < 1.0 - 1e-9):
        raise ReproError("q-errors must be >= 1; got a smaller value")
    return QErrorSummary(
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(np.max(arr)),
        mean=float(np.mean(arr)),
        count=int(arr.size),
    )


def summarize_estimates(
    estimates: Iterable[float], truths: Iterable[float]
) -> QErrorSummary:
    """Convenience: q-errors of ``estimates`` vs ``truths``, summarized."""
    return summarize_qerrors(qerrors(estimates, truths))


def format_table(
    rows: Mapping[str, QErrorSummary], title: str = "Estimation errors"
) -> str:
    """Render estimator-name -> summary as a Table 1-style text table."""
    names = list(rows)
    name_width = max([len(n) for n in names] + [len(title)])
    header = " ".join(f"{c:>10}" for c in QErrorSummary.COLUMNS)
    lines = [f"{title:<{name_width}} {header}"]
    for name in names:
        cells = " ".join(f"{v:>10.4g}" for v in rows[name].row())
        lines.append(f"{name:<{name_width}} {cells}")
    return "\n".join(lines)


def relative_error(estimate: float, truth: float) -> float:
    """Signed relative error (est - true) / true, truth clamped to >= 1."""
    tru = max(float(truth), MIN_CARDINALITY)
    return (float(estimate) - tru) / tru


def geometric_mean_qerror(errors: Sequence[float]) -> float:
    """Geometric mean of a q-error sample (robust tail-insensitive score)."""
    arr = np.asarray(errors, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot average an empty q-error sample")
    return float(np.exp(np.mean(np.log(arr))))

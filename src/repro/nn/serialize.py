"""Model weight serialization.

State dicts are stored as ``.npz`` payloads with a JSON metadata header —
no pickling, so payloads are safe to load and portable across processes.
The Deep Sketch wrapper reuses this format for its network component and
measures its footprint from these bytes (the paper's "few MiBs" claim).
"""

from __future__ import annotations

import io
import json

import numpy as np

from ..errors import SerializationError
from .module import Module

_META_KEY = "__meta__"
_FORMAT_VERSION = 1


def state_dict_to_bytes(state: dict[str, np.ndarray], meta: dict | None = None) -> bytes:
    """Serialize a state dict (plus optional JSON-able metadata) to bytes."""
    payload = dict(state)
    header = {"format_version": _FORMAT_VERSION, "meta": meta or {}}
    payload[_META_KEY] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    return buffer.getvalue()


def state_dict_from_bytes(blob: bytes) -> tuple[dict[str, np.ndarray], dict]:
    """Inverse of :func:`state_dict_to_bytes`; returns ``(state, meta)``."""
    try:
        with np.load(io.BytesIO(blob)) as archive:
            names = set(archive.files)
            if _META_KEY not in names:
                raise SerializationError("payload is missing its metadata header")
            header = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            state = {name: archive[name] for name in names - {_META_KEY}}
    except SerializationError:
        raise
    except Exception as exc:  # zipfile/np.load raise various error types
        raise SerializationError(f"cannot decode model payload: {exc}") from exc
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported payload format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return state, header.get("meta", {})


def save_module(module: Module, path: str, meta: dict | None = None) -> int:
    """Write a module's weights to ``path``; returns the byte size."""
    blob = state_dict_to_bytes(module.state_dict(), meta=meta)
    with open(path, "wb") as f:
        f.write(blob)
    return len(blob)


def load_module(module: Module, path: str) -> dict:
    """Load weights saved by :func:`save_module` into ``module``.

    Returns the stored metadata dictionary.
    """
    with open(path, "rb") as f:
        blob = f.read()
    state, meta = state_dict_from_bytes(blob)
    module.load_state_dict(state)
    return meta

"""Compiled, autograd-free MSCN inference.

The autograd :class:`~repro.nn.tensor.Tensor` graph is the right tool
for training and the parity oracle for everything else, but it is pure
overhead at serving time: every op allocates a node, a backward closure,
and a fresh float64 intermediate that is discarded as soon as the
estimate is read out.  :class:`InferenceSession` removes all of that.

A session is *compiled* once from a trained :class:`~repro.core.mscn.MSCN`:

* the weights are snapshotted as contiguous arrays at a fixed dtype
  (float64 by default; float32 opt-in halves the GEMM cost at a
  documented ~1e-7 relative error — see ``docs/performance.md``);
* the forward pass is a flat, fixed sequence of in-place numpy calls —
  ``np.dot(..., out=...)`` for every matmul, fused ReLU via
  ``np.maximum(..., out=...)``, and a mask-multiply / sum / scale
  masked mean — mirroring the exact arithmetic of
  :meth:`MSCN.forward` without building a graph;
* every intermediate lives in a per-shape buffer pool, so repeated
  calls with the same batch shape perform **zero** allocations beyond
  the tiny ``(B,)`` output (which is always a fresh array the caller
  may keep).

Buffer pools are thread-local: concurrent callers (e.g. a user thread
estimating while the async server's flush thread answers a batch) each
get their own scratch space and share only the read-only weight
snapshot, so the session is safe to use from any number of threads.

Because the weights are snapshotted, a session goes stale when its
model is retrained or mutated in place; :meth:`DeepSketch.clear_cache`
drops the sketch's session alongside its result cache so the next
estimate recompiles from the current weights.

Sessions are also **picklable**: the pickle payload is the weight
snapshot plus the dims/dtype header, and unpickling rebuilds a fresh
(empty) buffer pool.  This is how the serving layer's process-pool
executor ships a trained model to worker processes — the worker gets
the exact compiled arrays, never the autograd model, and never
retrains or recompiles anything (see ``repro.serve.executor``).

The numerical contract: a float64 session matches the autograd forward
to a few ULPs (<= 1e-12 relative — 2-D GEMM vs batched matmul kernel
rounding); a float32 session matches to <= 1e-6 relative.  Both bounds
are asserted in ``tests/nn/test_inference.py`` and measured in
``benchmarks/bench_inference.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ReproError
from ..pools import DEFAULT_MAX_SHAPES, ArrayPool
from .layers import Linear, Sequential
from .tensor import stable_sigmoid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..core.batches import Batch
    from ..core.mscn import MSCN

#: Buffer pools are cleared when they accumulate more distinct shapes
#: than this — a backstop against unbounded growth under adversarial
#: batch-shape churn, far above anything steady-state serving produces.
MAX_POOLED_SHAPES = DEFAULT_MAX_SHAPES

#: The four compiled MLPs and their parameters, in export order.  The
#: flat ``{mlp}.{param}`` key space is the contract between
#: :meth:`InferenceSession.export_weights` and
#: :meth:`InferenceSession.from_weights` (and therefore the
#: shared-memory snapshot layout in :mod:`repro.serve.shm`).
MLP_NAMES = ("table", "join", "predicate", "out")
PARAM_NAMES = ("w1", "b1", "w2", "b2")


class _MLP:
    """Weight snapshot of one two-layer MLP: ``relu(x@W1+b1) @ W2 + b2``.

    Arrays are C-contiguous at the session dtype so ``np.dot`` can write
    straight into pooled output buffers.
    """

    __slots__ = ("w1", "b1", "w2", "b2")

    def __init__(self, module: Sequential, dtype: np.dtype):
        linears = [m for m in module.layers if isinstance(m, Linear)]
        if len(linears) != 2:
            raise ReproError(
                f"cannot compile set module {module!r}: expected exactly two "
                f"Linear layers, found {len(linears)}"
            )
        first, second = linears
        # np.array (not ascontiguousarray): the snapshot must be a COPY
        # even when the parameter is already contiguous at the session
        # dtype, or the optimizers' in-place updates (``p.data -= ...``)
        # would write through into a "compiled" session.
        self.w1 = np.array(first.weight.data, dtype=dtype, order="C")
        self.b1 = np.array(first.bias.data, dtype=dtype, order="C")
        self.w2 = np.array(second.weight.data, dtype=dtype, order="C")
        self.b2 = np.array(second.bias.data, dtype=dtype, order="C")

    @classmethod
    def from_arrays(
        cls,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
    ) -> "_MLP":
        """Adopt the given arrays verbatim — **no copy**.

        The shared-memory snapshot path hands in read-only views over a
        mapped segment; the forward pass only ever uses weights as GEMM
        operands, so read-only is fine.  Callers own the aliasing
        consequences (the training-path constructor above keeps its
        deliberate copy).
        """
        mlp = cls.__new__(cls)
        mlp.w1, mlp.b1, mlp.w2, mlp.b2 = w1, b1, w2, b2
        return mlp


class InferenceSession:
    """A compiled forward pass over a snapshot of an MSCN's weights.

    Construct once per trained model (cheap: four small weight copies),
    then call :meth:`run` per batch.  See the module docstring for the
    execution model, threading contract, and numerical guarantees.
    """

    SUPPORTED_DTYPES = (np.float64, np.float32)

    def __init__(self, model: "MSCN", dtype=np.float64):
        dtype = np.dtype(dtype)
        if dtype not in [np.dtype(d) for d in self.SUPPORTED_DTYPES]:
            raise ReproError(
                f"InferenceSession supports float64/float32, got {dtype}"
            )
        self.dtype = dtype
        self.hidden_units = model.hidden_units
        self.table_dim = model.table_dim
        self.join_dim = model.join_dim
        self.predicate_dim = model.predicate_dim
        self._table_mlp = _MLP(model.table_mlp, dtype)
        self._join_mlp = _MLP(model.join_mlp, dtype)
        self._predicate_mlp = _MLP(model.predicate_mlp, dtype)
        self._out_mlp = _MLP(model.out_mlp, dtype)
        self._pools = ArrayPool(zeroed=False, max_shapes=MAX_POOLED_SHAPES)

    # ------------------------------------------------------------------
    # pickling (process-pool executors ship sessions to workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Everything but the buffer pools (thread-locals don't pickle).

        The weight arrays are the session's whole identity; pools are
        scratch that every process/thread regrows on first use.
        """
        state = dict(self.__dict__)
        del state["_pools"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pools = ArrayPool(zeroed=False, max_shapes=MAX_POOLED_SHAPES)

    # ------------------------------------------------------------------
    # zero-copy export/import (shared-memory snapshots map, not pickle)
    # ------------------------------------------------------------------
    def export_weights(self) -> tuple[dict[str, np.ndarray], dict]:
        """The compiled weights as named arrays plus a dims header.

        Keys are ``weights.{mlp}.{param}`` over :data:`MLP_NAMES` ×
        :data:`PARAM_NAMES`; the arrays are the session's *own* weight
        snapshots (views, not copies — treat them as read-only).  The
        header carries everything else a session needs, JSON-able so it
        can ride in a shared-memory segment manifest.
        """
        arrays: dict[str, np.ndarray] = {}
        for mlp_name in MLP_NAMES:
            mlp = getattr(self, f"_{mlp_name}_mlp")
            for param in PARAM_NAMES:
                arrays[f"weights.{mlp_name}.{param}"] = getattr(mlp, param)
        header = {
            "dtype": self.dtype.name,
            "hidden_units": int(self.hidden_units),
            "table_dim": int(self.table_dim),
            "join_dim": int(self.join_dim),
            "predicate_dim": int(self.predicate_dim),
        }
        return arrays, header

    @classmethod
    def from_weights(
        cls, arrays: dict[str, np.ndarray], header: dict
    ) -> "InferenceSession":
        """Rebuild a session around ``arrays`` **without copying them**.

        Inverse of :meth:`export_weights`.  This is how a process-pool
        worker compiles a session directly over a mapped shared-memory
        segment: the weight arrays stay wherever the caller put them
        (typically read-only views over ``/dev/shm``), and only the
        empty buffer pool is process-private.  Runs the same dtype
        validation as ``__init__``; a missing key or malformed header
        is a :class:`~repro.errors.ReproError`.
        """
        try:
            dtype = np.dtype(str(header["dtype"]))
            hidden_units = int(header["hidden_units"])
            table_dim = int(header["table_dim"])
            join_dim = int(header["join_dim"])
            predicate_dim = int(header["predicate_dim"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed session weights header: {exc}") from exc
        if dtype not in [np.dtype(d) for d in cls.SUPPORTED_DTYPES]:
            raise ReproError(
                f"InferenceSession supports float64/float32, got {dtype}"
            )
        session = cls.__new__(cls)
        session.dtype = dtype
        session.hidden_units = hidden_units
        session.table_dim = table_dim
        session.join_dim = join_dim
        session.predicate_dim = predicate_dim
        for mlp_name in MLP_NAMES:
            try:
                params = [
                    arrays[f"weights.{mlp_name}.{param}"]
                    for param in PARAM_NAMES
                ]
            except KeyError as exc:
                raise ReproError(
                    f"session weights payload missing array {exc}"
                ) from exc
            setattr(session, f"_{mlp_name}_mlp", _MLP.from_arrays(*params))
        session._pools = ArrayPool(zeroed=False, max_shapes=MAX_POOLED_SHAPES)
        return session

    # ------------------------------------------------------------------
    # buffer pool
    # ------------------------------------------------------------------
    def _pool(self) -> dict:
        """This thread's shape-keyed scratch buffers."""
        return self._pools.buffers()

    def _buffer(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        """An uninitialized scratch array; reused across same-shape calls."""
        return self._pools.array(shape, self.dtype, tag=tag)

    def _as_input(self, tag: str, array: np.ndarray) -> np.ndarray:
        """``array`` at the session dtype, C-contiguous.

        When the batch already matches (the default float64 collation
        feeding a float64 session) this is a zero-copy passthrough; a
        dtype mismatch is converted into a pooled buffer, so even the
        float32 path allocates nothing on repeated shapes.
        """
        if array.dtype == self.dtype and array.flags.c_contiguous:
            return array
        buf = self._buffer(tag, array.shape)
        np.copyto(buf, array, casting="same_kind")
        return buf

    # ------------------------------------------------------------------
    # the compiled forward
    # ------------------------------------------------------------------
    def _set_module(
        self,
        tag: str,
        mlp: _MLP,
        x: np.ndarray,
        mask: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """One set MLP + masked mean, written into ``out`` (a (B, h) view).

        Mirrors ``masked_mean(mlp(Tensor(x)), mask)`` with every
        intermediate pooled: the (B, S, d) input is viewed as a 2-D
        (B*S, d) operand so both layers run as plain GEMMs.
        """
        batch_size, set_size, _ = x.shape
        x2d = self._as_input(tag + ".in", x).reshape(batch_size * set_size, -1)
        h1 = self._buffer(tag + ".h1", (x2d.shape[0], self.hidden_units))
        np.dot(x2d, mlp.w1, out=h1)
        h1 += mlp.b1
        np.maximum(h1, 0.0, out=h1)
        h2 = self._buffer(tag + ".h2", (x2d.shape[0], self.hidden_units))
        np.dot(h1, mlp.w2, out=h2)
        h2 += mlp.b2
        np.maximum(h2, 0.0, out=h2)
        # Masked mean: zero padded rows, sum the set axis, scale by the
        # real-element count (empty sets divide by 1, contributing zero,
        # exactly like nn.functional.masked_mean).
        mask = self._as_input(tag + ".mask", np.asarray(mask))
        h2 *= mask.reshape(-1, 1)
        np.sum(h2.reshape(batch_size, set_size, self.hidden_units), axis=1, out=out)
        counts = self._buffer(tag + ".counts", (batch_size, 1))
        np.sum(mask.reshape(batch_size, set_size), axis=1, keepdims=True, out=counts)
        np.maximum(counts, 1.0, out=counts)
        out /= counts

    def run(self, batch: "Batch") -> np.ndarray:
        """Normalized log-cardinality predictions, float64, shape (B,).

        The returned array is freshly allocated (never a pooled buffer),
        so callers may hold it across subsequent ``run`` calls.
        """
        batch_size = batch.tables.shape[0]
        h = self.hidden_units
        combined = self._buffer("combined", (batch_size, 3 * h))
        self._set_module(
            "tables", self._table_mlp, batch.tables, batch.table_mask,
            combined[:, 0:h],
        )
        self._set_module(
            "joins", self._join_mlp, batch.joins, batch.join_mask,
            combined[:, h:2 * h],
        )
        self._set_module(
            "predicates", self._predicate_mlp, batch.predicates,
            batch.predicate_mask, combined[:, 2 * h:3 * h],
        )
        o1 = self._buffer("out.h1", (batch_size, h))
        np.dot(combined, self._out_mlp.w1, out=o1)
        o1 += self._out_mlp.b1
        np.maximum(o1, 0.0, out=o1)
        o2 = self._buffer("out.h2", (batch_size, 1))
        np.dot(o1, self._out_mlp.w2, out=o2)
        o2 += self._out_mlp.b2
        return stable_sigmoid(o2).reshape(batch_size).astype(np.float64)

    __call__ = run

    def __repr__(self) -> str:
        return (
            f"InferenceSession(dtype={self.dtype.name}, "
            f"dims=({self.table_dim}, {self.join_dim}, {self.predicate_dim}), "
            f"hidden={self.hidden_units})"
        )


__all__ = ["InferenceSession", "MAX_POOLED_SHAPES", "MLP_NAMES", "PARAM_NAMES"]

"""First-order optimizers.

The reference MSCN training uses Adam with PyTorch defaults
(lr=1e-3, betas=(0.9, 0.999), eps=1e-8); plain SGD with momentum is
included for ablations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .tensor import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Tensor]):
        params = list(params)
        if not params:
            raise ReproError("optimizer requires at least one parameter")
        for p in params:
            if not p.requires_grad:
                raise ReproError("optimizer given a parameter without requires_grad")
        self.params = params

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ReproError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ReproError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ReproError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ReproError(f"betas must be in [0, 1), got {betas}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

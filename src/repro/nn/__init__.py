"""Minimal deep-learning framework (the repo's PyTorch substitute).

Public surface:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff on numpy arrays
* layers: :class:`Linear`, :class:`ReLU`, :class:`Sigmoid`, :class:`Tanh`,
  :class:`Dropout`, :class:`Sequential`, :func:`mlp`
* optimizers: :class:`SGD`, :class:`Adam`
* losses: :class:`MSELoss`, :class:`QErrorLoss`
* compiled inference: :class:`~repro.nn.inference.InferenceSession`
  (autograd-free serving forward; see ``docs/performance.md``)
* functional ops: :func:`masked_mean`, :func:`concat`, :func:`maximum`
* serialization: :func:`save_module`, :func:`load_module`
"""

from .functional import masked_mean
from .inference import InferenceSession
from .init import INITIALIZERS, kaiming_uniform, xavier_normal, xavier_uniform
from .layers import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, mlp
from .loss import Loss, MSELoss, QErrorLoss
from .module import Module
from .optim import SGD, Adam, Optimizer
from .serialize import (
    load_module,
    save_module,
    state_dict_from_bytes,
    state_dict_to_bytes,
)
from .tensor import Tensor, concat, maximum, stack_rows

__all__ = [
    "Tensor",
    "concat",
    "maximum",
    "stack_rows",
    "masked_mean",
    "Module",
    "InferenceSession",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Sequential",
    "mlp",
    "Loss",
    "MSELoss",
    "QErrorLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "kaiming_uniform",
    "xavier_uniform",
    "xavier_normal",
    "INITIALIZERS",
    "save_module",
    "load_module",
    "state_dict_to_bytes",
    "state_dict_from_bytes",
]

"""Module base class: a parameter registry with train/eval modes.

A :class:`Module` owns named parameters (leaf :class:`~repro.nn.tensor.Tensor`
objects with ``requires_grad=True``) and possibly named child modules.
``parameters()`` walks the tree, ``state_dict()`` / ``load_state_dict()``
move raw arrays in and out for serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ReproError, SerializationError
from .tensor import Tensor


class Module:
    """Base class for neural-network components."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, value: np.ndarray) -> Tensor:
        """Wrap ``value`` as a trainable tensor registered under ``name``."""
        if name in self._parameters or name in self._modules:
            raise ReproError(f"duplicate registration of {name!r}")
        param = Tensor(value, requires_grad=True, name=name)
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if name in self._parameters or name in self._modules:
            raise ReproError(f"duplicate registration of {name!r}")
        self._modules[name] = module
        return module

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count (used for footprint accounting)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # train / eval switching (affects Dropout)
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted parameter names to array copies."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        Every parameter must be present with a matching shape; extra keys
        are rejected so silent architecture mismatches cannot slip through.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        extra = sorted(set(state) - set(own))
        if missing or extra:
            raise SerializationError(
                f"state dict mismatch: missing={missing}, unexpected={extra}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise SerializationError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

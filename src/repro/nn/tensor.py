"""A small reverse-mode automatic-differentiation engine on numpy arrays.

This is the substrate that stands in for PyTorch in this reproduction
(see DESIGN.md, substitution table).  It implements exactly the operator
set the MSCN model and its training loop need:

* elementwise arithmetic with numpy broadcasting (``+ - * /``, ``**``),
* ``matmul``, ``relu``, ``sigmoid``, ``tanh``, ``exp``, ``log``, ``abs``,
* ``maximum`` (for q-error style losses), ``clip``,
* reductions ``sum`` / ``mean`` with axis and keepdims,
* ``concat``, ``reshape``, and dropout-style masking via multiplication.

Gradients flow through a recorded computation graph; :meth:`Tensor.backward`
runs a topological sweep.  Correctness is property-tested against numerical
differentiation in ``tests/nn/test_autodiff.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import ReproError

ArrayLike = "np.ndarray | float | int | Tensor"


def _as_array(value) -> np.ndarray:
    """Coerce a python scalar / sequence / ndarray to a float64 ndarray."""
    if isinstance(value, Tensor):
        raise ReproError("expected raw data, got a Tensor; use tensor ops instead")
    return np.asarray(value, dtype=np.float64)


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic on a raw ndarray.

    Shared by the autograd :meth:`Tensor.sigmoid` and the compiled
    inference path (:mod:`repro.nn.inference`) so the two forwards stay
    arithmetically identical by construction.
    """
    clipped = np.clip(x, -60, 60)
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-clipped)),
        np.exp(clipped) / (1.0 + np.exp(clipped)),
    )


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    numpy broadcasting may have expanded an operand of shape ``shape`` up
    to ``grad.shape``; the chain rule requires summing the gradient over
    every expanded axis.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    squeeze_axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if squeeze_axes:
        grad = grad.sum(axis=squeeze_axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray plus an optional gradient and a backward recipe.

    Construction with ``requires_grad=True`` marks the tensor as a leaf
    whose ``.grad`` accumulates during :meth:`backward`.  Tensors returned
    by operations carry closures that propagate gradients to their parents.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) or any(
            p.requires_grad for p in _parents
        )
        self.grad: np.ndarray | None = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` slot."""
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data + other.data, _parents=(self, other))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data * other.data, _parents=(self, other))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data / other.data, _parents=(self, other))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise ReproError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out = Tensor(self.data**exponent, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1.0))

        out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        if self.ndim != 2 or other.ndim != 2:
            return self._batched_matmul(other)
        out = Tensor(self.data @ other.data, _parents=(self, other))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        out._backward = backward
        return out

    def _batched_matmul(self, other: "Tensor") -> "Tensor":
        """Matmul where either operand has a leading batch dimension.

        Supports the MSCN set-module pattern ``(B, S, D) @ (D, H)`` as
        well as general numpy ``matmul`` broadcasting over batch axes.
        """
        out = Tensor(np.matmul(self.data, other.data), _parents=(self, other))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = np.matmul(g, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                grad_other = np.matmul(np.swapaxes(self.data, -1, -2), g)
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # nonlinearities and pointwise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out = Tensor(np.maximum(self.data, 0.0), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (self.data > 0.0))

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        s = stable_sigmoid(self.data)
        out = Tensor(s, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * s * (1.0 - s))

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        t = np.tanh(self.data)
        out = Tensor(t, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - t**2))

        out._backward = backward
        return out

    def exp(self) -> "Tensor":
        e = np.exp(np.clip(self.data, -700, 700))
        out = Tensor(e, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * e)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor(np.abs(self.data), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        out = Tensor(np.clip(self.data, low, high), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(g * inside)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(self.data.shape))

        out._backward = backward
        return out

    def transpose(self) -> "Tensor":
        if self.ndim != 2:
            raise ReproError("transpose() supports 2-D tensors only")
        out = Tensor(self.data.T, _parents=(self,))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.T)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (i.e. ``d self / d self``); for
        non-scalar outputs an explicit cotangent is usually what you want.
        """
        if not self.requires_grad:
            raise ReproError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ReproError(
                    f"gradient shape {grad.shape} does not match tensor {self.data.shape}"
                )

        order = _topological_order(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # Support `maximum` as a method for q-error style losses.
    def maximum(self, other) -> "Tensor":
        return maximum(self, other)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Iterative post-order DFS over the parent graph (no recursion limit)."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def maximum(a: Tensor | float, b: Tensor | float) -> Tensor:
    """Elementwise maximum with subgradient routed to the larger operand.

    Ties send the full gradient to ``a`` (matching ``np.maximum``'s
    left-bias is unnecessary for optimization; any convex-combination
    subgradient is valid, and this choice is deterministic).
    """
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    out = Tensor(np.maximum(a.data, b.data), _parents=(a, b))

    def backward(g: np.ndarray) -> None:
        take_a = a.data >= b.data
        if a.requires_grad:
            a._accumulate(g * take_a)
        if b.requires_grad:
            b._accumulate(g * ~take_a)

    out._backward = backward
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = [Tensor._lift(t) for t in tensors]
    if not tensors:
        raise ReproError("concat() of an empty sequence")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(data, _parents=tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    out._backward = backward
    return out


def stack_rows(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (axis 0), differentiable."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=0)
    out = Tensor(data, _parents=tuple(tensors))

    def backward(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(g[i])

    out._backward = backward
    return out

"""Functional ops used by the MSCN model.

The key primitive is :func:`masked_mean`: MSCN batches pad every query's
table/join/predicate sets to the batch maximum and carry a validity mask;
set-module outputs must be averaged over *valid* elements only.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .tensor import Tensor, concat, maximum


def masked_mean(x: Tensor, mask: np.ndarray) -> Tensor:
    """Average ``x`` of shape (B, S, D) over axis 1 using ``mask`` (B, S).

    Rows whose mask is entirely zero (a query with no joins, say) yield a
    zero vector, matching the reference implementation's behaviour of
    dividing by ``max(count, 1)`` — an empty set contributes nothing.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if x.ndim != 3:
        raise ReproError(f"masked_mean expects (B, S, D), got shape {x.shape}")
    if mask.shape != x.shape[:2]:
        raise ReproError(
            f"mask shape {mask.shape} does not match set dims {x.shape[:2]}"
        )
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (B, 1)
    weighted = x * Tensor(mask[:, :, None])
    return weighted.sum(axis=1) * Tensor(1.0 / counts)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


__all__ = ["masked_mean", "relu", "sigmoid", "concat", "maximum"]

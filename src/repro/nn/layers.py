"""Neural-network layers built on the autodiff engine."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..rng import SeedLike, make_rng
from .init import get_initializer
from .module import Module
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Accepts inputs of shape ``(B, in_features)`` or, for set modules,
    ``(B, S, in_features)``; the matmul broadcasts over leading axes.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: SeedLike = None,
        init: str = "kaiming_uniform",
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ReproError(
                f"Linear dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        weight, bias = get_initializer(init)(in_features, out_features, rng)
        self.weight = self.register_parameter("weight", weight)
        self.bias = self.register_parameter("bias", bias)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ReproError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        return x @ self.weight + self.bias

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Logistic activation; the MSCN output head uses this."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    A fresh mask is drawn from the module's own generator each forward
    pass, so training remains reproducible given the construction seed.
    """

    def __init__(self, p: float = 0.5, rng: SeedLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ReproError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = make_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if not modules:
            raise ReproError("Sequential requires at least one module")
        self.layers = list(modules)
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.layers)
        return f"Sequential({inner})"


def mlp(
    dims: list[int],
    rng: SeedLike = None,
    activation: type[Module] = ReLU,
    final_activation: type[Module] | None = None,
    dropout: float = 0.0,
) -> Sequential:
    """Build a multi-layer perceptron from a dimension list.

    ``mlp([d_in, d_hid, d_out])`` produces
    ``Linear -> act -> (Dropout) -> Linear (-> final_act)``, matching the
    two-layer set modules and output network of the MSCN paper.
    """
    if len(dims) < 2:
        raise ReproError("mlp() needs at least input and output dimensions")
    gen = make_rng(rng)
    layers: list[Module] = []
    for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
        layers.append(Linear(d_in, d_out, rng=gen))
        is_last = i == len(dims) - 2
        if not is_last:
            layers.append(activation())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=gen))
    if final_activation is not None:
        layers.append(final_activation())
    return Sequential(*layers)

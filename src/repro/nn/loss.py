"""Training objectives.

The paper trains MSCN "with the objective of minimizing the mean q-error".
Labels are normalized as ``y = log(card) / log(max_card)``, so the model's
sigmoid output ``p`` corresponds to the cardinality ``exp(p * log_max)``.
The q-error of the denormalized prediction is then

    q = max(est/true, true/est) = exp(|p - y| * log_max),

which is differentiable almost everywhere; :class:`QErrorLoss` minimizes
its batch mean exactly as the reference PyTorch code does.  An MSE option
on normalized labels is provided for ablation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .tensor import Tensor, maximum


class Loss:
    """Base class: callable mapping (predictions, targets) -> scalar tensor."""

    def __call__(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error on normalized labels."""

    def __call__(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ReproError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        diff = predictions - Tensor(targets)
        return (diff * diff).mean()


class QErrorLoss(Loss):
    """Mean q-error of denormalized cardinalities.

    ``log_max_card`` is the label-normalization constant (natural log of
    the maximum training cardinality).  Predictions and targets live in
    normalized [0, 1] space; the loss exponentiates their gap back to a
    cardinality ratio.  Predictions are clamped into [min_norm, 1] first,
    mirroring the reference implementation's clamp that prevents the exp
    from overflowing early in training.
    """

    def __init__(self, log_max_card: float, min_norm: float = 0.0):
        if log_max_card <= 0:
            raise ReproError(f"log_max_card must be positive, got {log_max_card}")
        self.log_max_card = float(log_max_card)
        self.min_norm = float(min_norm)

    def __call__(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ReproError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        preds = predictions.clip(self.min_norm, 1.0)
        gap = (preds - Tensor(targets)) * self.log_max_card
        # q = max(exp(gap), exp(-gap)) = exp(|gap|); using the max form keeps
        # the gradient expression identical to the reference implementation.
        q = maximum(gap.exp(), (-gap).exp())
        return q.mean()

"""Weight initializers.

The reference MSCN implementation relies on PyTorch's default
``nn.Linear`` initialization (Kaiming-uniform with ``a=sqrt(5)``, which
degenerates to a uniform fan-in rule).  We provide that rule plus the
classic Xavier/Glorot schemes for experimentation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..rng import SeedLike, make_rng


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """PyTorch ``nn.Linear`` default: W, b ~ U(-1/sqrt(fan_in), 1/sqrt(fan_in)).

    Returns ``(weight, bias)`` with ``weight.shape == (fan_in, fan_out)``.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ReproError(f"invalid layer dimensions ({fan_in}, {fan_out})")
    gen = make_rng(rng)
    bound = 1.0 / np.sqrt(fan_in)
    weight = gen.uniform(-bound, bound, size=(fan_in, fan_out))
    bias = gen.uniform(-bound, bound, size=(fan_out,))
    return weight, bias


def xavier_uniform(
    fan_in: int, fan_out: int, rng: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Glorot-uniform weights with zero bias."""
    if fan_in <= 0 or fan_out <= 0:
        raise ReproError(f"invalid layer dimensions ({fan_in}, {fan_out})")
    gen = make_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    weight = gen.uniform(-bound, bound, size=(fan_in, fan_out))
    bias = np.zeros(fan_out)
    return weight, bias


def xavier_normal(
    fan_in: int, fan_out: int, rng: SeedLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Glorot-normal weights with zero bias."""
    if fan_in <= 0 or fan_out <= 0:
        raise ReproError(f"invalid layer dimensions ({fan_in}, {fan_out})")
    gen = make_rng(rng)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    weight = gen.normal(0.0, std, size=(fan_in, fan_out))
    bias = np.zeros(fan_out)
    return weight, bias


#: Registry used by ``layers.Linear(init=...)``.
INITIALIZERS = {
    "kaiming_uniform": kaiming_uniform,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising a helpful error if unknown."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise ReproError(f"unknown initializer {name!r}; known: {known}") from None

"""Qualifying-sample bitmaps.

"In addition to executing a training query against the full database, we
execute each base table selection against a set of materialized samples
... Thus, we derive bitmaps indicating qualifying samples for each base
table.  These bitmaps are then used as an additional input to the deep
learning model."  (paper, Section 2)

A bitmap for alias ``a`` has one bit per sample row of ``a``'s table; a
bit is set when the row satisfies *all* of the query's predicates on
``a``.  Joins are deliberately not executed against samples — only base
table selections are, exactly as in the reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..workload.query import Query
from ..db.executor import table_filter_mask
from .sampler import MaterializedSamples


def alias_bitmap(
    samples: MaterializedSamples, query: Query, alias: str
) -> np.ndarray:
    """Bitmap (length ``sample_size``, zero-padded) for one alias."""
    table = samples.for_table(query.alias_table(alias))
    mask = table_filter_mask(table, query.predicates_for(alias))
    if len(mask) < samples.sample_size:
        padded = np.zeros(samples.sample_size, dtype=bool)
        padded[: len(mask)] = mask
        return padded
    return mask


def query_bitmaps(samples: MaterializedSamples, query: Query) -> dict[str, np.ndarray]:
    """Bitmaps for every alias of ``query``, keyed by alias."""
    return {alias: alias_bitmap(samples, query, alias) for alias in query.aliases}


def qualifying_fractions(samples: MaterializedSamples, query: Query) -> dict[str, float]:
    """Fraction of *sampled* rows qualifying per alias.

    The denominator is the actual sample length (not the padded size), so
    fractions are unbiased selectivity estimates for each base table.
    """
    out: dict[str, float] = {}
    for alias in query.aliases:
        table = samples.for_table(query.alias_table(alias))
        mask = table_filter_mask(table, query.predicates_for(alias))
        out[alias] = float(mask.mean()) if len(mask) else 0.0
    return out


def is_zero_tuple(samples: MaterializedSamples, query: Query) -> bool:
    """True when some base-table selection matches no sampled tuple.

    These are the "0-tuple situations" of the paper: pure sampling-based
    estimators lose all signal and must fall back to an educated guess.
    Only aliases that actually carry predicates are considered (an
    unfiltered table always qualifies its whole sample).
    """
    for alias in query.aliases:
        if not query.predicates_for(alias):
            continue
        table = samples.for_table(query.alias_table(alias))
        mask = table_filter_mask(table, query.predicates_for(alias))
        if not mask.any():
            return True
    return False

"""Qualifying-sample bitmaps.

"In addition to executing a training query against the full database, we
execute each base table selection against a set of materialized samples
... Thus, we derive bitmaps indicating qualifying samples for each base
table.  These bitmaps are then used as an additional input to the deep
learning model."  (paper, Section 2)

A bitmap for alias ``a`` has one bit per sample row of ``a``'s table; a
bit is set when the row satisfies *all* of the query's predicates on
``a``.  Joins are deliberately not executed against samples — only base
table selections are, exactly as in the reference implementation.

For batched estimation (:func:`batch_bitmaps`) the predicate masks are
memoized per distinct ``(table, column, op, literal)``: a serving batch
routinely repeats literals (and whole selections) across queries, so
each distinct predicate is evaluated against the sample exactly once
and the combined per-alias bitmaps are shared across the batch.  The
produced bitmaps are bit-identical to :func:`query_bitmaps`' — batching
is a throughput optimization, never a semantic change.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cache import LRUCache
from ..workload.query import Predicate, Query
from ..db.executor import table_filter_mask
from .sampler import MaterializedSamples


def alias_bitmap(
    samples: MaterializedSamples, query: Query, alias: str
) -> np.ndarray:
    """Bitmap (length ``sample_size``, zero-padded) for one alias."""
    table = samples.for_table(query.alias_table(alias))
    mask = table_filter_mask(table, query.predicates_for(alias))
    if len(mask) < samples.sample_size:
        padded = np.zeros(samples.sample_size, dtype=bool)
        padded[: len(mask)] = mask
        return padded
    return mask


def query_bitmaps(samples: MaterializedSamples, query: Query) -> dict[str, np.ndarray]:
    """Bitmaps for every alias of ``query``, keyed by alias."""
    return {alias: alias_bitmap(samples, query, alias) for alias in query.aliases}


class PredicateMaskMemo:
    """Memo of predicate and combined-selection masks over one sample set.

    Two levels are memoized:

    * per-predicate masks, keyed by ``(table, column, op, literal)`` —
      one :meth:`Column.evaluate` per distinct predicate per batch;
    * combined per-selection bitmaps (already zero-padded to the nominal
      sample size), keyed by ``(table, predicates)`` — queries repeating
      a whole base-table selection share one array.

    The memo may outlive a single batch (the serving engine keeps one
    per sketch), because sample tables are immutable once materialized.
    Both levels are LRU-bounded so a long-running server fed a templated
    workload with ever-changing literals cannot grow memory without
    limit (each entry is a sample-sized bool array).
    """

    def __init__(self, samples: MaterializedSamples, maxsize: int = 8192):
        import threading

        self._samples = samples
        self._predicate_masks = LRUCache(maxsize=maxsize)
        self._selection_bitmaps = LRUCache(maxsize=maxsize)
        self.evaluations = 0  # distinct predicate evaluations performed
        # The backing caches are internally locked, but this diagnostic
        # counter is a read-modify-write of its own: serving executors
        # may evaluate chunks of one sketch from several threads.
        self._eval_lock = threading.Lock()

    def predicate_mask(self, table_name: str, pred: Predicate) -> np.ndarray:
        key = (table_name, pred.column, pred.op, pred.literal)
        mask = self._predicate_masks.get(key)
        if mask is None:
            table = self._samples.for_table(table_name)
            mask = table.column(pred.column).evaluate(pred.op, pred.literal)
            self._predicate_masks.put(key, mask)
            with self._eval_lock:
                self.evaluations += 1
        return mask

    def selection_bitmap(
        self, table_name: str, predicates: Sequence[Predicate]
    ) -> np.ndarray:
        key = (table_name, tuple(predicates))
        bitmap = self._selection_bitmaps.get(key)
        if bitmap is None:
            table = self._samples.for_table(table_name)
            mask = np.ones(table.n_rows, dtype=bool)
            for pred in predicates:
                mask = mask & self.predicate_mask(table_name, pred)
            if len(mask) < self._samples.sample_size:
                padded = np.zeros(self._samples.sample_size, dtype=bool)
                padded[: len(mask)] = mask
                mask = padded
            bitmap = mask
            self._selection_bitmaps.put(key, bitmap)
        return bitmap


def batch_bitmaps(
    samples: MaterializedSamples,
    queries: Sequence[Query],
    memo: PredicateMaskMemo | None = None,
) -> list[dict[str, np.ndarray]]:
    """Per-query alias bitmaps for a whole batch, sharing predicate work.

    Returns one ``{alias: bitmap}`` dict per query, in order, with
    arrays identical to what :func:`query_bitmaps` would produce.
    Bitmaps are shared (not copied) between queries with equal
    selections; callers must treat them as read-only, which every
    consumer in this repository does (the featurizer copies on concat).
    Pass a :class:`PredicateMaskMemo` to reuse mask work across batches.
    """
    memo = memo if memo is not None else PredicateMaskMemo(samples)
    out: list[dict[str, np.ndarray]] = []
    for query in queries:
        out.append(
            {
                alias: memo.selection_bitmap(
                    query.alias_table(alias), query.predicates_for(alias)
                )
                for alias in query.aliases
            }
        )
    return out


def qualifying_fractions(samples: MaterializedSamples, query: Query) -> dict[str, float]:
    """Fraction of *sampled* rows qualifying per alias.

    The denominator is the actual sample length (not the padded size), so
    fractions are unbiased selectivity estimates for each base table.
    """
    out: dict[str, float] = {}
    for alias in query.aliases:
        table = samples.for_table(query.alias_table(alias))
        mask = table_filter_mask(table, query.predicates_for(alias))
        out[alias] = float(mask.mean()) if len(mask) else 0.0
    return out


def is_zero_tuple(samples: MaterializedSamples, query: Query) -> bool:
    """True when some base-table selection matches no sampled tuple.

    These are the "0-tuple situations" of the paper: pure sampling-based
    estimators lose all signal and must fall back to an educated guess.
    Only aliases that actually carry predicates are considered (an
    unfiltered table always qualifies its whole sample).
    """
    for alias in query.aliases:
        if not query.predicates_for(alias):
            continue
        table = samples.for_table(query.alias_table(alias))
        mask = table_filter_mask(table, query.predicates_for(alias))
        if not mask.any():
            return True
    return False

"""Materialized samples and qualifying bitmaps (paper Section 2)."""

from .bitmaps import (
    PredicateMaskMemo,
    alias_bitmap,
    batch_bitmaps,
    is_zero_tuple,
    qualifying_fractions,
    query_bitmaps,
)
from .sampler import (
    MaterializedSamples,
    manifest_from_bytes,
    materialize_samples,
    payload_manifest_bytes,
    samples_from_payload,
    samples_to_payload,
)

__all__ = [
    "MaterializedSamples",
    "materialize_samples",
    "samples_to_payload",
    "samples_from_payload",
    "payload_manifest_bytes",
    "manifest_from_bytes",
    "query_bitmaps",
    "batch_bitmaps",
    "PredicateMaskMemo",
    "alias_bitmap",
    "qualifying_fractions",
    "is_zero_tuple",
]

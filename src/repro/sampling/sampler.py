"""Materialized base-table samples.

A Deep Sketch is "essentially a wrapper for a (serialized) neural network
and a set of materialized samples" (paper, Section 1).  The samples serve
two roles:

* at featurization time each base-table selection is executed against
  its table's sample to produce a *qualifying bitmap* (see bitmaps.py);
* the demo's query templates draw placeholder literals from the column
  sample ("we instantiate the query template with values from the column
  sample that comes with the sketch").

Samples must therefore be serializable alongside the model; this module
provides an npz-compatible payload format mirroring nn.serialize.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import SchemaError, SketchError
from ..rng import SeedLike, make_rng, spawn
from ..db.column import Column
from ..db.database import Database
from ..db.schema import ColumnSchema, TableSchema
from ..db.table import Table
from ..db.types import DType, dtype_from_name


@dataclass
class MaterializedSamples:
    """Per-table uniform samples of up to ``sample_size`` rows each."""

    samples: dict[str, Table]
    sample_size: int

    def for_table(self, name: str) -> Table:
        try:
            return self.samples[name]
        except KeyError:
            known = ", ".join(sorted(self.samples))
            raise SketchError(
                f"no materialized sample for table {name!r}; sampled tables: {known}"
            ) from None

    @property
    def table_names(self) -> list[str]:
        return sorted(self.samples)

    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.samples.values())


def materialize_samples(
    db: Database,
    tables: Iterable[str],
    sample_size: int = 1000,
    seed: SeedLike = None,
) -> MaterializedSamples:
    """Draw a uniform sample (without replacement) from each table.

    Tables smaller than ``sample_size`` are included in full; bitmaps are
    then zero-padded by the featurizer up to the nominal size.
    """
    if sample_size <= 0:
        raise SketchError(f"sample_size must be positive, got {sample_size}")
    rng = make_rng(seed)
    names = sorted(set(tables))
    streams = spawn(rng, max(len(names), 1))
    samples = {
        name: db.table(name).sample(sample_size, rng=stream)
        for name, stream in zip(names, streams)
    }
    return MaterializedSamples(samples=samples, sample_size=sample_size)


# ----------------------------------------------------------------------
# serialization (samples travel inside the sketch payload)
# ----------------------------------------------------------------------


def samples_to_payload(samples: MaterializedSamples) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten samples into named arrays plus a JSON-able schema manifest."""
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {"sample_size": samples.sample_size, "tables": {}}
    for table_name, table in samples.samples.items():
        table_meta = {
            "primary_key": table.schema.primary_key,
            "columns": [],
        }
        for decl in table.schema.columns:
            col = table.columns[decl.name]
            key = f"sample.{table_name}.{decl.name}"
            arrays[f"{key}.values"] = col.values
            arrays[f"{key}.valid"] = col.valid
            col_meta = {
                "name": decl.name,
                "dtype": decl.dtype.value,
                "nullable": decl.nullable,
            }
            if col.dictionary is not None:
                col_meta["dictionary"] = col.dictionary
            table_meta["columns"].append(col_meta)
        manifest["tables"][table_name] = table_meta
    return arrays, manifest


def samples_from_payload(
    arrays: dict[str, np.ndarray], manifest: dict
) -> MaterializedSamples:
    """Inverse of :func:`samples_to_payload`."""
    try:
        sample_size = int(manifest["sample_size"])
        tables_meta = manifest["tables"]
    except (KeyError, TypeError) as exc:
        raise SketchError(f"malformed samples manifest: {exc}") from exc

    samples: dict[str, Table] = {}
    for table_name, table_meta in tables_meta.items():
        decls = []
        columns: dict[str, Column] = {}
        for col_meta in table_meta["columns"]:
            name = col_meta["name"]
            dtype = dtype_from_name(col_meta["dtype"])
            decls.append(ColumnSchema(name, dtype, nullable=col_meta["nullable"]))
            key = f"sample.{table_name}.{name}"
            try:
                values = arrays[f"{key}.values"]
                valid = arrays[f"{key}.valid"].astype(bool, copy=False)
            except KeyError as exc:
                raise SketchError(f"samples payload missing array {exc}") from exc
            # copy=False throughout: payloads already at the canonical
            # dtype (the common case, and *always* the case for
            # shared-memory mapped payloads) pass through as views —
            # an unconditional astype would silently re-copy every
            # zero-copy segment attach.  Off-dtype payloads (e.g. an
            # npz round trip that downgraded to int32) still convert.
            if dtype is DType.STRING:
                columns[name] = Column(
                    name, dtype, values.astype(np.int64, copy=False), valid,
                    dictionary=list(col_meta.get("dictionary", [])),
                )
            elif dtype is DType.INT64:
                columns[name] = Column(
                    name, dtype, values.astype(np.int64, copy=False), valid
                )
            else:
                columns[name] = Column(
                    name, dtype, values.astype(np.float64, copy=False), valid
                )
        schema = TableSchema(table_name, decls, primary_key=table_meta.get("primary_key"))
        samples[table_name] = Table(schema, columns)
    return MaterializedSamples(samples=samples, sample_size=sample_size)


def payload_manifest_bytes(manifest: dict) -> np.ndarray:
    """Encode a manifest as a uint8 array (npz-archivable JSON)."""
    return np.frombuffer(json.dumps(manifest, sort_keys=True).encode("utf-8"), dtype=np.uint8)


def manifest_from_bytes(blob: np.ndarray) -> dict:
    try:
        return json.loads(bytes(blob.tobytes()).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SchemaError(f"malformed manifest payload: {exc}") from exc

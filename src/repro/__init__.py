"""Deep Sketches: learned cardinality estimation for SQL queries.

A from-scratch reproduction of *Estimating Cardinalities with Deep
Sketches* (Kipf et al., SIGMOD 2019) and the MSCN model it wraps
(Kipf et al., CIDR 2019), including every substrate the paper relies
on: a numpy autodiff/neural-network stack, an in-memory relational
engine with exact COUNT(*) execution, synthetic IMDb/TPC-H datasets,
sampling with qualifying bitmaps, and HyPer-/PostgreSQL-style baseline
estimators.

Quickstart::

    from repro import datasets, workload, core

    db = datasets.load_dataset("imdb", scale=0.25)
    spec = workload.spec_for_imdb()
    sketch, report = core.build_sketch(
        db, spec, name="demo",
        config=core.SketchConfig(n_training_queries=2000, epochs=10),
    )
    sketch.estimate("SELECT COUNT(*) FROM title t, movie_keyword mk "
                    "WHERE mk.movie_id=t.id AND t.production_year>2010;")
"""

from . import (
    baselines,
    core,
    datasets,
    db,
    demo,
    metrics,
    nn,
    optimizer,
    sampling,
    serve,
    workload,
)
from .core import DeepSketch, SketchConfig, build_sketch
from .errors import ReproError
from .metrics import QErrorSummary, qerror, summarize_qerrors

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "datasets",
    "db",
    "demo",
    "metrics",
    "nn",
    "optimizer",
    "sampling",
    "serve",
    "workload",
    "DeepSketch",
    "SketchConfig",
    "build_sketch",
    "ReproError",
    "QErrorSummary",
    "qerror",
    "summarize_qerrors",
]

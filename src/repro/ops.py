"""Comparison-operator vocabulary shared by the engine and the query model.

Lives in its own leaf module so that ``repro.db`` and ``repro.workload``
can both import it without importing each other.
"""

#: Comparison operators the engine evaluates.  The paper's featurization
#: enumerates {=, <, >}; the engine additionally supports <=, >= and <>
#: so that year-grouping range templates (Figure 2) can be expressed,
#: plus set membership ``in`` (literal is a tuple of scalars) so that
#: DSB/TPC-H-style ``IN (...)`` templates can be expressed.
OPERATORS = ("=", "<", ">", "<=", ">=", "<>", "in")

#: Operators valid on string columns (dictionary encoding gives no
#: meaningful order, so only equality-shaped operators qualify — ``in``
#: is a disjunction of equalities).
STRING_OPERATORS = ("=", "<>", "in")

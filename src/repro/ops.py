"""Comparison-operator vocabulary shared by the engine and the query model.

Lives in its own leaf module so that ``repro.db`` and ``repro.workload``
can both import it without importing each other.
"""

#: Comparison operators the engine evaluates.  The paper's featurization
#: enumerates {=, <, >}; the engine additionally supports <=, >= and <>
#: so that year-grouping range templates (Figure 2) can be expressed.
OPERATORS = ("=", "<", ">", "<=", ">=", "<>")

#: Operators valid on string columns (dictionary encoding gives no
#: meaningful order, and the demo's string predicates are equality-only).
STRING_OPERATORS = ("=", "<>")

"""Uniform training-query generation (paper Figure 1a, step 2).

"We generate uniformly distributed training queries on the specified
tables": uniformly choose the number of joins, grow a connected join
subgraph along foreign keys, uniformly choose predicate columns and
types (=, <, >), and draw literals from the database itself so that
equality predicates hit existing values.

The generator is purely syntactic — labels (true cardinalities) and the
zero-cardinality filter are applied later by the sketch builder, exactly
as the demo's backend executes generated queries in a separate step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from ..rng import SeedLike, make_rng
from ..db.database import Database
from ..db.types import DType
from .query import JoinEdge, Predicate, Query, TableRef


@dataclass(frozen=True)
class WorkloadSpec:
    """What the generator may use: tables, aliases, predicate columns.

    ``predicate_columns`` maps each table to the columns predicates may
    reference; ``operators`` is the global operator vocabulary (the paper
    trains "with a uniform distribution between =, <, and > predicates").
    """

    tables: tuple[str, ...]
    aliases: dict[str, str] = field(default_factory=dict)
    predicate_columns: dict[str, tuple[str, ...]] = field(default_factory=dict)
    operators: tuple[str, ...] = ("=", "<", ">")
    max_joins: int = 2
    max_predicates_per_table: int = 2
    #: How equality literals are drawn: "rows" samples a random row value
    #: (frequent values appear often — the reference implementation's
    #: behaviour), "distinct" samples uniformly over the distinct values
    #: (tail values appear as often as heads), "mixed" flips a coin per
    #: literal.  "mixed" exposes the model to the 0-tuple regime during
    #: training, which the paper's Section 2 highlights.
    literal_distribution: str = "mixed"

    def alias_of(self, table: str) -> str:
        return self.aliases.get(table, table)

    def columns_of(self, table: str) -> tuple[str, ...]:
        return self.predicate_columns.get(table, ())


def build_neighbor_map(
    db: Database, spec: WorkloadSpec
) -> dict[str, list[tuple[str, str, str]]]:
    """table -> [(neighbor_table, own_column, neighbor_column)].

    The database's FK graph restricted to the spec's tables, in both
    directions; shared by the uniform generator and the templated suite
    generator (:mod:`repro.workload.suite`).
    """
    allowed = set(spec.tables)
    neighbors: dict[str, list[tuple[str, str, str]]] = {t: [] for t in allowed}
    for fk in db.foreign_keys:
        if fk.table in allowed and fk.ref_table in allowed:
            neighbors[fk.table].append((fk.ref_table, fk.column, fk.ref_column))
            neighbors[fk.ref_table].append((fk.table, fk.ref_column, fk.column))
    return neighbors


def build_literal_pools(
    db: Database, spec: WorkloadSpec
) -> dict[tuple[str, str], tuple[np.ndarray, np.ndarray]]:
    """Value pools per (table, column) for literal drawing.

    "Draw literals from database" — each pool holds the raw row
    values (frequency-weighted drawing) and the distinct values
    (uniform drawing); ``spec.literal_distribution`` picks between
    them per draw.
    """
    pools: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
    for table_name in spec.tables:
        table = db.table(table_name)
        for column_name in spec.columns_of(table_name):
            col = table.column(column_name)
            pool = col.non_null_values()
            if pool.size == 0:
                raise QueryError(
                    f"column {table_name}.{column_name} has no non-null "
                    "values to draw literals from"
                )
            pools[(table_name, column_name)] = (pool, np.unique(pool))
    return pools


def decode_pool_value(db: Database, table: str, column: str, raw):
    """Convert a raw pool value back into a python literal for ``column``."""
    col = db.table(table).column(column)
    if col.dtype is DType.STRING:
        return col.dictionary[int(raw)]
    if col.dtype is DType.INT64:
        return int(raw)
    return float(raw)


class TrainingQueryGenerator:
    """Draws uniformly distributed conjunctive COUNT(*) queries.

    The join structure follows the database's FK graph restricted to the
    spec's tables: a start table is chosen uniformly, then edges to
    not-yet-included tables are added uniformly until the drawn join
    count is reached (or no edge extends the subgraph).
    """

    def __init__(self, db: Database, spec: WorkloadSpec, seed: SeedLike = None):
        self.db = db
        self.spec = spec
        self.rng = make_rng(seed)
        for table in spec.tables:
            if table not in db.tables:
                raise QueryError(f"workload spec references unknown table {table!r}")
        self._neighbors = build_neighbor_map(db, spec)
        self._literal_pools = build_literal_pools(db, spec)

    # ------------------------------------------------------------------
    # drawing
    # ------------------------------------------------------------------
    def _draw_join_structure(self) -> tuple[list[str], list[JoinEdge]]:
        n_joins = int(self.rng.integers(0, self.spec.max_joins + 1))
        start = str(self.rng.choice(list(self.spec.tables)))
        tables = [start]
        joins: list[JoinEdge] = []
        while len(joins) < n_joins:
            frontier: list[tuple[str, str, str, str]] = []
            for table in tables:
                for neighbor, own_col, other_col in self._neighbors[table]:
                    if neighbor not in tables:
                        frontier.append((table, own_col, neighbor, other_col))
            if not frontier:
                break  # the drawn table's component is exhausted
            pick = frontier[int(self.rng.integers(0, len(frontier)))]
            own_table, own_col, neighbor, other_col = pick
            tables.append(neighbor)
            joins.append(
                JoinEdge(
                    self.spec.alias_of(own_table),
                    own_col,
                    self.spec.alias_of(neighbor),
                    other_col,
                )
            )
        return tables, joins

    def _draw_literal(self, table: str, column: str):
        rows_pool, distinct_pool = self._literal_pools[(table, column)]
        mode = self.spec.literal_distribution
        if mode == "mixed":
            mode = "distinct" if self.rng.random() < 0.5 else "rows"
        if mode == "distinct":
            pool = distinct_pool
        elif mode == "rows":
            pool = rows_pool
        else:
            raise QueryError(
                f"unknown literal distribution {self.spec.literal_distribution!r}"
            )
        raw = pool[int(self.rng.integers(0, len(pool)))]
        return decode_pool_value(self.db, table, column, raw)

    def _draw_predicates(self, tables: list[str]) -> list[Predicate]:
        predicates: list[Predicate] = []
        for table in tables:
            columns = self.spec.columns_of(table)
            if not columns:
                continue
            max_preds = min(self.spec.max_predicates_per_table, len(columns))
            n_preds = int(self.rng.integers(0, max_preds + 1))
            if n_preds == 0:
                continue
            chosen = self.rng.choice(len(columns), size=n_preds, replace=False)
            for idx in chosen:
                column = columns[int(idx)]
                dtype = self.db.table(table).column(column).dtype
                if dtype is DType.STRING:
                    op = "="
                else:
                    op = str(self.rng.choice(list(self.spec.operators)))
                predicates.append(
                    Predicate(
                        alias=self.spec.alias_of(table),
                        column=column,
                        op=op,
                        literal=self._draw_literal(table, column),
                    )
                )
        return predicates

    def draw(self) -> Query:
        """Draw one query (possibly with zero true cardinality)."""
        tables, joins = self._draw_join_structure()
        predicates = self._draw_predicates(tables)
        refs = tuple(TableRef(t, self.spec.alias_of(t)) for t in tables)
        return Query(tables=refs, joins=tuple(joins), predicates=tuple(predicates))

    def draw_many(self, n: int) -> list[Query]:
        """Draw ``n`` queries (duplicates possible, as in the paper)."""
        if n < 0:
            raise QueryError(f"cannot draw {n} queries")
        return [self.draw() for _ in range(n)]


def spec_for_imdb(tables: tuple[str, ...] | None = None, max_joins: int = 2) -> WorkloadSpec:
    """JOB-light-compatible workload spec over the synthetic IMDb."""
    from ..datasets.imdb import JOB_LIGHT_ALIASES, JOB_LIGHT_PREDICATE_COLUMNS

    tables = tables or tuple(sorted(JOB_LIGHT_ALIASES))
    return WorkloadSpec(
        tables=tuple(tables),
        aliases=dict(JOB_LIGHT_ALIASES),
        predicate_columns={
            t: JOB_LIGHT_PREDICATE_COLUMNS[t]
            for t in tables
            if t in JOB_LIGHT_PREDICATE_COLUMNS
        },
        max_joins=max_joins,
    )


def spec_for_imdb_templates(max_joins: int = 4) -> WorkloadSpec:
    """Template-suite spec over the synthetic IMDb: JOB-light plus the
    string-valued dimension tables, enabling deeper join chains
    (``title ⋈ movie_keyword ⋈ keyword``), self-joins (two
    ``movie_keyword`` copies through ``title``), and string predicates
    (``keyword.keyword``, ``company_name.country_code``)."""
    from ..datasets.imdb import JOB_LIGHT_ALIASES, JOB_LIGHT_PREDICATE_COLUMNS

    aliases = dict(JOB_LIGHT_ALIASES)
    aliases.update({"keyword": "k", "company_name": "cn"})
    predicate_columns = dict(JOB_LIGHT_PREDICATE_COLUMNS)
    predicate_columns.update(
        {"keyword": ("keyword",), "company_name": ("country_code",)}
    )
    return WorkloadSpec(
        tables=tuple(sorted(aliases)),
        aliases=aliases,
        predicate_columns=predicate_columns,
        max_joins=max_joins,
    )


def spec_for_tpch(tables: tuple[str, ...] | None = None, max_joins: int = 2) -> WorkloadSpec:
    """Workload spec over the synthetic TPC-H subset."""
    from ..datasets.tpch import TPCH_ALIASES, TPCH_PREDICATE_COLUMNS

    tables = tables or tuple(sorted(TPCH_PREDICATE_COLUMNS))
    return WorkloadSpec(
        tables=tuple(tables),
        aliases=dict(TPCH_ALIASES),
        predicate_columns={
            t: TPCH_PREDICATE_COLUMNS[t]
            for t in tables
            if t in TPCH_PREDICATE_COLUMNS
        },
        max_joins=max_joins,
    )

"""Templated workload suites (DSB/TPC-H-style parameterized queries).

The uniform generator (:mod:`repro.workload.generator`) draws every
query independently, so a uniform train/test split shares *templates*
between the two sides and only holds out literals.  Benchmark suites
like DSB and the JOB are organized the other way around: a fixed set of
named templates ("same query, different constants"), each instantiated
many times.  That structure is what makes template-level generalization
measurable — train on some templates, evaluate on *held-out* templates
(see :mod:`repro.workload.splits`) — and what a realistic serving
workload looks like: a Zipfian mix over templates rather than a uniform
stream (see :mod:`repro.workload.traffic`).

A :class:`SuiteTemplate` is a join shape (possibly containing
*self-joins*: the same table under two aliases) plus a set of
:class:`PredicateSlot`'s, each with a fixed predicate *family*:

* ``eq``      — ``column = literal`` (numeric or string),
* ``range``   — one-sided ``< | > | <= | >=`` (covers date-like
  columns such as ``production_year`` / ``o_orderdate``),
* ``between`` — ``column >= lo AND column <= hi``,
* ``in``      — ``column IN (a, b, ...)`` (numeric or string).

Instantiating a template draws only literals; the SQL shape — tables,
joins, columns, operators — is frozen, so all instances of one template
share a :func:`repro.core.featurization.template_key`.

Everything is seeded through :mod:`repro.rng` (numpy generators spawned
per template); the same seed yields a byte-identical suite, which
:meth:`TemplateSuite.digest` turns into a checkable fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import QueryError
from ..rng import SeedLike, make_rng, spawn
from ..db.database import Database
from ..db.executor import execute_count
from ..db.types import DType
from .generator import (
    WorkloadSpec,
    build_literal_pools,
    build_neighbor_map,
    decode_pool_value,
)
from .query import JoinEdge, Predicate, Query, TableRef

#: Predicate families a slot can take, by column kind.
NUMERIC_FAMILIES = ("eq", "range", "between", "in")
STRING_FAMILIES = ("eq", "in")

#: One-sided operators the ``range`` family draws from.
RANGE_OPS = ("<", ">", "<=", ">=")

#: Serialization format version for :meth:`TemplateSuite.to_json`.
SUITE_VERSION = 1


@dataclass(frozen=True)
class PredicateSlot:
    """One parameterized predicate of a template (literal-free).

    ``ops`` is the exact operator sequence the slot expands to — one
    operator for ``eq``/``range``/``in``, ``(">=", "<=")`` for
    ``between`` — so the template pins the full SQL shape and instances
    differ only in literals.
    """

    alias: str
    table: str
    column: str
    family: str
    ops: tuple[str, ...]
    in_arity: int = 0

    def __post_init__(self):
        if self.family not in NUMERIC_FAMILIES:
            raise QueryError(f"unknown predicate family {self.family!r}")
        if self.family == "in" and self.in_arity < 1:
            raise QueryError(
                f"'in' slot needs a positive arity, got {self.in_arity}"
            )


@dataclass(frozen=True)
class SuiteTemplate:
    """A named query shape: tables + joins + predicate slots."""

    name: str
    tables: tuple[TableRef, ...]
    joins: tuple[JoinEdge, ...]
    slots: tuple[PredicateSlot, ...]

    def structure_key(self) -> tuple:
        """Literal-free identity used to deduplicate drawn templates."""
        return (
            tuple(sorted(self.tables)),
            tuple(sorted(self.joins)),
            tuple(sorted((s.alias, s.column, s.ops) for s in self.slots)),
        )

    @property
    def has_self_join(self) -> bool:
        names = [t.table for t in self.tables]
        return len(names) != len(set(names))

    @property
    def n_joins(self) -> int:
        return len(self.joins)


@dataclass(frozen=True)
class TemplateQueries:
    """One template's instances, optionally labeled with cardinalities."""

    template: SuiteTemplate
    queries: tuple[Query, ...]
    cardinalities: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.cardinalities is not None and len(self.cardinalities) != len(
            self.queries
        ):
            raise QueryError(
                f"template {self.template.name!r}: {len(self.queries)} queries "
                f"but {len(self.cardinalities)} cardinalities"
            )

    @property
    def name(self) -> str:
        return self.template.name

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class TemplateSuite:
    """A set of templates with their generated per-template query sets."""

    templates: tuple[TemplateQueries, ...]

    def __post_init__(self):
        names = [t.name for t in self.templates]
        if len(names) != len(set(names)):
            raise QueryError(f"duplicate template names in {names}")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self) -> Iterator[TemplateQueries]:
        return iter(self.templates)

    @property
    def names(self) -> list[str]:
        return [t.name for t in self.templates]

    @property
    def n_queries(self) -> int:
        return sum(len(t) for t in self.templates)

    @property
    def labeled(self) -> bool:
        return bool(self.templates) and all(
            t.cardinalities is not None for t in self.templates
        )

    def template(self, name: str) -> TemplateQueries:
        for t in self.templates:
            if t.name == name:
                return t
        raise QueryError(f"unknown template {name!r}")

    def queries(self) -> list[Query]:
        """All queries, flattened in template order."""
        return [q for t in self.templates for q in t.queries]

    def labeled_pairs(self) -> tuple[list[Query], np.ndarray]:
        """(queries, cardinalities) flattened in template order."""
        if not self.labeled:
            raise QueryError("suite is not labeled; call label() first")
        queries = self.queries()
        cards = np.asarray(
            [c for t in self.templates for c in t.cardinalities], dtype=np.float64
        )
        return queries, cards

    def subset(self, names: list[str] | tuple[str, ...]) -> "TemplateSuite":
        """The sub-suite holding exactly ``names`` (original order kept)."""
        wanted = set(names)
        unknown = wanted - set(self.names)
        if unknown:
            raise QueryError(f"unknown templates {sorted(unknown)}")
        return TemplateSuite(
            templates=tuple(t for t in self.templates if t.name in wanted)
        )

    # ------------------------------------------------------------------
    # labeling
    # ------------------------------------------------------------------
    def label(
        self,
        db: Database,
        drop_zero: bool = True,
        min_queries_per_template: int = 1,
    ) -> "TemplateSuite":
        """Execute every query against ``db`` and attach cardinalities.

        Zero-cardinality instances are dropped by default (their
        log-label is undefined, matching the sketch builder); templates
        left with fewer than ``min_queries_per_template`` labeled
        instances are dropped entirely.
        """
        labeled: list[TemplateQueries] = []
        for entry in self.templates:
            kept: list[Query] = []
            cards: list[int] = []
            for query in entry.queries:
                cardinality = execute_count(db, query)
                if cardinality == 0 and drop_zero:
                    continue
                kept.append(query)
                cards.append(int(cardinality))
            if len(kept) < min_queries_per_template:
                continue
            labeled.append(
                TemplateQueries(
                    template=entry.template,
                    queries=tuple(kept),
                    cardinalities=tuple(cards),
                )
            )
        return TemplateSuite(templates=tuple(labeled))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-safe dict; queries travel as SQL text (exact round trip)."""
        return {
            "version": SUITE_VERSION,
            "templates": [
                {
                    "name": t.template.name,
                    "tables": [[ref.table, ref.alias] for ref in t.template.tables],
                    "joins": [
                        [j.left_alias, j.left_column, j.right_alias, j.right_column]
                        for j in t.template.joins
                    ],
                    "slots": [
                        {
                            "alias": s.alias,
                            "table": s.table,
                            "column": s.column,
                            "family": s.family,
                            "ops": list(s.ops),
                            "in_arity": s.in_arity,
                        }
                        for s in t.template.slots
                    ],
                    "queries": [q.to_sql() for q in t.queries],
                    "cardinalities": (
                        list(t.cardinalities) if t.cardinalities is not None else None
                    ),
                }
                for t in self.templates
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TemplateSuite":
        from ..db.sql import parse_sql

        try:
            version = payload["version"]
            if version != SUITE_VERSION:
                raise QueryError(f"unsupported suite version {version!r}")
            templates = []
            for entry in payload["templates"]:
                template = SuiteTemplate(
                    name=entry["name"],
                    tables=tuple(TableRef(t, a) for t, a in entry["tables"]),
                    joins=tuple(JoinEdge(*j) for j in entry["joins"]),
                    slots=tuple(
                        PredicateSlot(
                            alias=s["alias"],
                            table=s["table"],
                            column=s["column"],
                            family=s["family"],
                            ops=tuple(s["ops"]),
                            in_arity=int(s["in_arity"]),
                        )
                        for s in entry["slots"]
                    ),
                )
                cards = entry.get("cardinalities")
                templates.append(
                    TemplateQueries(
                        template=template,
                        queries=tuple(parse_sql(sql) for sql in entry["queries"]),
                        cardinalities=(
                            tuple(int(c) for c in cards) if cards is not None else None
                        ),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed suite payload: {exc}") from exc
        return cls(templates=tuple(templates))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form.

        Two suites have equal digests iff their serialized forms are
        byte-identical — the cross-process determinism fingerprint.
        """
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs of the template-suite generator."""

    n_templates: int = 8
    queries_per_template: int = 50
    min_joins: int = 0
    #: Deeper than the uniform generator's default: chains like
    #: ``title ⋈ movie_keyword ⋈ keyword`` need room to grow.
    max_joins: int = 4
    #: Probability that a join step reuses an already-included table
    #: under a fresh alias (a self-join), when the FK graph allows it.
    self_join_fraction: float = 0.25
    max_predicates_per_table: int = 2
    #: IN-list size range (arity is drawn per slot, then fixed).
    in_min_arity: int = 2
    in_max_arity: int = 4
    #: Drawing budget per requested item before giving up on dedup.
    max_attempts_factor: int = 30

    def __post_init__(self):
        if self.n_templates < 1:
            raise QueryError(f"n_templates must be positive, got {self.n_templates}")
        if self.queries_per_template < 1:
            raise QueryError(
                f"queries_per_template must be positive, got "
                f"{self.queries_per_template}"
            )
        if not 0 <= self.min_joins <= self.max_joins:
            raise QueryError(
                f"need 0 <= min_joins <= max_joins, got "
                f"{self.min_joins}..{self.max_joins}"
            )
        if not 0.0 <= self.self_join_fraction <= 1.0:
            raise QueryError(
                f"self_join_fraction must be in [0, 1], got "
                f"{self.self_join_fraction}"
            )
        if not 1 <= self.in_min_arity <= self.in_max_arity:
            raise QueryError(
                f"need 1 <= in_min_arity <= in_max_arity, got "
                f"{self.in_min_arity}..{self.in_max_arity}"
            )


class TemplateSuiteGenerator:
    """Draws a :class:`TemplateSuite` from a database + workload spec.

    Two-level drawing, all through :mod:`repro.rng`: the parent
    generator draws template *shapes* (dedup'd by structure), then each
    template gets a spawned child generator for its literal draws — so
    templates are independent and the whole suite is reproducible from
    one seed.
    """

    def __init__(
        self,
        db: Database,
        spec: WorkloadSpec,
        config: SuiteConfig | None = None,
        seed: SeedLike = None,
    ):
        self.db = db
        self.spec = spec
        self.config = config or SuiteConfig()
        self.rng = make_rng(seed)
        for table in spec.tables:
            if table not in db.tables:
                raise QueryError(f"workload spec references unknown table {table!r}")
        self._neighbors = build_neighbor_map(db, spec)
        self._pools = build_literal_pools(db, spec)

    # ------------------------------------------------------------------
    # template shapes
    # ------------------------------------------------------------------
    def _fresh_alias(self, base: str, taken: set[str]) -> str:
        if base not in taken:
            return base
        k = 2
        while f"{base}{k}" in taken:
            k += 1
        return f"{base}{k}"

    def _draw_structure(
        self, rng: np.random.Generator
    ) -> tuple[list[tuple[str, str]], list[JoinEdge]]:
        """[(alias, table)], joins — grown along FKs, self-joins allowed."""
        cfg = self.config
        n_joins = int(rng.integers(cfg.min_joins, cfg.max_joins + 1))
        start = str(rng.choice(list(self.spec.tables)))
        aliases: list[tuple[str, str]] = [(self.spec.alias_of(start), start)]
        joins: list[JoinEdge] = []
        while len(joins) < n_joins:
            new_edges: list[tuple[str, str, str, str]] = []
            self_edges: list[tuple[str, str, str, str]] = []
            present_tables = {table for _, table in aliases}
            for alias, table in aliases:
                for neighbor, own_col, other_col in self._neighbors[table]:
                    edge = (alias, own_col, neighbor, other_col)
                    if neighbor in present_tables:
                        self_edges.append(edge)
                    else:
                        new_edges.append(edge)
            frontier = new_edges
            if self_edges and (
                not new_edges or rng.random() < cfg.self_join_fraction
            ):
                frontier = self_edges
            if not frontier:
                break  # the component is exhausted
            src_alias, own_col, neighbor, other_col = frontier[
                int(rng.integers(0, len(frontier)))
            ]
            taken = {alias for alias, _ in aliases}
            neighbor_alias = self._fresh_alias(self.spec.alias_of(neighbor), taken)
            aliases.append((neighbor_alias, neighbor))
            joins.append(JoinEdge(src_alias, own_col, neighbor_alias, other_col))
        return aliases, joins

    def _draw_slot(
        self, rng: np.random.Generator, alias: str, table: str, column: str
    ) -> PredicateSlot:
        dtype = self.db.table(table).column(column).dtype
        families = STRING_FAMILIES if dtype is DType.STRING else NUMERIC_FAMILIES
        family = str(rng.choice(list(families)))
        cfg = self.config
        if family == "eq":
            ops: tuple[str, ...] = ("=",)
            arity = 0
        elif family == "range":
            ops = (str(rng.choice(list(RANGE_OPS))),)
            arity = 0
        elif family == "between":
            ops = (">=", "<=")
            arity = 0
        else:  # in
            ops = ("in",)
            distinct = self._pools[(table, column)][1]
            high = min(cfg.in_max_arity, len(distinct))
            low = min(cfg.in_min_arity, high)
            arity = int(rng.integers(low, high + 1))
        return PredicateSlot(
            alias=alias, table=table, column=column, family=family, ops=ops,
            in_arity=arity,
        )

    def _draw_slots(
        self, rng: np.random.Generator, aliases: list[tuple[str, str]]
    ) -> list[PredicateSlot]:
        slots: list[PredicateSlot] = []
        eligible: list[tuple[str, str]] = []
        for alias, table in aliases:
            columns = self.spec.columns_of(table)
            if not columns:
                continue
            eligible.append((alias, table))
            max_preds = min(self.config.max_predicates_per_table, len(columns))
            n_preds = int(rng.integers(0, max_preds + 1))
            if n_preds == 0:
                continue
            chosen = rng.choice(len(columns), size=n_preds, replace=False)
            for idx in sorted(int(i) for i in chosen):
                slots.append(self._draw_slot(rng, alias, table, columns[idx]))
        if not slots and eligible:
            # A template with no predicate has nothing to parameterize.
            alias, table = eligible[int(rng.integers(0, len(eligible)))]
            columns = self.spec.columns_of(table)
            column = columns[int(rng.integers(0, len(columns)))]
            slots.append(self._draw_slot(rng, alias, table, column))
        return slots

    def _draw_template(self, rng: np.random.Generator, index: int) -> SuiteTemplate:
        aliases, joins = self._draw_structure(rng)
        slots = self._draw_slots(rng, aliases)
        marker = "s" if len({t for _, t in aliases}) != len(aliases) else ""
        name = f"q{index:02d}_{len(joins)}j{marker}_{len(slots)}p"
        return SuiteTemplate(
            name=name,
            tables=tuple(TableRef(table, alias) for alias, table in aliases),
            joins=tuple(joins),
            slots=tuple(slots),
        )

    # ------------------------------------------------------------------
    # literal instantiation
    # ------------------------------------------------------------------
    def _draw_value(self, rng: np.random.Generator, table: str, column: str):
        """One literal, frequency-weighted or uniform-over-distinct."""
        rows_pool, distinct_pool = self._pools[(table, column)]
        pool = distinct_pool if rng.random() < 0.5 else rows_pool
        raw = pool[int(rng.integers(0, len(pool)))]
        return decode_pool_value(self.db, table, column, raw)

    def _instantiate_slot(
        self, rng: np.random.Generator, slot: PredicateSlot
    ) -> list[Predicate]:
        if slot.family == "eq":
            return [
                Predicate(slot.alias, slot.column, "=",
                          self._draw_value(rng, slot.table, slot.column))
            ]
        if slot.family == "range":
            return [
                Predicate(slot.alias, slot.column, slot.ops[0],
                          self._draw_value(rng, slot.table, slot.column))
            ]
        if slot.family == "between":
            a = self._draw_value(rng, slot.table, slot.column)
            b = self._draw_value(rng, slot.table, slot.column)
            lo, hi = (a, b) if a <= b else (b, a)
            return [
                Predicate(slot.alias, slot.column, ">=", lo),
                Predicate(slot.alias, slot.column, "<=", hi),
            ]
        # in: distinct members, sampled without replacement.
        distinct = self._pools[(slot.table, slot.column)][1]
        arity = min(slot.in_arity, len(distinct))
        picks = rng.choice(len(distinct), size=arity, replace=False)
        members = tuple(
            decode_pool_value(self.db, slot.table, slot.column, distinct[int(i)])
            for i in picks
        )
        return [Predicate(slot.alias, slot.column, "in", members)]

    def _instantiate(
        self, rng: np.random.Generator, template: SuiteTemplate
    ) -> TemplateQueries:
        cfg = self.config
        seen: set[Query] = set()
        queries: list[Query] = []
        attempts = cfg.max_attempts_factor * cfg.queries_per_template
        for _ in range(attempts):
            if len(queries) >= cfg.queries_per_template:
                break
            predicates = [
                pred for slot in template.slots
                for pred in self._instantiate_slot(rng, slot)
            ]
            query = Query(
                tables=template.tables,
                joins=template.joins,
                predicates=tuple(predicates),
            )
            if query in seen:
                continue
            seen.add(query)
            queries.append(query)
        if not queries:
            raise QueryError(
                f"template {template.name!r} produced no instances in "
                f"{attempts} attempts"
            )
        return TemplateQueries(template=template, queries=tuple(queries))

    # ------------------------------------------------------------------
    # the suite
    # ------------------------------------------------------------------
    def generate(self) -> TemplateSuite:
        """Draw the configured number of distinct templates + instances."""
        cfg = self.config
        shapes: list[SuiteTemplate] = []
        seen_structures: set[tuple] = set()
        attempts = cfg.max_attempts_factor * cfg.n_templates
        for _ in range(attempts):
            if len(shapes) >= cfg.n_templates:
                break
            template = self._draw_template(self.rng, len(shapes))
            key = template.structure_key()
            if key in seen_structures:
                continue
            seen_structures.add(key)
            shapes.append(template)
        if len(shapes) < cfg.n_templates:
            raise QueryError(
                f"could only draw {len(shapes)} distinct templates "
                f"(requested {cfg.n_templates}) in {attempts} attempts; "
                "widen the spec (more tables/columns) or lower n_templates"
            )
        template_rngs = spawn(self.rng, len(shapes))
        return TemplateSuite(
            templates=tuple(
                self._instantiate(rng, template)
                for rng, template in zip(template_rngs, shapes)
            )
        )


def generate_template_suite(
    db: Database,
    spec: WorkloadSpec,
    config: SuiteConfig | None = None,
    seed: SeedLike = None,
) -> TemplateSuite:
    """One-call convenience wrapper around :class:`TemplateSuiteGenerator`."""
    return TemplateSuiteGenerator(db, spec, config=config, seed=seed).generate()

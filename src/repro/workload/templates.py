"""Query templates with placeholders (paper Sections 1 and 3).

"Users can optionally specify a placeholder for a certain column to
define a query template ... A placeholder has a similar effect as a
group-by operation, except that it does not operate on all distinct
values of the group-by column but instead only on the values present in
the column sample that comes with the sketch."

Three instantiation modes mirror the demo:

* ``distinct`` — one equality-predicate instance per distinct sample
  value (the default placeholder behaviour);
* ``width``   — fixed-width ranges, e.g. width=1 groups an integer year
  column by year, width=365 groups a day-number date column by year
  ("EXTRACT(YEAR FROM date)"-style grouping);
* ``buckets`` — "grouping the output into equally sized buckets based on
  the minimum and maximum values from the sample".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..db.types import DType
from ..sampling.sampler import MaterializedSamples
from .query import Predicate, Query


@dataclass(frozen=True)
class TemplateInstance:
    """One instantiation of a template: the plot label and the query."""

    label: float | str
    query: Query


@dataclass(frozen=True)
class QueryTemplate:
    """A query with a placeholder on ``alias.column``.

    ``base`` must not already constrain the placeholder column; each
    instance extends the base with predicates binding the placeholder.
    """

    base: Query
    alias: str
    column: str

    def __post_init__(self):
        if self.alias not in {t.alias for t in self.base.tables}:
            raise QueryError(f"placeholder alias {self.alias!r} not in query")
        for pred in self.base.predicates_for(self.alias):
            if pred.column == self.column:
                raise QueryError(
                    f"base query already constrains placeholder column "
                    f"{self.alias}.{self.column}"
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _sample_column(self, samples: MaterializedSamples):
        table_name = self.base.alias_table(self.alias)
        return samples.for_table(table_name).column(self.column)

    def _with_predicates(self, predicates: tuple[Predicate, ...]) -> Query:
        return Query(
            tables=self.base.tables,
            joins=self.base.joins,
            predicates=self.base.predicates + predicates,
        )

    # ------------------------------------------------------------------
    # instantiation modes
    # ------------------------------------------------------------------
    def instantiate_distinct(
        self, samples: MaterializedSamples, limit: int | None = None
    ) -> list[TemplateInstance]:
        """One equality instance per distinct non-null sample value."""
        col = self._sample_column(samples)
        values = np.unique(col.non_null_values())
        if limit is not None:
            values = values[:limit]
        instances = []
        for raw in values:
            if col.dtype is DType.STRING:
                literal: float | int | str = col.dictionary[int(raw)]
            elif col.dtype is DType.INT64:
                literal = int(raw)
            else:
                literal = float(raw)
            query = self._with_predicates(
                (Predicate(self.alias, self.column, "=", literal),)
            )
            instances.append(TemplateInstance(label=literal, query=query))
        return instances

    def instantiate_width(
        self, samples: MaterializedSamples, width: float
    ) -> list[TemplateInstance]:
        """Fixed-width range instances covering the sample's value span.

        A width equal to one calendar unit implements the demo's
        "group by year" function for numeric date-like columns.
        """
        if width <= 0:
            raise QueryError(f"bucket width must be positive, got {width}")
        col = self._sample_column(samples)
        if col.dtype is DType.STRING:
            raise QueryError("width grouping needs a numeric placeholder column")
        present = col.non_null_values().astype(np.float64)
        if present.size == 0:
            return []
        low = np.floor(present.min() / width) * width
        high = present.max()
        edges = np.arange(low, high + width, width)
        return self._range_instances(edges, col.dtype, closed_last=True)

    def instantiate_buckets(
        self, samples: MaterializedSamples, n_buckets: int
    ) -> list[TemplateInstance]:
        """``n_buckets`` equal-width ranges between the sample min/max."""
        if n_buckets <= 0:
            raise QueryError(f"bucket count must be positive, got {n_buckets}")
        col = self._sample_column(samples)
        if col.dtype is DType.STRING:
            raise QueryError("bucket grouping needs a numeric placeholder column")
        present = col.non_null_values().astype(np.float64)
        if present.size == 0:
            return []
        edges = np.linspace(present.min(), present.max(), n_buckets + 1)
        return self._range_instances(edges, col.dtype, closed_last=True)

    def _range_instances(
        self, edges: np.ndarray, dtype: DType, closed_last: bool
    ) -> list[TemplateInstance]:
        instances = []
        for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
            last = i == len(edges) - 2
            if dtype is DType.INT64:
                lo_lit: float | int = int(np.ceil(lo))
                hi_lit: float | int = int(np.floor(hi)) if (last and closed_last) else int(np.ceil(hi))
            else:
                lo_lit, hi_lit = float(lo), float(hi)
            preds: list[Predicate] = [Predicate(self.alias, self.column, ">=", lo_lit)]
            if last and closed_last:
                preds.append(Predicate(self.alias, self.column, "<=", hi_lit))
            else:
                preds.append(Predicate(self.alias, self.column, "<", hi_lit))
            query = self._with_predicates(tuple(preds))
            instances.append(
                TemplateInstance(label=float((lo + hi) / 2.0), query=query)
            )
        return instances

    def instantiate(
        self,
        samples: MaterializedSamples,
        mode: str = "distinct",
        width: float | None = None,
        n_buckets: int | None = None,
        limit: int | None = None,
    ) -> list[TemplateInstance]:
        """Dispatch over the three instantiation modes."""
        if mode == "distinct":
            return self.instantiate_distinct(samples, limit=limit)
        if mode == "width":
            if width is None:
                raise QueryError("width mode requires a width")
            return self.instantiate_width(samples, width)
        if mode == "buckets":
            if n_buckets is None:
                raise QueryError("buckets mode requires n_buckets")
            return self.instantiate_buckets(samples, n_buckets)
        raise QueryError(f"unknown template mode {mode!r}")

"""Replay a templated suite as a skewed, bursty, open-loop stream.

The serving tier (PRs 1-6) was exercised with uniform 512-query
streams; production traffic is nothing like that.  A
:class:`TrafficShaper` turns any :class:`~repro.workload.suite.TemplateSuite`
into the three properties real workloads have:

* **skew** — templates are drawn from a Zipfian popularity mix
  (:func:`repro.datasets.distributions.zipf_weights`), with the
  popularity ranking itself seeded, so "which template is hot" varies
  by seed but is reproducible;
* **bursts** — arrivals follow an on/off pattern: Poisson arrivals at
  ``rate_qps`` during ON windows of ``burst_on_s``, silence for
  ``burst_off_s`` between them;
* **open loop** — submission times come from the schedule, not from
  response completion, so a slow server faces a growing queue exactly
  like a real front door (this is what makes admission control
  observable).

``replay()`` drives any :class:`~repro.serve.service.SketchService`
(sync server, async server, remote SDK, gateway — anything with
``submit``) and audits the outcome: every submitted future must
resolve (zero hung futures) and every failure must carry a structured
code from :data:`repro.serve.engine.RESPONSE_CODES`.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..metrics import percentile
from ..rng import SeedLike, make_rng
from .query import Query
from .suite import TemplateSuite


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the replayed stream."""

    n_requests: int = 256
    #: Zipf exponent of the template mix; 0 = uniform popularity.
    zipf_s: float = 1.1
    #: Poisson arrival rate inside ON windows (requests/second).
    rate_qps: float = 2000.0
    burst_on_s: float = 0.05
    burst_off_s: float = 0.10
    #: Multiplier on every scheduled gap at replay time; 0 submits the
    #: whole schedule as fast as possible (tests), 1 replays real time.
    time_scale: float = 1.0
    #: Per-future wait bound when collecting; a future still unresolved
    #: after this is counted as hung (it is never re-awaited).
    timeout_s: float = 60.0

    def __post_init__(self):
        if self.n_requests < 1:
            raise ReproError(f"n_requests must be positive, got {self.n_requests}")
        if self.zipf_s < 0:
            raise ReproError(f"zipf_s must be non-negative, got {self.zipf_s}")
        if self.rate_qps <= 0:
            raise ReproError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.burst_on_s <= 0:
            raise ReproError(f"burst_on_s must be positive, got {self.burst_on_s}")
        if self.burst_off_s < 0:
            raise ReproError(
                f"burst_off_s must be non-negative, got {self.burst_off_s}"
            )
        if self.time_scale < 0:
            raise ReproError(f"time_scale must be non-negative, got {self.time_scale}")
        if self.timeout_s <= 0:
            raise ReproError(f"timeout_s must be positive, got {self.timeout_s}")


@dataclass(frozen=True)
class ScheduledRequest:
    """One arrival: when, which template, which instance."""

    at_s: float
    template: str
    query: Query


@dataclass
class ReplayResult:
    """What happened when a schedule was replayed against a service."""

    n_requests: int = 0
    n_ok: int = 0
    n_cached: int = 0
    #: Failures by structured code (RESPONSE_CODES keys only).
    code_counts: dict[str, int] = field(default_factory=dict)
    #: Futures that never resolved within the timeout — must be 0.
    n_unresolved: int = 0
    #: ok=False responses without a recognized structured code — must be 0.
    n_unstructured: int = 0
    per_template: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    achieved_qps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0

    @property
    def n_failed(self) -> int:
        return sum(self.code_counts.values()) + self.n_unstructured

    @property
    def structured_only(self) -> bool:
        """True when every failure carried a known structured code."""
        return self.n_unstructured == 0

    @property
    def zero_hung(self) -> bool:
        return self.n_unresolved == 0

    @property
    def ok(self) -> bool:
        """The audit: nothing hung, nothing unstructured, answers add up."""
        return (
            self.zero_hung
            and self.structured_only
            and self.n_ok + self.n_failed == self.n_requests
        )

    def audit(self) -> dict:
        """JSON-friendly audit block (the bench gates read this)."""
        return {
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_cached": self.n_cached,
            "n_failed": self.n_failed,
            "code_counts": dict(sorted(self.code_counts.items())),
            "n_unresolved": self.n_unresolved,
            "n_unstructured": self.n_unstructured,
            "zero_hung": self.zero_hung,
            "structured_only": self.structured_only,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
            "achieved_qps": self.achieved_qps,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
                "max": self.latency_max_ms,
            },
            "per_template": dict(sorted(self.per_template.items())),
        }


class TrafficShaper:
    """Schedules and replays a suite as skewed + bursty open-loop load."""

    def __init__(
        self,
        suite: TemplateSuite,
        config: TrafficConfig | None = None,
        seed: SeedLike = None,
    ):
        if len(suite) == 0:
            raise ReproError("cannot shape traffic from an empty suite")
        self.suite = suite
        self.config = config or TrafficConfig()
        self.rng = make_rng(seed)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def template_weights(self) -> dict[str, float]:
        """Zipfian popularity per template (ranking seeded)."""
        from ..datasets.distributions import zipf_weights

        names = list(self.suite.names)
        ranking = [names[int(i)] for i in self.rng.permutation(len(names))]
        weights = zipf_weights(len(ranking), s=self.config.zipf_s)
        return {name: float(w) for name, w in zip(ranking, weights)}

    def schedule(self) -> list[ScheduledRequest]:
        """Draw the full arrival schedule (deterministic given the seed).

        Inter-arrival gaps are exponential at ``rate_qps`` on the ON-time
        axis; wall-clock times are that axis with ``burst_off_s`` of
        silence spliced in after every ``burst_on_s`` of ON time.
        """
        cfg = self.config
        weights = self.template_weights()
        names = list(weights)
        probs = np.array([weights[n] for n in names], dtype=np.float64)
        entries = {t.name: t for t in self.suite.templates}

        gaps = self.rng.exponential(1.0 / cfg.rate_qps, size=cfg.n_requests)
        on_times = np.cumsum(gaps)
        # Splice the OFF windows in: every completed ON window of length
        # burst_on_s pushes later arrivals out by burst_off_s.
        wall_times = on_times + np.floor(on_times / cfg.burst_on_s) * cfg.burst_off_s

        picks = self.rng.choice(len(names), size=cfg.n_requests, p=probs)
        scheduled: list[ScheduledRequest] = []
        for at_s, pick in zip(wall_times, picks):
            entry = entries[names[int(pick)]]
            query = entry.queries[int(self.rng.integers(0, len(entry.queries)))]
            scheduled.append(
                ScheduledRequest(at_s=float(at_s), template=entry.name, query=query)
            )
        return scheduled

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(
        self,
        service,
        schedule: list[ScheduledRequest] | None = None,
        on_response=None,
    ) -> ReplayResult:
        """Submit the schedule open-loop against ``service`` and audit.

        ``service`` is any :class:`~repro.serve.service.SketchService`;
        for the sync facade (which resolves futures only at a flush) the
        shaper calls ``flush()`` once after the last submission, so the
        audit semantics are identical across facades.

        ``on_response`` is an optional callable invoked once per
        *resolved* response, in collection order, with
        ``(response, resolved_at)`` where ``resolved_at`` is the
        ``time.perf_counter()`` instant the future's done-callback fired.
        Hot-swap audits use it to record which snapshot ``token``
        answered each request against the swap timeline; unresolved
        (hung) futures never reach it.
        """
        from ..serve.engine import RESPONSE_CODES

        cfg = self.config
        if schedule is None:
            schedule = self.schedule()
        result = ReplayResult(n_requests=len(schedule))

        records: list[tuple[str, float, object, list]] = []
        start = time.perf_counter()
        for request in schedule:
            if cfg.time_scale > 0:
                target = start + request.at_s * cfg.time_scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            submitted = time.perf_counter()
            future = service.submit(request.query)
            done_at: list[float] = []
            future.add_done_callback(
                lambda _f, box=done_at: box.append(time.perf_counter())
            )
            records.append((request.template, submitted, future, done_at))
        if hasattr(service, "flush"):
            service.flush()

        latencies_ms: list[float] = []
        deadline = time.perf_counter() + cfg.timeout_s
        for template, submitted, future, done_at in records:
            result.per_template[template] = result.per_template.get(template, 0) + 1
            remaining = deadline - time.perf_counter()
            try:
                response = future.result(timeout=max(remaining, 0.0))
            except (TimeoutError, _FutureTimeout):
                result.n_unresolved += 1
                continue
            except Exception:
                # SketchService futures resolve with structured
                # responses, never raise; anything else is unstructured.
                result.n_unstructured += 1
                continue
            resolved = done_at[0] if done_at else time.perf_counter()
            latencies_ms.append((resolved - submitted) * 1000.0)
            if on_response is not None:
                on_response(response, resolved)
            if getattr(response, "ok", False):
                result.n_ok += 1
                if getattr(response, "cached", False):
                    result.n_cached += 1
            else:
                code = getattr(response, "code", None)
                if code in RESPONSE_CODES:
                    result.code_counts[code] = result.code_counts.get(code, 0) + 1
                else:
                    result.n_unstructured += 1
        result.wall_seconds = time.perf_counter() - start
        if result.wall_seconds > 0:
            result.achieved_qps = result.n_requests / result.wall_seconds
        if latencies_ms:
            result.latency_p50_ms = percentile(latencies_ms, 0.50)
            result.latency_p95_ms = percentile(latencies_ms, 0.95)
            result.latency_p99_ms = percentile(latencies_ms, 0.99)
            result.latency_max_ms = max(latencies_ms)
        return result

"""Structured representation of the supported query class.

Deep Sketches estimate ``SELECT COUNT(*)`` queries that combine

* a set of base tables (with aliases),
* a set of equi-join edges between alias columns, and
* a set of base-table predicates ``alias.column <op> literal``

joined conjunctively.  This mirrors the MSCN model's view of a query as
three sets, and is the exchange format between the workload generators,
the SQL parser/printer, the executor, the samplers, and the featurizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..errors import QueryError
from ..ops import OPERATORS

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from ..db.database import Database

Literal = int | float | str | tuple


@dataclass(frozen=True, order=True)
class TableRef:
    """A base table with its alias, e.g. ``title t``."""

    table: str
    alias: str

    def __str__(self) -> str:
        return f"{self.table} {self.alias}"


@dataclass(frozen=True, order=True)
class JoinEdge:
    """An equi-join ``left_alias.left_column = right_alias.right_column``.

    Construction canonicalizes the side order so that structurally equal
    joins compare and hash equal regardless of how they were written.
    """

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def __post_init__(self):
        if self.left_alias == self.right_alias:
            raise QueryError(
                f"self-join edge on alias {self.left_alias!r} is not supported"
            )
        if (self.left_alias, self.left_column) > (self.right_alias, self.right_column):
            # Swap sides into canonical order (frozen dataclass workaround).
            old_left = (self.left_alias, self.left_column)
            object.__setattr__(self, "left_alias", self.right_alias)
            object.__setattr__(self, "left_column", self.right_column)
            object.__setattr__(self, "right_alias", old_left[0])
            object.__setattr__(self, "right_column", old_left[1])

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column}"
            f"={self.right_alias}.{self.right_column}"
        )

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset((self.left_alias, self.right_alias))

    def side_for(self, alias: str) -> str:
        """Column name used by ``alias`` in this join."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise QueryError(f"alias {alias!r} is not part of join {self}")

    def other(self, alias: str) -> tuple[str, str]:
        """(alias, column) of the side opposite ``alias``."""
        if alias == self.left_alias:
            return (self.right_alias, self.right_column)
        if alias == self.right_alias:
            return (self.left_alias, self.left_column)
        raise QueryError(f"alias {alias!r} is not part of join {self}")


def make_join(alias_a: str, column_a: str, alias_b: str, column_b: str) -> JoinEdge:
    """Create a canonical :class:`JoinEdge` (sides may be given in any order)."""
    return JoinEdge(alias_a, column_a, alias_b, column_b)


def _canonical_in_members(members) -> tuple:
    """Validate and canonicalize an ``in`` literal's member tuple.

    Members must be scalars of one kind (all strings or all numerics);
    duplicates collapse and the survivors are sorted, so two IN lists
    with the same member set compare, hash, and print identically.
    """
    if isinstance(members, (str, bytes)) or not isinstance(members, (tuple, list)):
        raise QueryError(
            f"'in' takes a tuple of scalar literals, got {members!r}"
        )
    if not members:
        raise QueryError("'in' needs at least one member literal")
    kinds = set()
    for member in members:
        if isinstance(member, bool):
            raise QueryError("boolean literals are not supported")
        if isinstance(member, str):
            kinds.add("string")
        elif isinstance(member, (int, float)):
            kinds.add("numeric")
        else:
            raise QueryError(f"unsupported 'in' member literal {member!r}")
    if len(kinds) > 1:
        raise QueryError(
            f"'in' members must all be strings or all numeric, got {members!r}"
        )
    return tuple(sorted(set(members)))


@dataclass(frozen=True)
class Predicate:
    """A base-table selection ``alias.column <op> literal``.

    For ``op == "in"`` the literal is a non-empty tuple of same-kind
    scalars (set membership, i.e. a disjunction of equalities); member
    order and duplicates are canonicalized away at construction.
    """

    alias: str
    column: str
    op: str
    literal: Literal

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise QueryError(f"unknown operator {self.op!r}")
        if self.op == "in":
            object.__setattr__(
                self, "literal", _canonical_in_members(self.literal)
            )
            return
        if isinstance(self.literal, bool):
            raise QueryError("boolean literals are not supported")
        if isinstance(self.literal, (tuple, list)):
            raise QueryError(
                f"tuple literals are only valid with 'in', got op {self.op!r}"
            )

    def __str__(self) -> str:
        from ..db.sql import format_literal

        if self.op == "in":
            members = ",".join(format_literal(m) for m in self.literal)
            return f"{self.alias}.{self.column} IN ({members})"
        if isinstance(self.literal, str):
            escaped = self.literal.replace("'", "''")
            return f"{self.alias}.{self.column}{self.op}'{escaped}'"
        return f"{self.alias}.{self.column}{self.op}{self.literal!r}"

    def sort_key(self) -> tuple:
        return (self.alias, self.column, self.op, str(self.literal))


@dataclass(frozen=True)
class Query:
    """A COUNT(*) conjunctive query: three sets, stored canonically sorted."""

    tables: tuple[TableRef, ...]
    joins: tuple[JoinEdge, ...] = ()
    predicates: tuple[Predicate, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "tables", tuple(sorted(self.tables)))
        object.__setattr__(self, "joins", tuple(sorted(self.joins)))
        object.__setattr__(
            self,
            "predicates",
            tuple(sorted(self.predicates, key=Predicate.sort_key)),
        )
        if not self.tables:
            raise QueryError("a query needs at least one table")
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in {aliases}")
        alias_set = set(aliases)
        for join in self.joins:
            missing = join.aliases - alias_set
            if missing:
                raise QueryError(f"join {join} references unknown aliases {missing}")
        for pred in self.predicates:
            if pred.alias not in alias_set:
                raise QueryError(
                    f"predicate {pred} references unknown alias {pred.alias!r}"
                )
        # The serving fast paths (result cache, dedup map, batch slot
        # collapsing) hash each query several times per request, and the
        # generated dataclass hash walks three tuples of nested frozen
        # dataclasses every call.  The fields are immutable after
        # canonicalization, so hash once here.
        object.__setattr__(
            self, "_hash", hash((self.tables, self.joins, self.predicates))
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> list[str]:
        return [t.alias for t in self.tables]

    def alias_table(self, alias: str) -> str:
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise QueryError(f"unknown alias {alias!r}")

    def predicates_for(self, alias: str) -> list[Predicate]:
        return [p for p in self.predicates if p.alias == alias]

    def joins_for(self, alias: str) -> list[JoinEdge]:
        return [j for j in self.joins if alias in j.aliases]

    @property
    def num_joins(self) -> int:
        return len(self.joins)

    # ------------------------------------------------------------------
    # validation against a database
    # ------------------------------------------------------------------
    def validate(self, db: "Database") -> None:
        """Check every table/column reference and literal type against ``db``.

        Raises :class:`~repro.errors.QueryError` on the first problem.
        """
        for ref in self.tables:
            if ref.table not in db.tables:
                raise QueryError(f"unknown table {ref.table!r}")
        for join in self.joins:
            for alias in (join.left_alias, join.right_alias):
                table = db.table(self.alias_table(alias))
                column_name = join.side_for(alias)
                if not table.schema.has_column(column_name):
                    raise QueryError(
                        f"join {join}: table {table.name!r} has no column "
                        f"{column_name!r}"
                    )
                if not table.schema.column(column_name).dtype.is_numeric:
                    raise QueryError(
                        f"join {join}: column {table.name}.{column_name} "
                        "is not numeric (string joins are unsupported)"
                    )
        for pred in self.predicates:
            table = db.table(self.alias_table(pred.alias))
            if not table.schema.has_column(pred.column):
                raise QueryError(
                    f"predicate {pred}: table {table.name!r} has no column "
                    f"{pred.column!r}"
                )
            # encode_literal raises QueryError on type mismatch.
            column = table.column(pred.column)
            if pred.op == "in":
                for member in pred.literal:
                    column.encode_literal(member)
            else:
                column.encode_literal(pred.literal)

    # ------------------------------------------------------------------
    # SQL rendering (lazy import avoids a db <-> workload cycle)
    # ------------------------------------------------------------------
    def to_sql(self) -> str:
        from ..db.sql import to_sql

        return to_sql(self)

    def __str__(self) -> str:
        return self.to_sql()


def single_table_query(
    table: str, alias: str | None = None, predicates: Iterable[Predicate] = ()
) -> Query:
    """Shorthand for a one-table query."""
    alias = alias or table
    return Query(tables=(TableRef(table, alias),), predicates=tuple(predicates))

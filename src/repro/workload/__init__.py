"""Query model, workload generators, templated suites, and traffic shaping."""

from .generator import (
    TrainingQueryGenerator,
    WorkloadSpec,
    build_literal_pools,
    build_neighbor_map,
    spec_for_imdb,
    spec_for_imdb_templates,
    spec_for_tpch,
)
from .joblight import JobLightConfig, generate_job_light
from .query import (
    JoinEdge,
    Predicate,
    Query,
    TableRef,
    make_join,
    single_table_query,
)
from .splits import (
    TemplateSplit,
    split_by_template,
    split_within_template,
    template_folds,
)
from .suite import (
    PredicateSlot,
    SuiteConfig,
    SuiteTemplate,
    TemplateQueries,
    TemplateSuite,
    TemplateSuiteGenerator,
    generate_template_suite,
)
from .templates import QueryTemplate, TemplateInstance
from .traffic import ReplayResult, ScheduledRequest, TrafficConfig, TrafficShaper

__all__ = [
    "Query",
    "TableRef",
    "JoinEdge",
    "Predicate",
    "make_join",
    "single_table_query",
    "WorkloadSpec",
    "TrainingQueryGenerator",
    "build_neighbor_map",
    "build_literal_pools",
    "spec_for_imdb",
    "spec_for_imdb_templates",
    "spec_for_tpch",
    "JobLightConfig",
    "generate_job_light",
    "QueryTemplate",
    "TemplateInstance",
    "PredicateSlot",
    "SuiteTemplate",
    "SuiteConfig",
    "TemplateQueries",
    "TemplateSuite",
    "TemplateSuiteGenerator",
    "generate_template_suite",
    "TemplateSplit",
    "split_by_template",
    "split_within_template",
    "template_folds",
    "TrafficConfig",
    "TrafficShaper",
    "ReplayResult",
    "ScheduledRequest",
]

"""Query model, workload generators, and templates."""

from .generator import (
    TrainingQueryGenerator,
    WorkloadSpec,
    spec_for_imdb,
    spec_for_tpch,
)
from .joblight import JobLightConfig, generate_job_light
from .query import (
    JoinEdge,
    Predicate,
    Query,
    TableRef,
    make_join,
    single_table_query,
)
from .templates import QueryTemplate, TemplateInstance

__all__ = [
    "Query",
    "TableRef",
    "JoinEdge",
    "Predicate",
    "make_join",
    "single_table_query",
    "WorkloadSpec",
    "TrainingQueryGenerator",
    "spec_for_imdb",
    "spec_for_tpch",
    "JobLightConfig",
    "generate_job_light",
    "QueryTemplate",
    "TemplateInstance",
]

"""A JOB-light-style evaluation workload.

Table 1 of the paper evaluates on JOB-light, a 70-query workload derived
from the Join Order Benchmark.  The real queries reference the original
IMDb's literals, so they cannot run against a synthetic database; this
module generates a workload with the documented *shape* instead:

* 70 queries over the six JOB-light tables,
* one to four joins, every query a star around ``title`` (all JOB-light
  joins are ``X.movie_id = t.id``),
* no string predicates and no disjunctions,
* mostly equality predicates on dimension-table attributes,
* the only range predicate is on ``title.production_year``.

Crucially, the training workload (generator.py) uses 0–2 joins and a
uniform operator mix, so evaluating on this workload exercises the same
distribution shift the paper highlights ("MSCN can generalize to
workloads with distributions different from the training data").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..rng import SeedLike, make_rng
from ..db.database import Database
from ..db.executor import execute_count
from ..workload.query import JoinEdge, Predicate, Query, TableRef
from ..datasets.imdb import JOB_LIGHT_ALIASES

#: Fact tables joinable to title, with their equality-predicate columns.
_FACT_PREDICATES = {
    "movie_keyword": ("keyword_id",),
    "movie_info": ("info_type_id",),
    "movie_info_idx": ("info_type_id",),
    "movie_companies": ("company_type_id", "company_id"),
    "cast_info": ("role_id",),
}

#: JOB-light join-count histogram (1..4 joins); queries with 2-3 joins
#: dominate the original workload.
_JOIN_COUNT_WEIGHTS = {1: 0.2, 2: 0.35, 3: 0.3, 4: 0.15}


@dataclass(frozen=True)
class JobLightConfig:
    """Workload-shape knobs; defaults follow the original JOB-light."""

    n_queries: int = 70
    seed: int = 42
    #: Probability a query carries a production_year range predicate.
    year_predicate_prob: float = 0.75
    #: Probability a query carries an equality predicate on kind_id.
    kind_predicate_prob: float = 0.25
    #: Probability each joined fact table carries an equality predicate.
    fact_predicate_prob: float = 0.7
    #: Discard queries whose true cardinality is zero (JOB-light queries
    #: all return results on the real IMDb).
    require_nonzero: bool = True
    max_attempts_factor: int = 50


def generate_job_light(
    db: Database, config: JobLightConfig | None = None, seed: SeedLike = None
) -> list[Query]:
    """Generate the JOB-light-style workload against ``db``.

    With ``require_nonzero`` the true cardinality of each candidate is
    checked with the exact executor and empty queries are rejected, so
    the returned workload is directly usable for Table 1.
    """
    cfg = config or JobLightConfig()
    rng = make_rng(cfg.seed if seed is None else seed)
    title = db.table("title")
    years = title.column("production_year").non_null_values()
    kinds = title.column("kind_id").non_null_values()
    if years.size == 0:
        raise QueryError("title.production_year has no values to draw from")

    fact_names = sorted(_FACT_PREDICATES)
    join_counts = np.array(sorted(_JOIN_COUNT_WEIGHTS))
    join_probs = np.array([_JOIN_COUNT_WEIGHTS[k] for k in join_counts], dtype=float)
    join_probs /= join_probs.sum()

    queries: list[Query] = []
    seen: set[Query] = set()
    attempts = 0
    max_attempts = cfg.n_queries * cfg.max_attempts_factor
    while len(queries) < cfg.n_queries:
        attempts += 1
        if attempts > max_attempts:
            raise QueryError(
                f"could not assemble {cfg.n_queries} non-empty JOB-light "
                f"queries in {max_attempts} attempts"
            )
        n_joins = int(rng.choice(join_counts, p=join_probs))
        chosen = rng.choice(len(fact_names), size=n_joins, replace=False)
        facts = [fact_names[int(i)] for i in chosen]

        tables = [TableRef("title", "t")] + [
            TableRef(f, JOB_LIGHT_ALIASES[f]) for f in facts
        ]
        joins = tuple(
            JoinEdge(JOB_LIGHT_ALIASES[f], "movie_id", "t", "id") for f in facts
        )

        predicates: list[Predicate] = []
        if rng.random() < cfg.year_predicate_prob:
            year = int(years[int(rng.integers(0, years.size))])
            op = str(rng.choice(["=", ">", "<"], p=[0.25, 0.5, 0.25]))
            predicates.append(Predicate("t", "production_year", op, year))
        if rng.random() < cfg.kind_predicate_prob:
            kind = int(kinds[int(rng.integers(0, kinds.size))])
            predicates.append(Predicate("t", "kind_id", "=", kind))
        for fact in facts:
            if rng.random() >= cfg.fact_predicate_prob:
                continue
            columns = _FACT_PREDICATES[fact]
            column = str(columns[int(rng.integers(0, len(columns)))])
            # Literals are drawn uniformly over the *distinct* values:
            # benchmark queries ask about specific entities regardless of
            # their popularity, which is exactly what pushes sampling-
            # based estimators into the paper's 0-tuple regime.
            pool = np.unique(db.table(fact).column(column).non_null_values())
            literal = int(pool[int(rng.integers(0, pool.size))])
            predicates.append(
                Predicate(JOB_LIGHT_ALIASES[fact], column, "=", literal)
            )
        if not predicates:
            continue  # every JOB-light query has at least one selection

        query = Query(tables=tuple(tables), joins=joins, predicates=tuple(predicates))
        if query in seen:
            continue
        if cfg.require_nonzero and execute_count(db, query) == 0:
            continue
        seen.add(query)
        queries.append(query)
    return queries

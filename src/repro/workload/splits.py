"""Train/test splits over templated suites.

Two complementary split semantics, following the DSB-style evaluation
methodology (train/test *by template*, not by query):

* :func:`split_by_template` — **held-out templates**: whole templates
  move to the test side, so evaluation measures generalization to query
  shapes never seen in training (the paper's headline claim).
* :func:`split_within_template` — **held-out literals**: every template
  appears on both sides, split instance-wise.  This is the classic
  uniform split, kept as the in-template baseline the cross-template
  numbers are compared against.
* :func:`template_folds` — round-robin k-fold variant of the
  template-level split, for when one holdout is too noisy.

All splits are seeded through :mod:`repro.rng` and never leak a
template (or, within templates, a query) across the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError
from ..rng import SeedLike, make_rng
from .suite import TemplateQueries, TemplateSuite


@dataclass(frozen=True)
class TemplateSplit:
    """A train/test pair of sub-suites."""

    train: TemplateSuite
    test: TemplateSuite

    @property
    def train_names(self) -> list[str]:
        return self.train.names

    @property
    def test_names(self) -> list[str]:
        return self.test.names


def _holdout_count(n: int, fraction: float, what: str) -> int:
    if not 0.0 < fraction < 1.0:
        raise QueryError(
            f"test_fraction must be strictly between 0 and 1, got {fraction}"
        )
    if n < 2:
        raise QueryError(
            f"need at least 2 {what} to split, got {n}"
        )
    return min(max(int(round(fraction * n)), 1), n - 1)


def split_by_template(
    suite: TemplateSuite, test_fraction: float = 0.25, seed: SeedLike = None
) -> TemplateSplit:
    """Hold out whole templates: the cross-template generalization split.

    A template's queries land entirely on one side — never both.  The
    partition is a seeded permutation of the template list, so the same
    seed always produces the same split.
    """
    n_test = _holdout_count(len(suite), test_fraction, "templates")
    rng = make_rng(seed)
    order = [suite.names[int(i)] for i in rng.permutation(len(suite))]
    test_names = set(order[:n_test])
    train_names = [name for name in suite.names if name not in test_names]
    return TemplateSplit(
        train=suite.subset(train_names),
        test=suite.subset([name for name in suite.names if name in test_names]),
    )


def template_folds(
    suite: TemplateSuite, n_folds: int, seed: SeedLike = None
) -> list[TemplateSplit]:
    """K-fold cross-validation over templates (round-robin assignment).

    Every template is the held-out side exactly once; folds partition
    the template set.  Raises when there are fewer templates than folds
    (an empty fold would silently evaluate nothing).
    """
    if n_folds < 2:
        raise QueryError(f"need at least 2 folds, got {n_folds}")
    if len(suite) < n_folds:
        raise QueryError(
            f"cannot split {len(suite)} templates into {n_folds} folds; "
            "reduce n_folds or generate more templates"
        )
    rng = make_rng(seed)
    order = [suite.names[int(i)] for i in rng.permutation(len(suite))]
    folds: list[list[str]] = [[] for _ in range(n_folds)]
    for position, name in enumerate(order):
        folds[position % n_folds].append(name)
    splits = []
    for held_out in folds:
        held = set(held_out)
        splits.append(
            TemplateSplit(
                train=suite.subset([n for n in suite.names if n not in held]),
                test=suite.subset([n for n in suite.names if n in held]),
            )
        )
    return splits


def split_within_template(
    suite: TemplateSuite, test_fraction: float = 0.25, seed: SeedLike = None
) -> TemplateSplit:
    """Hold out literals: every template split instance-wise.

    The in-template baseline — both sides see every template, only the
    constants differ.  Each template needs at least 2 queries; labels
    (when present) travel with their queries.
    """
    rng = make_rng(seed)
    train_entries: list[TemplateQueries] = []
    test_entries: list[TemplateQueries] = []
    for entry in suite.templates:
        n_test = _holdout_count(
            len(entry), test_fraction, f"queries in template {entry.name!r}"
        )
        order = rng.permutation(len(entry))
        test_idx = sorted(int(i) for i in order[:n_test])
        train_idx = sorted(int(i) for i in order[n_test:])

        def take(indices: list[int]) -> TemplateQueries:
            return TemplateQueries(
                template=entry.template,
                queries=tuple(entry.queries[i] for i in indices),
                cardinalities=(
                    tuple(entry.cardinalities[i] for i in indices)
                    if entry.cardinalities is not None
                    else None
                ),
            )

        train_entries.append(take(train_idx))
        test_entries.append(take(test_idx))
    return TemplateSplit(
        train=TemplateSuite(templates=tuple(train_entries)),
        test=TemplateSuite(templates=tuple(test_entries)),
    )

"""HyPer-style cardinality estimator.

HyPer (the research system at TUM the paper compares against) estimates
base-table selectivities by evaluating predicates against small
materialized samples and combines joins under an independence
assumption using distinct-value counts of the join keys.  Its
characteristic failure is exactly the paper's "0-tuple situation":
when no sampled tuple qualifies, it falls back to an educated guess.

The implementation here mirrors that architecture:

* base tables — qualifying fraction of a per-table sample (shared code
  path with the pure-sampling baseline),
* 0-tuple fallback — assume half a tuple qualified,
* joins — per-edge factor ``1 / max(nd_left, nd_right)`` over the cross
  product, with distinct counts taken from the *unfiltered* columns
  (i.e. independence between predicates and join keys — the assumption
  that correlated data violates).

The difference from :class:`~repro.baselines.sampling_only.SamplingEstimator`
is the join model: pure sampling scales an exact unfiltered join size,
HyPer-style composes per-edge independence factors, which is cheaper
but compounds errors across joins.
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..sampling.sampler import MaterializedSamples, materialize_samples
from ..db.executor import table_filter_mask
from ..workload.query import Query


class HyperEstimator:
    """Sample-based selections, independence-based joins."""

    name = "HyPer"

    def __init__(
        self,
        db: Database,
        samples: MaterializedSamples | None = None,
        sample_size: int = 1000,
        seed: int = 1,
    ):
        self.db = db
        self.samples = samples or materialize_samples(
            db, db.table_names(), sample_size, seed=seed
        )
        self._distinct_cache: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def _n_distinct(self, table: str, column: str) -> int:
        key = (table, column)
        if key not in self._distinct_cache:
            self._distinct_cache[key] = max(
                self.db.table(table).column(column).n_distinct(), 1
            )
        return self._distinct_cache[key]

    def table_selectivity(self, query: Query, alias: str) -> float:
        """Sample-estimated selectivity with the 0-tuple fallback."""
        predicates = query.predicates_for(alias)
        if not predicates:
            return 1.0
        sample = self.samples.for_table(query.alias_table(alias))
        if sample.n_rows == 0:
            return 1.0
        qualifying = int(table_filter_mask(sample, predicates).sum())
        if qualifying == 0:
            # The "educated guess" the paper calls out.
            return 0.5 / sample.n_rows
        return qualifying / sample.n_rows

    def join_selectivity(self, query: Query) -> float:
        """Per-edge independence factor 1/max(nd_left, nd_right)."""
        selectivity = 1.0
        for join in query.joins:
            nd = [
                self._n_distinct(query.alias_table(alias), join.side_for(alias))
                for alias in (join.left_alias, join.right_alias)
            ]
            selectivity *= 1.0 / max(nd)
        return selectivity

    def estimate(self, query: Query) -> float:
        """Cross product x sampled selectivities x join factors."""
        rows = 1.0
        for ref in query.tables:
            table = self.db.table(ref.table)
            rows *= max(table.n_rows, 1) * self.table_selectivity(query, ref.alias)
        rows *= self.join_selectivity(query)
        return max(float(np.asarray(rows)), 1.0)

"""Baseline cardinality estimators the paper compares against."""

from .hyper import HyperEstimator
from .postgres import (
    DEFAULT_EQ_SEL,
    DEFAULT_INEQ_SEL,
    PostgresEstimator,
    eq_selectivity,
    predicate_selectivity,
    range_selectivity,
)
from .sampling_only import SamplingEstimator
from .truth import TruthEstimator

__all__ = [
    "TruthEstimator",
    "SamplingEstimator",
    "HyperEstimator",
    "PostgresEstimator",
    "eq_selectivity",
    "range_selectivity",
    "predicate_selectivity",
    "DEFAULT_EQ_SEL",
    "DEFAULT_INEQ_SEL",
]

"""Pure sampling-based cardinality estimation.

The approach Deep Sketches build on and improve: evaluate each base
table's predicates against that table's materialized sample, take the
qualifying fraction as the selectivity, and scale the (exact,
precomputed) size of the unfiltered join by the product of the
selectivities.

Its documented weakness is the paper's "0-tuple situation": when no
sampled tuple qualifies, the estimator has no signal and must "fall back
to an 'educated' guess — causing large estimation errors".  The fallback
here assumes half a tuple qualified (selectivity ``0.5 / sample_rows``),
a standard smoothing choice; the zero-tuple benchmark shows how badly
this does against the learned sketch.
"""

from __future__ import annotations

from ..db.database import Database
from ..db.executor import execute_count, table_filter_mask
from ..sampling.sampler import MaterializedSamples, materialize_samples
from ..workload.query import Query


class SamplingEstimator:
    """Per-table sample selectivities times the unfiltered join size."""

    name = "Sampling"

    def __init__(
        self,
        db: Database,
        samples: MaterializedSamples | None = None,
        sample_size: int = 1000,
        seed: int = 0,
    ):
        self.db = db
        self.samples = samples or materialize_samples(
            db, db.table_names(), sample_size, seed=seed
        )
        #: Exact sizes of unfiltered joins, keyed by the query skeleton.
        self._join_size_cache: dict[Query, int] = {}

    # ------------------------------------------------------------------
    def _skeleton(self, query: Query) -> Query:
        """The query with all predicates stripped (joins only)."""
        return Query(tables=query.tables, joins=query.joins, predicates=())

    def _unfiltered_join_size(self, query: Query) -> int:
        skeleton = self._skeleton(query)
        if skeleton not in self._join_size_cache:
            self._join_size_cache[skeleton] = execute_count(self.db, skeleton)
        return self._join_size_cache[skeleton]

    def table_selectivity(self, query: Query, alias: str) -> float:
        """Sample-estimated selectivity of one alias' predicates."""
        predicates = query.predicates_for(alias)
        if not predicates:
            return 1.0
        sample = self.samples.for_table(query.alias_table(alias))
        if sample.n_rows == 0:
            return 1.0
        qualifying = int(table_filter_mask(sample, predicates).sum())
        if qualifying == 0:
            # The 0-tuple situation: no signal left in the sample.
            return 0.5 / sample.n_rows
        return qualifying / sample.n_rows

    def estimate(self, query: Query) -> float:
        """Unfiltered join size scaled by sampled selectivities."""
        base = float(self._unfiltered_join_size(query))
        selectivity = 1.0
        for alias in query.aliases:
            selectivity *= self.table_selectivity(query, alias)
        return max(base * selectivity, 1.0)

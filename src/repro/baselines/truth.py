"""The truth oracle.

The demo obtains true cardinalities "by executing the queries with
HyPer"; this estimator does the same against the in-memory engine.  It
anchors every benchmark's q-error computation and doubles as a trivially
correct :class:`~repro.core.estimator.CardinalityEstimator`.
"""

from __future__ import annotations

from ..db.database import Database
from ..db.executor import execute_count
from ..workload.query import Query


class TruthEstimator:
    """Exact COUNT(*) via the execution engine (no estimation error)."""

    name = "True cardinality"

    def __init__(self, db: Database):
        self.db = db
        self._cache: dict[Query, int] = {}

    def estimate(self, query: Query) -> float:
        """Exact COUNT(*) of ``query`` (cached per query object)."""
        if query not in self._cache:
            self._cache[query] = execute_count(self.db, query)
        return float(self._cache[query])

"""PostgreSQL-style cardinality estimator.

Reimplements the estimation pipeline of PostgreSQL's planner (the
version the paper benchmarks is 10.3) over this engine's ANALYZE
statistics:

* equality selectivity (``eqsel``): MCV frequency if the literal is a
  most-common value, otherwise the remaining mass spread uniformly over
  the remaining distinct values;
* inequality selectivity (``scalarineqsel``): the fraction of MCVs
  satisfying the comparison plus the histogram-interpolated fraction of
  the remaining rows;
* conjunctions multiply (attribute-value independence) — the assumption
  that correlated data like IMDb breaks, producing the large tail errors
  of the paper's Table 1;
* equi-join selectivity (``eqjoinsel`` without MCV matching):
  ``1 / max(nd_left, nd_right)``, applied per join edge on the cross
  product of filtered table sizes;
* PostgreSQL's default selectivities when a literal is out of range or
  statistics are unusable (``DEFAULT_EQ_SEL = 0.005``,
  ``DEFAULT_INEQ_SEL = 1/3``);
* final clamp to at least one row.
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.statistics import ColumnStatistics, TableStatistics, analyze_database
from ..db.types import DType
from ..workload.query import Predicate, Query

#: PostgreSQL's hardwired defaults (src/include/utils/selfuncs.h).
DEFAULT_EQ_SEL = 0.005
DEFAULT_INEQ_SEL = 1.0 / 3.0


def _encode_literal(db: Database, table: str, column: str, literal) -> float | None:
    """Literal in the column's encoded (numeric) domain, None if absent."""
    col = db.table(table).column(column)
    encoded = col.encode_literal(literal)
    if encoded is None:
        return None
    return float(encoded)


def eq_selectivity(stats: ColumnStatistics, value: float) -> float:
    """``eqsel``: P(column = value)."""
    if stats.n_distinct == 0:
        return 0.0
    mcv_hit = np.flatnonzero(stats.mcv_values == value)
    if mcv_hit.size:
        return float(stats.mcv_freqs[mcv_hit[0]])
    if value < stats.min_value or value > stats.max_value:
        return 0.0
    if stats.remaining_distinct <= 0:
        return DEFAULT_EQ_SEL
    return stats.remaining_frac / stats.remaining_distinct


def _histogram_fraction_below(stats: ColumnStatistics, value: float) -> float:
    """Fraction of histogram-covered rows strictly below ``value``."""
    bounds = stats.histogram_bounds
    if bounds.size < 2:
        return DEFAULT_INEQ_SEL
    if value <= bounds[0]:
        return 0.0
    if value >= bounds[-1]:
        return 1.0
    # Locate the bin and interpolate linearly within it, as PostgreSQL's
    # ineq_histogram_selectivity does.
    idx = int(np.searchsorted(bounds, value, side="right")) - 1
    idx = min(idx, bounds.size - 2)
    lo, hi = bounds[idx], bounds[idx + 1]
    within = 0.5 if hi <= lo else (value - lo) / (hi - lo)
    n_bins = bounds.size - 1
    return (idx + within) / n_bins


def range_selectivity(stats: ColumnStatistics, op: str, value: float) -> float:
    """``scalarineqsel``: P(column <op> value) for <, >, <=, >=."""
    if stats.n_distinct == 0:
        return 0.0
    # MCV part: exact count of most-common values satisfying the op.
    if op in ("<", "<="):
        mcv_mask = (
            stats.mcv_values < value if op == "<" else stats.mcv_values <= value
        )
    else:
        mcv_mask = (
            stats.mcv_values > value if op == ">" else stats.mcv_values >= value
        )
    mcv_part = float(stats.mcv_freqs[mcv_mask].sum()) if stats.mcv_freqs.size else 0.0

    below = _histogram_fraction_below(stats, value)
    if op in ("<", "<="):
        hist_fraction = below
    else:
        hist_fraction = 1.0 - below
    return float(np.clip(mcv_part + stats.remaining_frac * hist_fraction, 0.0, 1.0))


def predicate_selectivity(
    db: Database, stats: TableStatistics, table: str, pred: Predicate
) -> float:
    """Selectivity of one predicate from the table's statistics."""
    col_stats = stats.column(pred.column)
    if pred.op == "in":
        # ``scalararraysel`` for = ANY: sum the members' equality
        # selectivities (members are distinct, so no overlap correction).
        total = 0.0
        for member in pred.literal:
            value = _encode_literal(db, table, pred.column, member)
            if value is not None:
                total += eq_selectivity(col_stats, value)
        return float(np.clip(total, 0.0, 1.0))
    value = _encode_literal(db, table, pred.column, pred.literal)
    if value is None:
        # A string literal absent from the dictionary: '=' selects
        # nothing, '<>' selects every non-null row.
        return 0.0 if pred.op == "=" else 1.0 - col_stats.null_frac
    if pred.op == "=":
        return eq_selectivity(col_stats, value)
    if pred.op == "<>":
        return max(1.0 - col_stats.null_frac - eq_selectivity(col_stats, value), 0.0)
    return range_selectivity(col_stats, pred.op, value)


class PostgresEstimator:
    """The System-R/PostgreSQL estimation pipeline over ANALYZE stats."""

    name = "PostgreSQL"

    def __init__(self, db: Database, mcv_size: int = 25, histogram_bins: int = 50):
        self.db = db
        self.stats = analyze_database(db, mcv_size=mcv_size, histogram_bins=histogram_bins)

    # ------------------------------------------------------------------
    def table_selectivity(self, query: Query, alias: str) -> float:
        """Product of the alias' predicate selectivities (independence)."""
        table = query.alias_table(alias)
        selectivity = 1.0
        for pred in query.predicates_for(alias):
            selectivity *= predicate_selectivity(
                self.db, self.stats[table], table, pred
            )
        return float(np.clip(selectivity, 0.0, 1.0))

    def join_selectivity(self, query: Query) -> float:
        """Product of per-edge ``eqjoinsel`` factors."""
        selectivity = 1.0
        for join in query.joins:
            nd = []
            for alias in (join.left_alias, join.right_alias):
                table = query.alias_table(alias)
                col_stats = self.stats[table].column(join.side_for(alias))
                nd.append(max(col_stats.n_distinct, 1))
            selectivity *= 1.0 / max(nd)
        return selectivity

    def estimate(self, query: Query) -> float:
        """Filtered cross product x eqjoinsel factors, clamped to >= 1."""
        rows = 1.0
        for ref in query.tables:
            table_rows = self.stats[ref.table].n_rows
            rows *= max(table_rows, 1) * self.table_selectivity(query, ref.alias)
        rows *= self.join_selectivity(query)
        return max(rows, 1.0)

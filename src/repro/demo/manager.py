"""The demo backend: create, train, monitor, and query Deep Sketches.

Mirrors the workflow behind the paper's web interface (Section 3):

* ``SHOW SKETCHES`` — :meth:`SketchManager.list_sketches`;
* creating a sketch with table subset / samples / queries / epochs —
  :meth:`SketchManager.create_sketch` (synchronous) and
  :meth:`SketchManager.start_build` / :meth:`SketchManager.step_build`
  (incremental, so existing sketches stay queryable while a new model
  trains — the demo's third latency mitigation);
* pre-built high-quality models — :meth:`SketchManager.register_sketch`;
* querying a sketch — :meth:`SketchManager.query`.

The incremental build runs the builder pipeline up front except for
training, then advances one epoch per :meth:`step_build` call; queries
against *other* sketches can be interleaved freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import SketchError
from ..rng import make_rng, spawn
from ..db.database import Database
from ..sampling.bitmaps import query_bitmaps
from ..sampling.sampler import materialize_samples
from ..workload.generator import TrainingQueryGenerator, WorkloadSpec
from ..workload.query import Query
from ..db.executor import execute_count
from ..core.batches import TrainingSet
from ..core.builder import BuildReport, SketchBuilder, SketchConfig
from ..core.featurization import Featurizer
from ..core.mscn import MSCN
from ..core.sketch import DeepSketch
from ..core.training import Trainer, TrainingConfig
from .monitor import Monitor


@dataclass
class PendingBuild:
    """An in-progress incremental build (train stage epoch by epoch)."""

    name: str
    trainer: Trainer
    dataset: TrainingSet
    samples: object
    featurizer: Featurizer
    config: SketchConfig
    epochs_done: int = 0
    epoch_stats: list = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.epochs_done >= self.config.epochs


class SketchManager:
    """Holds named sketches over one database and builds new ones."""

    def __init__(self, db: Database | None = None):
        # ``db`` may be None for a serving-only manager (pre-built
        # sketches registered via register_sketch); builds require it.
        self.db = db
        self._sketches: dict[str, DeepSketch] = {}
        self._monitors: dict[str, Monitor] = {}
        self._pending: dict[str, PendingBuild] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def list_sketches(self) -> list[str]:
        return sorted(self._sketches)

    def register_sketch(self, sketch: DeepSketch) -> None:
        """Add a pre-built sketch (the demo's instantly queryable models)."""
        if sketch.name in self._sketches:
            raise SketchError(f"sketch {sketch.name!r} already exists")
        self._sketches[sketch.name] = sketch

    def get_sketch(self, name: str) -> DeepSketch:
        try:
            return self._sketches[name]
        except KeyError:
            known = ", ".join(self.list_sketches()) or "(none)"
            raise SketchError(f"no sketch named {name!r}; have: {known}") from None

    def replace_sketch(self, name: str, sketch: DeepSketch) -> DeepSketch:
        """Swap the sketch registered under ``name``; return the old one.

        The replacement must cover the same name (routing tables may
        differ only if the new sketch was trained on the same subset —
        enforced by the name check plus the table check, because a
        different table set would silently change routing under live
        traffic).  The *old* sketch is returned **without** clearing its
        cache: in-flight serving rounds may still hold a reference to
        it, and bumping its snapshot token while they run would corrupt
        per-response version accounting.  The caller retires it (via
        ``old.clear_cache()``) once no round can still be using it —
        see :meth:`repro.serve.engine.EstimationEngine.swap_sketch`.
        """
        if name not in self._sketches:
            known = ", ".join(self.list_sketches()) or "(none)"
            raise SketchError(f"no sketch named {name!r} to replace; have: {known}")
        if sketch.name != name:
            raise SketchError(
                f"replacement sketch is named {sketch.name!r}, not {name!r}"
            )
        old = self._sketches[name]
        if set(sketch.tables) != set(old.tables):
            raise SketchError(
                f"replacement for {name!r} covers tables {sorted(sketch.tables)} "
                f"but the live sketch covers {sorted(old.tables)}; a swap must "
                "not change routing"
            )
        self._sketches[name] = sketch
        return old

    def drop_sketch(self, name: str) -> None:
        # Invalidate cached estimates: anything still holding a reference
        # to the dropped sketch must not keep serving stale results, and
        # a rebuild under the same name starts from a cold cache.
        self.get_sketch(name).clear_cache()
        del self._sketches[name]
        self._monitors.pop(name, None)

    def monitor_for(self, name: str) -> Monitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise SketchError(f"no build was monitored for {name!r}") from None

    # ------------------------------------------------------------------
    # synchronous build (steps 1-4 in one call)
    # ------------------------------------------------------------------
    def create_sketch(
        self,
        name: str,
        spec: WorkloadSpec,
        config: SketchConfig | None = None,
        seed: int | None = None,
    ) -> tuple[DeepSketch, BuildReport]:
        """Run the full Figure 1a pipeline and register the result."""
        if name in self._sketches or name in self._pending:
            raise SketchError(f"sketch {name!r} already exists")
        monitor = Monitor()
        builder = SketchBuilder(self.db, spec, config=config, progress=monitor.on_progress)
        sketch, report = builder.build(name, seed=seed)
        self._sketches[name] = sketch
        self._monitors[name] = monitor
        return sketch, report

    # ------------------------------------------------------------------
    # incremental build (train while querying other sketches)
    # ------------------------------------------------------------------
    def start_build(
        self,
        name: str,
        spec: WorkloadSpec,
        config: SketchConfig | None = None,
        seed: int | None = None,
    ) -> PendingBuild:
        """Stages 1-3 plus featurization; training is left to step_build."""
        if name in self._sketches or name in self._pending:
            raise SketchError(f"sketch {name!r} already exists")
        config = config or SketchConfig()
        rng = make_rng(config.seed if seed is None else seed)
        sample_rng, query_rng, model_rng, _ = spawn(rng, 4)

        samples = materialize_samples(self.db, spec.tables, config.sample_size, seed=sample_rng)
        generator = TrainingQueryGenerator(self.db, spec, seed=query_rng)
        queries = generator.draw_many(config.n_training_queries)
        kept: list[Query] = []
        labels: list[float] = []
        for query in queries:
            cardinality = execute_count(self.db, query)
            if cardinality > 0:
                kept.append(query)
                labels.append(float(cardinality))
        if len(kept) < 10:
            raise SketchError(
                f"only {len(kept)} non-empty training queries; need at least 10"
            )
        featurizer = Featurizer.build(self.db, spec, config.sample_size)
        featurizer.fit_labels(np.asarray(labels))
        features = [
            featurizer.featurize_query(q, query_bitmaps(samples, q), db=self.db)
            for q in kept
        ]
        normalized = featurizer.normalize_label(np.asarray(labels))
        model = MSCN(
            table_dim=featurizer.table_dim,
            join_dim=featurizer.join_dim,
            predicate_dim=featurizer.predicate_dim,
            hidden_units=config.hidden_units,
            seed=model_rng,
        )
        trainer = Trainer(
            model,
            featurizer,
            TrainingConfig(
                epochs=1,  # step_build advances one epoch at a time
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                loss=config.loss,
            ),
        )
        pending = PendingBuild(
            name=name,
            trainer=trainer,
            dataset=TrainingSet(features, normalized),
            samples=samples,
            featurizer=featurizer,
            config=config,
        )
        self._pending[name] = pending
        return pending

    def step_build(self, name: str) -> PendingBuild:
        """Advance a pending build by one epoch; finalize when done."""
        try:
            pending = self._pending[name]
        except KeyError:
            raise SketchError(f"no pending build named {name!r}") from None
        result = pending.trainer.fit(pending.dataset, seed=pending.epochs_done)
        pending.epoch_stats.extend(result.epochs)
        pending.epochs_done += 1
        if pending.finished:
            self._finalize_build(pending)
        return pending

    def _finalize_build(self, pending: PendingBuild) -> None:
        sketch = DeepSketch(
            name=pending.name,
            featurizer=pending.featurizer,
            model=pending.trainer.model,
            samples=pending.samples,
            metadata={
                "dataset": self.db.name,
                "epochs": pending.epochs_done,
                "incremental": True,
            },
        )
        del self._pending[pending.name]
        self._sketches[pending.name] = sketch

    def pending_builds(self) -> list[str]:
        return sorted(self._pending)

    # ------------------------------------------------------------------
    # estimation snapshots (process-pool serving workers)
    # ------------------------------------------------------------------
    def snapshot_payloads(self, names: Iterable[str] | None = None) -> dict[str, bytes]:
        """Pickled estimation-only snapshots of registered sketches.

        ``names`` defaults to every registered sketch.  Each payload is
        a :class:`~repro.core.sketch.SketchSnapshot` pickled for
        shipping into serving worker processes (see
        :mod:`repro.serve.executor`); restoring one never retrains or
        rebuilds anything.  Unknown names raise
        :class:`~repro.errors.SketchError` like :meth:`get_sketch`.
        """
        import pickle

        selected = self.list_sketches() if names is None else list(names)
        return {
            name: pickle.dumps(
                self.get_sketch(name).snapshot(), protocol=pickle.HIGHEST_PROTOCOL
            )
            for name in selected
        }

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, name: str, query: Query | str) -> float:
        """Estimate a query against the named sketch."""
        return self.get_sketch(name).estimate(query)

    def query_many(self, name: str, queries: list[Query | str]) -> np.ndarray:
        """Batched estimation against the named sketch (one forward pass
        for all uncached queries; see :meth:`DeepSketch.estimate_many`)."""
        return self.get_sketch(name).estimate_many(queries)

    def route_name(self, query: Query | str) -> str:
        """Name of the cheapest registered sketch covering the query.

        "Cheapest" means the fewest tables: a narrower sketch was trained
        on a denser sampling of the query's sub-space.
        """
        if isinstance(query, str):
            from ..db.sql import parse_sql

            query = parse_sql(query)
        needed = {t.table for t in query.tables}
        candidates = [
            (len(sketch.tables), name)
            for name, sketch in self._sketches.items()
            if needed <= set(sketch.tables)
        ]
        if not candidates:
            raise SketchError(
                f"no registered sketch covers tables {sorted(needed)}"
            )
        _, name = min(candidates)
        return name

    def route(self, query: Query | str) -> tuple[str, float]:
        """Estimate with the cheapest covering sketch: ``(name, estimate)``."""
        name = self.route_name(query)
        return name, self.query(name, query)

    def route_many(self, queries: list[Query | str]) -> list[tuple[str, float]]:
        """Route and estimate a whole batch.

        Queries are grouped by their routed sketch and each group is
        answered with one batched :meth:`DeepSketch.estimate_many` call;
        results come back in input order as ``(sketch name, estimate)``.
        """
        parsed: list[Query] = []
        for query in queries:
            if isinstance(query, str):
                from ..db.sql import parse_sql

                query = parse_sql(query)
            parsed.append(query)
        names = [self.route_name(q) for q in parsed]
        groups: dict[str, list[int]] = {}
        for i, name in enumerate(names):
            groups.setdefault(name, []).append(i)
        estimates = np.empty(len(parsed), dtype=np.float64)
        for name, indices in groups.items():
            values = self.get_sketch(name).estimate_many([parsed[i] for i in indices])
            estimates[indices] = values
        return [(name, float(estimates[i])) for i, name in enumerate(names)]

    # ------------------------------------------------------------------
    # advising (the conclusions' open question)
    # ------------------------------------------------------------------
    def advise(self, workload: list[Query], max_sketches: int | None = None):
        """Recommend sketch table-subsets for a past workload."""
        from .advisor import recommend_sketches

        return recommend_sketches(workload, max_sketches=max_sketches)

"""Training/build monitoring (the demo's progress view + TensorBoard sub).

The demo lets users "monitor the training progress, including the
execution of training queries and the training of the deep learning
model", and uses TensorBoard for loss curves.  :class:`Monitor` records
the same information as a structured event log: stage progress events
from the builder and per-epoch statistics from the trainer, exportable
as plain arrays/CSV for plotting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.builder import ProgressEvent
from ..errors import ReproError


@dataclass(frozen=True)
class MonitorEvent:
    """One recorded event with a wall-clock timestamp."""

    timestamp: float
    stage: str
    current: int
    total: int
    message: str


@dataclass
class Monitor:
    """Collects build progress; pass :meth:`on_progress` to the builder."""

    events: list[MonitorEvent] = field(default_factory=list)

    def on_progress(self, event: ProgressEvent) -> None:
        self.events.append(
            MonitorEvent(
                timestamp=time.time(),
                stage=event.stage,
                current=event.current,
                total=event.total,
                message=event.message,
            )
        )

    # ------------------------------------------------------------------
    # queries over the log
    # ------------------------------------------------------------------
    def stages_seen(self) -> list[str]:
        """Stage names in first-appearance order."""
        seen: list[str] = []
        for event in self.events:
            if event.stage not in seen:
                seen.append(event.stage)
        return seen

    def latest(self) -> MonitorEvent:
        if not self.events:
            raise ReproError("monitor has recorded no events")
        return self.events[-1]

    def stage_fraction(self, stage: str) -> float:
        """Completion fraction of a stage (0.0 if never seen)."""
        fraction = 0.0
        for event in self.events:
            if event.stage == stage and event.total:
                fraction = max(fraction, event.current / event.total)
        return fraction

    def epoch_messages(self) -> list[str]:
        """The per-epoch messages emitted during the train stage."""
        return [e.message for e in self.events if e.stage == "train" and e.message]

    def loss_curve_from(self, training_result) -> np.ndarray:
        """Convenience passthrough to a TrainingResult's loss curve."""
        return training_result.loss_curve()

    def to_rows(self) -> list[tuple[float, str, int, int, str]]:
        """Export the event log as plain tuples (CSV-friendly)."""
        return [
            (e.timestamp, e.stage, e.current, e.total, e.message)
            for e in self.events
        ]

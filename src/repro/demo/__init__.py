"""Programmatic demo backend (the web UI's substance, sans browser)."""

from .advisor import SketchRecommendation, coverage_of, recommend_sketches
from .manager import PendingBuild, SketchManager
from .monitor import Monitor, MonitorEvent
from .template_service import TemplateResult, TemplateSeries, run_template

__all__ = [
    "SketchManager",
    "PendingBuild",
    "Monitor",
    "MonitorEvent",
    "run_template",
    "TemplateResult",
    "TemplateSeries",
    "SketchRecommendation",
    "recommend_sketches",
    "coverage_of",
]

"""Template execution: the data behind the demo's Figure 2 charts.

When a user runs a query template, the demo instantiates it from the
column sample, issues every instance "against HyPer to compute its true
cardinality as well as against the Deep Sketch and the cardinality
estimators of HyPer and PostgreSQL", and plots the overlaid series.
:func:`run_template` produces exactly those series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.estimator import CardinalityEstimator
from ..core.sketch import DeepSketch
from ..errors import SketchError
from ..metrics import qerrors, summarize_qerrors, QErrorSummary
from ..workload.templates import QueryTemplate, TemplateInstance


@dataclass
class TemplateSeries:
    """One system's Y-series over the template instances."""

    system: str
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class TemplateResult:
    """The full Figure 2 payload: labels (X axis) and one series per system."""

    labels: list
    instances: list[TemplateInstance]
    series: dict[str, TemplateSeries] = field(default_factory=dict)

    def truth(self) -> np.ndarray:
        try:
            return self.series["True cardinality"].values
        except KeyError:
            raise SketchError("template result has no truth series") from None

    def qerror_summary(self, system: str) -> QErrorSummary:
        """Q-error summary of one system's series against the truth."""
        if system not in self.series:
            known = ", ".join(sorted(self.series))
            raise SketchError(f"no series for {system!r}; have: {known}")
        return summarize_qerrors(qerrors(self.series[system].values, self.truth()))

    def as_table(self) -> str:
        """Plain-text rendering of the chart data (label + one column per
        system), the textual equivalent of the demo's bar/line plot."""
        systems = sorted(self.series)
        header = "label".ljust(14) + " ".join(s.rjust(16) for s in systems)
        lines = [header]
        for i, label in enumerate(self.labels):
            cells = " ".join(
                f"{self.series[s].values[i]:16.1f}" for s in systems
            )
            lines.append(f"{str(label):<14}{cells}")
        return "\n".join(lines)


def run_template(
    sketch: DeepSketch,
    template: QueryTemplate,
    estimators: list[CardinalityEstimator],
    mode: str = "distinct",
    width: float | None = None,
    n_buckets: int | None = None,
    limit: int | None = None,
) -> TemplateResult:
    """Instantiate ``template`` from the sketch's samples and evaluate
    every instance with the sketch and each estimator.

    ``estimators`` typically contains the truth oracle plus the HyPer-
    and PostgreSQL-style baselines, matching the demo's overlays.
    """
    instances = template.instantiate(
        sketch.samples, mode=mode, width=width, n_buckets=n_buckets, limit=limit
    )
    result = TemplateResult(
        labels=[inst.label for inst in instances], instances=instances
    )
    queries = [inst.query for inst in instances]
    if queries:
        result.series[sketch.name] = TemplateSeries(
            system=sketch.name, values=sketch.estimate_many(queries)
        )
    else:
        result.series[sketch.name] = TemplateSeries(sketch.name, np.empty(0))
    for estimator in estimators:
        values = np.array([estimator.estimate(q) for q in queries])
        result.series[estimator.name] = TemplateSeries(estimator.name, values)
    return result

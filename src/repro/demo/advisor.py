"""Sketch advisor: which schema parts deserve a Deep Sketch?

The paper's conclusions name this as the open question the demo
"currently outsource[s] to our users": *for which schema parts should we
build such sketches?*  This module implements the natural workload-driven
answer as a concrete, testable policy:

1. collect the table subsets used by a (past) workload,
2. merge each query's subset upward into the smallest *candidate* that
   covers it (candidates are the distinct table sets observed, closed
   under the queries they would serve),
3. greedily pick candidates maximizing covered query volume per unit of
   training cost, until the workload is covered or a sketch budget is
   exhausted.

Training cost is modelled as proportional to the number of tables (more
tables -> larger featurization and more training queries needed), which
matches the demo's guidance that "for a small number of tables, 10,000
queries will already be sufficient".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import ReproError
from ..workload.query import Query


@dataclass(frozen=True)
class SketchRecommendation:
    """One recommended sketch: its table subset and what it serves."""

    tables: tuple[str, ...]
    queries_covered: int
    workload_fraction: float
    #: Relative training-cost estimate (1.0 = a single-table sketch).
    cost: float

    def __str__(self) -> str:
        names = ", ".join(self.tables)
        return (
            f"sketch({names}) covers {self.queries_covered} queries "
            f"({self.workload_fraction:.0%}) at cost {self.cost:.1f}"
        )


def _table_set(query: Query) -> frozenset[str]:
    return frozenset(t.table for t in query.tables)


def _cost(tables: frozenset[str]) -> float:
    """Training-cost model: super-linear in the table count (vocabulary,
    join signatures, and the query space all grow with it)."""
    return float(len(tables)) ** 1.5


def recommend_sketches(
    workload: list[Query],
    max_sketches: int | None = None,
    min_coverage: float = 0.95,
) -> list[SketchRecommendation]:
    """Recommend table subsets for sketches serving ``workload``.

    Returns recommendations in pick order (most valuable first).  Stops
    when ``min_coverage`` of the workload is covered or ``max_sketches``
    picks were made.  A query is served by a sketch whose table set is a
    superset of the query's tables.
    """
    if not workload:
        raise ReproError("cannot recommend sketches for an empty workload")
    if not 0.0 < min_coverage <= 1.0:
        raise ReproError(f"min_coverage must be in (0, 1], got {min_coverage}")

    subset_counts = Counter(_table_set(q) for q in workload)
    total = len(workload)

    # Candidates: every observed subset (a sketch exactly fitting some
    # query class) — observed supersets subsume their subsets at a cost.
    candidates = set(subset_counts)

    recommendations: list[SketchRecommendation] = []
    uncovered: Counter = Counter(subset_counts)
    covered_queries = 0

    while uncovered:
        if max_sketches is not None and len(recommendations) >= max_sketches:
            break
        if covered_queries / total >= min_coverage:
            break

        def gain(candidate: frozenset[str]) -> float:
            served = sum(
                count for subset, count in uncovered.items() if subset <= candidate
            )
            return served / _cost(candidate)

        best = max(candidates, key=gain)
        served_subsets = [s for s in uncovered if s <= best]
        served_count = sum(uncovered[s] for s in served_subsets)
        if served_count == 0:
            break  # no remaining candidate helps (shouldn't happen)
        for subset in served_subsets:
            del uncovered[subset]
        covered_queries += served_count
        recommendations.append(
            SketchRecommendation(
                tables=tuple(sorted(best)),
                queries_covered=served_count,
                workload_fraction=served_count / total,
                cost=_cost(best),
            )
        )
    return recommendations


def coverage_of(
    recommendations: list[SketchRecommendation], workload: list[Query]
) -> float:
    """Fraction of ``workload`` served by the recommended sketches."""
    if not workload:
        raise ReproError("empty workload")
    sets = [frozenset(r.tables) for r in recommendations]
    served = sum(
        1 for q in workload if any(_table_set(q) <= s for s in sets)
    )
    return served / len(workload)

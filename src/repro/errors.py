"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table, column, or foreign key reference is invalid."""


class ParseError(ReproError):
    """A SQL string could not be parsed by the supported subset grammar."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class QueryError(ReproError):
    """A structured query is semantically invalid (unknown table, bad join,
    type mismatch in a predicate, disconnected join graph, ...)."""


class FeaturizationError(ReproError):
    """A query cannot be featurized by a given featurizer (e.g. it references
    a table or column outside the featurizer's vocabulary)."""


class TrainingError(ReproError):
    """Model training was misconfigured or failed to make progress."""


class SketchError(ReproError):
    """A Deep Sketch operation failed (untrained sketch queried, bad
    serialized payload, query outside the sketch's table subset, ...)."""


class RefreshFailure(SketchError):
    """A sketch refresh could not produce a replacement sketch.

    ``code`` names the structured failure class (``"spec_mismatch"``,
    ``"insufficient_queries"``, ``"internal"``) so a lifecycle manager
    can record the failure and decide whether a retry with backoff can
    help (insufficient queries may resolve as data arrives; a spec
    mismatch never will)."""

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = str(code)


class SerializationError(ReproError):
    """A model or sketch payload could not be serialized or deserialized."""


class RegistryError(ReproError):
    """A model registry operation failed (unknown sketch or version,
    checksum mismatch on load, corrupt manifest, nothing to roll back
    to, ...).  See :mod:`repro.serve.registry`."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a query."""


class ProtocolError(ReproError):
    """A serving wire payload is malformed or from an unsupported
    protocol version (see :mod:`repro.serve.protocol`)."""


class RemoteServerError(ReproError):
    """A remote estimation service could not be reached, or answered
    with a transport-level failure (connection refused, non-2xx status
    without a structured body, truncated payload, ...).

    Subclasses distinguish the transport fault classes a failover layer
    treats differently: :class:`RemoteTimeoutError` (request may or may
    not have executed — retry only idempotent work),
    :class:`RemoteConnectionError` (request never reached the service —
    always safe to retry elsewhere), and :class:`RemoteHTTPError`
    (the service answered, with a non-2xx status)."""


class RemoteTimeoutError(RemoteServerError):
    """A remote round trip exceeded the client's timeout.  The request
    may still be executing server-side; estimates are idempotent, so
    retrying is safe, but the timeout says nothing about liveness."""


class RemoteConnectionError(RemoteServerError):
    """The remote service could not be reached at all (connection
    refused or reset, DNS failure, socket closed mid-handshake).  The
    request never executed — always safe to retry on a replica."""


class RemoteHTTPError(RemoteServerError):
    """The remote service answered with a non-2xx HTTP status outside
    the structured-protocol 400 class.  ``status`` carries the code so
    a failover layer can retry 5xx (server-side fault) but not 4xx
    (the request itself is wrong and will fail everywhere)."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = int(status)

"""Thread-local scratch-array pools for the zero-allocation hot paths.

One :class:`ArrayPool` instance backs both the compiled inference
buffers (:mod:`repro.nn.inference`) and the collation scratch
(:class:`repro.core.batches.CollateScratch`): arrays are keyed by
``(tag, shape, dtype)`` and reused across calls, so hot loops that
repeat batch shapes stop allocating.

Pools are per-thread (``threading.local``): concurrent callers share
the pool *object* but never its arrays, which is what makes handing a
pooled buffer out by reference safe without locks.
"""

from __future__ import annotations

import threading

import numpy as np

#: A per-thread pool accumulating more distinct (tag, shape, dtype)
#: keys than this is cleared outright — a backstop against unbounded
#: shape churn, far above anything steady-state serving produces.
DEFAULT_MAX_SHAPES = 256


class ArrayPool:
    """Per-thread scratch arrays keyed by ``(tag, shape, dtype)``.

    ``zeroed=True`` hands out zero-filled arrays (collation targets
    that are written sparsely); ``zeroed=False`` hands out
    uninitialized arrays whose every element the caller overwrites
    (matmul/reduction outputs).  ``tag`` separates buffers that may
    coincide in shape but must not alias within one computation.
    """

    def __init__(self, zeroed: bool, max_shapes: int = DEFAULT_MAX_SHAPES):
        self._zeroed = zeroed
        self._max_shapes = max_shapes
        self._local = threading.local()

    def buffers(self) -> dict:
        """The calling thread's live pool (key -> array)."""
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        return pool

    def array(self, shape: tuple[int, ...], dtype, tag: str = "") -> np.ndarray:
        """A pooled array of the given shape; reused across calls."""
        pool = self.buffers()
        key = (tag, shape, np.dtype(dtype))
        buf = pool.get(key)
        if buf is None:
            if len(pool) >= self._max_shapes:
                pool.clear()
            alloc = np.zeros if self._zeroed else np.empty
            buf = pool[key] = alloc(shape, dtype=dtype)
        elif self._zeroed:
            buf.fill(0.0)
        return buf


__all__ = ["ArrayPool", "DEFAULT_MAX_SHAPES"]

"""Sketch maintenance: drift detection and fine-tuning.

The paper closes with "more research is needed to automate the training
and utilization of Deep Sketches in query optimizers".  Two building
blocks of that automation are implemented here:

* **drift detection** — a sketch's materialized samples are a snapshot
  of the data; when the database changes, stored-sample statistics drift
  away from fresh-sample statistics.  :func:`detect_drift` quantifies
  the drift per table (two-sample Kolmogorov–Smirnov over the numeric
  columns, total-variation distance over each string column's category
  frequencies) so callers can decide when a sketch is stale.
* **refresh + fine-tune** — :func:`refresh_sketch` re-materializes the
  samples against the current database and continues training the
  *existing* network on freshly labelled queries (warm start), which is
  much cheaper than building from scratch when the change is moderate.
  :func:`try_refresh_sketch` wraps it into a structured
  :class:`RefreshResult` so an automated watcher (see
  :mod:`repro.serve.lifecycle`) can record failures and retry with
  backoff instead of crashing.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import RefreshFailure
from ..rng import SeedLike, make_rng, spawn
from ..db.database import Database
from ..db.executor import execute_count
from ..db.types import DType
from ..sampling.bitmaps import query_bitmaps
from ..sampling.sampler import materialize_samples
from ..workload.generator import TrainingQueryGenerator, WorkloadSpec
from .batches import TrainingSet
from .sketch import DeepSketch
from .training import Trainer, TrainingConfig


#: Number of head categories compared per string column; everything
#: rarer is pooled into one tail bucket.  Bucketing bounds the
#: sampling-noise floor of the total-variation distance: with at most
#: 17 buckets, two same-distribution samples of size ``n`` read a TV
#: well under the default threshold, while a genuine shift in the head
#: categories (new dominant vendor, vanished era) still registers
#: strongly.
_CATEGORY_HEAD = 16


def _categorical_tv(stored_col, fresh_col) -> float:
    """Total-variation distance between two string columns' categories.

    Dictionary *codes* are not comparable across databases (each column
    sorts its own dictionary), so both sides are decoded to strings and
    compared as frequency vectors over the top-``_CATEGORY_HEAD``
    categories of the pooled data plus one tail bucket.  Returns a value
    in [0, 1]: 0 for identical category mixes, 1 for disjoint ones.
    """
    a_codes = stored_col.non_null_values()
    b_codes = fresh_col.non_null_values()
    if a_codes.size == 0 or b_codes.size == 0:
        return 0.0
    a_counts: dict[str, int] = {}
    for code, count in zip(*np.unique(a_codes, return_counts=True)):
        a_counts[stored_col.dictionary[int(code)]] = int(count)
    b_counts: dict[str, int] = {}
    for code, count in zip(*np.unique(b_codes, return_counts=True)):
        b_counts[fresh_col.dictionary[int(code)]] = int(count)
    pooled = {
        cat: a_counts.get(cat, 0) + b_counts.get(cat, 0)
        for cat in set(a_counts) | set(b_counts)
    }
    head = sorted(pooled, key=lambda cat: (-pooled[cat], cat))[:_CATEGORY_HEAD]
    a_total = float(a_codes.size)
    b_total = float(b_codes.size)
    tv = 0.0
    a_tail, b_tail = a_total, b_total
    for cat in head:
        a_freq = a_counts.get(cat, 0)
        b_freq = b_counts.get(cat, 0)
        a_tail -= a_freq
        b_tail -= b_freq
        tv += abs(a_freq / a_total - b_freq / b_total)
    tv += abs(a_tail / a_total - b_tail / b_total)
    return 0.5 * tv


@dataclass(frozen=True)
class DriftReport:
    """Per-table drift between stored and fresh samples."""

    #: table -> maximum drift statistic over its columns (0..1): the KS
    #: statistic for numeric columns, the total-variation distance over
    #: category frequencies for string columns.
    table_drift: dict[str, float]
    #: Decision threshold used by :meth:`is_stale`.
    threshold: float = 0.15

    def max_drift(self) -> float:
        return max(self.table_drift.values(), default=0.0)

    def is_stale(self) -> bool:
        """True when any table drifted beyond the threshold."""
        return self.max_drift() > self.threshold

    def __str__(self) -> str:
        rows = ", ".join(f"{t}={d:.3f}" for t, d in sorted(self.table_drift.items()))
        return f"DriftReport(max={self.max_drift():.3f}, {rows})"


def detect_drift(
    sketch: DeepSketch,
    db: Database,
    seed: SeedLike = None,
    threshold: float | None = None,
) -> DriftReport:
    """Compare the sketch's stored samples against fresh ones from ``db``.

    For every sketch table, a fresh sample of the same size is drawn and
    each column's drift statistic is computed — the two-sample KS
    statistic for numeric columns, the total-variation distance over
    decoded category frequencies for string columns (dictionary codes
    are not comparable across databases, category *strings* are); the
    table's drift is the maximum over its columns.  Identical data gives
    statistics near zero; distribution shifts (new eras, new categories)
    push them toward one.

    ``threshold`` defaults to the two-sample KS critical value at
    α ≈ 0.005 for the sketch's sample size (``1.73 * sqrt(2 / n)``), so
    two samples of the *same* distribution very rarely read as drift
    regardless of how large the samples are.  The TV statistic is held
    to the same threshold: head-plus-tail bucketing (see
    :func:`_categorical_tv`) keeps its same-distribution noise floor
    below the KS critical value — an approximation, not an exact test,
    but the decision semantics match.
    """
    if threshold is None:
        n = max(sketch.samples.sample_size, 1)
        threshold = 1.73 * float(np.sqrt(2.0 / n))
    rng = make_rng(seed)
    fresh = materialize_samples(
        db, sketch.tables, sketch.samples.sample_size, seed=rng
    )
    drift: dict[str, float] = {}
    for table_name in sketch.tables:
        stored_table = sketch.samples.for_table(table_name)
        fresh_table = fresh.for_table(table_name)
        worst = 0.0
        for column_name, stored_col in stored_table.columns.items():
            if stored_col.dtype is DType.STRING:
                worst = max(
                    worst,
                    _categorical_tv(stored_col, fresh_table.column(column_name)),
                )
                continue
            a = stored_col.non_null_values().astype(float)
            b = fresh_table.column(column_name).non_null_values().astype(float)
            if a.size == 0 or b.size == 0:
                continue
            worst = max(worst, float(stats.ks_2samp(a, b).statistic))
        drift[table_name] = worst
    return DriftReport(table_drift=drift, threshold=threshold)


def refresh_sketch(
    sketch: DeepSketch,
    db: Database,
    spec: WorkloadSpec,
    n_queries: int = 2000,
    epochs: int = 5,
    seed: SeedLike = None,
) -> DeepSketch:
    """Refresh samples and fine-tune the existing model on ``db``.

    The network keeps its weights (warm start); only ``epochs`` of
    additional training on ``n_queries`` freshly labelled queries are
    run, and the materialized samples are re-drawn so estimation-time
    bitmaps reflect the current data.  Label normalization constants are
    kept — they are part of the model's output contract — so the fine-
    tuned sketch remains comparable to the original.

    Returns a new :class:`DeepSketch`; the input sketch is not modified.
    Failures raise :class:`~repro.errors.RefreshFailure` (a
    :class:`~repro.errors.SketchError`) with a structured ``code``:
    ``"spec_mismatch"`` when ``spec`` does not cover the sketch's
    tables, ``"insufficient_queries"`` when fewer than 10 generated
    queries are non-empty on the current data.
    """
    if set(spec.tables) != set(sketch.tables):
        raise RefreshFailure(
            f"spec tables {sorted(spec.tables)} must match the sketch's "
            f"{sketch.tables}",
            code="spec_mismatch",
        )
    rng = make_rng(seed)
    sample_rng, query_rng, train_rng = spawn(rng, 3)

    samples = materialize_samples(
        db, sketch.tables, sketch.samples.sample_size, seed=sample_rng
    )
    generator = TrainingQueryGenerator(db, spec, seed=query_rng)
    queries = generator.draw_many(n_queries)
    kept, labels = [], []
    for query in queries:
        cardinality = execute_count(db, query)
        if cardinality > 0:
            kept.append(query)
            labels.append(float(cardinality))
    if len(kept) < 10:
        raise RefreshFailure(
            f"only {len(kept)} non-empty fine-tuning queries; need at least 10",
            code="insufficient_queries",
        )

    featurizer = sketch.featurizer  # vocabularies and label bounds reused
    features = [
        featurizer.featurize_query(q, query_bitmaps(samples, q), db=db)
        for q in kept
    ]
    normalized = featurizer.normalize_label(np.asarray(labels))

    model = copy.deepcopy(sketch.model)
    trainer = Trainer(model, featurizer, TrainingConfig(epochs=epochs))
    result = trainer.fit(TrainingSet(features, normalized), seed=train_rng)

    metadata = dict(sketch.metadata)
    metadata["refreshed"] = True
    metadata["fine_tune_epochs"] = epochs
    metadata["fine_tune_val_mean_qerror"] = result.final_val_mean_qerror
    return DeepSketch(
        name=sketch.name,
        featurizer=featurizer,
        model=model,
        samples=samples,
        metadata=metadata,
        inference_dtype=sketch.inference_dtype,
    )


@dataclass(frozen=True)
class RefreshResult:
    """Structured outcome of one refresh attempt (never raises).

    ``ok`` with a ``sketch`` on success; otherwise ``code`` carries the
    structured failure class (``"spec_mismatch"``,
    ``"insufficient_queries"``, or ``"internal"`` for anything
    unexpected) and ``error`` the human-readable message, so a watcher
    thread can record the failure and schedule a retry instead of dying.
    """

    ok: bool
    sketch: DeepSketch | None = None
    error: str | None = None
    code: str | None = None

    @property
    def retryable(self) -> bool:
        """Whether a later retry could plausibly succeed.

        A spec mismatch is a configuration bug — retrying it burns
        training time forever; insufficient queries and unexpected
        faults may resolve as data arrives or the environment recovers.
        """
        return not self.ok and self.code != "spec_mismatch"


def try_refresh_sketch(
    sketch: DeepSketch,
    db: Database,
    spec: WorkloadSpec,
    n_queries: int = 2000,
    epochs: int = 5,
    seed: SeedLike = None,
) -> RefreshResult:
    """:func:`refresh_sketch`, with every failure folded into the result.

    The lifecycle manager's building block: a crash anywhere in the
    refresh pipeline (generation, labelling, featurization, training)
    becomes a :class:`RefreshResult` with a structured code — the
    calling watcher thread never has to survive an exception.
    """
    try:
        refreshed = refresh_sketch(
            sketch, db, spec, n_queries=n_queries, epochs=epochs, seed=seed
        )
    except RefreshFailure as exc:
        return RefreshResult(ok=False, error=str(exc), code=exc.code)
    except Exception as exc:
        return RefreshResult(
            ok=False,
            error=f"unexpected refresh failure: {exc!r}",
            code="internal",
        )
    return RefreshResult(ok=True, sketch=refreshed)

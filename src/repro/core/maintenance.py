"""Sketch maintenance: drift detection and fine-tuning.

The paper closes with "more research is needed to automate the training
and utilization of Deep Sketches in query optimizers".  Two building
blocks of that automation are implemented here:

* **drift detection** — a sketch's materialized samples are a snapshot
  of the data; when the database changes, stored-sample statistics drift
  away from fresh-sample statistics.  :func:`detect_drift` quantifies
  the drift per table (two-sample Kolmogorov–Smirnov over the numeric
  columns) so callers can decide when a sketch is stale.
* **refresh + fine-tune** — :func:`refresh_sketch` re-materializes the
  samples against the current database and continues training the
  *existing* network on freshly labelled queries (warm start), which is
  much cheaper than building from scratch when the change is moderate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import SketchError
from ..rng import SeedLike, make_rng, spawn
from ..db.database import Database
from ..db.executor import execute_count
from ..db.types import DType
from ..sampling.bitmaps import query_bitmaps
from ..sampling.sampler import materialize_samples
from ..workload.generator import TrainingQueryGenerator, WorkloadSpec
from .batches import TrainingSet
from .sketch import DeepSketch
from .training import Trainer, TrainingConfig


@dataclass(frozen=True)
class DriftReport:
    """Per-table drift between stored and fresh samples."""

    #: table -> maximum KS statistic over its numeric columns (0..1).
    table_drift: dict[str, float]
    #: Decision threshold used by :meth:`is_stale`.
    threshold: float = 0.15

    def max_drift(self) -> float:
        return max(self.table_drift.values(), default=0.0)

    def is_stale(self) -> bool:
        """True when any table drifted beyond the threshold."""
        return self.max_drift() > self.threshold

    def __str__(self) -> str:
        rows = ", ".join(f"{t}={d:.3f}" for t, d in sorted(self.table_drift.items()))
        return f"DriftReport(max={self.max_drift():.3f}, {rows})"


def detect_drift(
    sketch: DeepSketch,
    db: Database,
    seed: SeedLike = None,
    threshold: float | None = None,
) -> DriftReport:
    """Compare the sketch's stored samples against fresh ones from ``db``.

    For every sketch table, a fresh sample of the same size is drawn and
    each numeric column's two-sample KS statistic is computed; the
    table's drift is the maximum over its columns.  Identical data gives
    statistics near zero; distribution shifts (new eras, new categories)
    push them toward one.

    ``threshold`` defaults to the two-sample KS critical value at
    α ≈ 0.005 for the sketch's sample size (``1.73 * sqrt(2 / n)``), so
    two samples of the *same* distribution very rarely read as drift
    regardless of how large the samples are.
    """
    if threshold is None:
        n = max(sketch.samples.sample_size, 1)
        threshold = 1.73 * float(np.sqrt(2.0 / n))
    rng = make_rng(seed)
    fresh = materialize_samples(
        db, sketch.tables, sketch.samples.sample_size, seed=rng
    )
    drift: dict[str, float] = {}
    for table_name in sketch.tables:
        stored_table = sketch.samples.for_table(table_name)
        fresh_table = fresh.for_table(table_name)
        worst = 0.0
        for column_name, stored_col in stored_table.columns.items():
            if stored_col.dtype is DType.STRING:
                continue  # dictionary codes are not comparable across DBs
            a = stored_col.non_null_values().astype(float)
            b = fresh_table.column(column_name).non_null_values().astype(float)
            if a.size == 0 or b.size == 0:
                continue
            worst = max(worst, float(stats.ks_2samp(a, b).statistic))
        drift[table_name] = worst
    return DriftReport(table_drift=drift, threshold=threshold)


def refresh_sketch(
    sketch: DeepSketch,
    db: Database,
    spec: WorkloadSpec,
    n_queries: int = 2000,
    epochs: int = 5,
    seed: SeedLike = None,
) -> DeepSketch:
    """Refresh samples and fine-tune the existing model on ``db``.

    The network keeps its weights (warm start); only ``epochs`` of
    additional training on ``n_queries`` freshly labelled queries are
    run, and the materialized samples are re-drawn so estimation-time
    bitmaps reflect the current data.  Label normalization constants are
    kept — they are part of the model's output contract — so the fine-
    tuned sketch remains comparable to the original.

    Returns a new :class:`DeepSketch`; the input sketch is not modified.
    """
    if set(spec.tables) != set(sketch.tables):
        raise SketchError(
            f"spec tables {sorted(spec.tables)} must match the sketch's "
            f"{sketch.tables}"
        )
    rng = make_rng(seed)
    sample_rng, query_rng, train_rng = spawn(rng, 3)

    samples = materialize_samples(
        db, sketch.tables, sketch.samples.sample_size, seed=sample_rng
    )
    generator = TrainingQueryGenerator(db, spec, seed=query_rng)
    queries = generator.draw_many(n_queries)
    kept, labels = [], []
    for query in queries:
        cardinality = execute_count(db, query)
        if cardinality > 0:
            kept.append(query)
            labels.append(float(cardinality))
    if len(kept) < 10:
        raise SketchError(
            f"only {len(kept)} non-empty fine-tuning queries; need at least 10"
        )

    featurizer = sketch.featurizer  # vocabularies and label bounds reused
    features = [
        featurizer.featurize_query(q, query_bitmaps(samples, q), db=db)
        for q in kept
    ]
    normalized = featurizer.normalize_label(np.asarray(labels))

    import copy

    model = copy.deepcopy(sketch.model)
    trainer = Trainer(model, featurizer, TrainingConfig(epochs=epochs))
    result = trainer.fit(TrainingSet(features, normalized), seed=train_rng)

    metadata = dict(sketch.metadata)
    metadata["refreshed"] = True
    metadata["fine_tune_epochs"] = epochs
    metadata["fine_tune_val_mean_qerror"] = result.final_val_mean_qerror
    return DeepSketch(
        name=sketch.name,
        featurizer=featurizer,
        model=model,
        samples=samples,
        metadata=metadata,
        inference_dtype=sketch.inference_dtype,
    )

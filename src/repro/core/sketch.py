"""The Deep Sketch itself.

"A Deep Sketch is essentially a wrapper for a (serialized) neural
network and a set of materialized samples." (paper, Sections 1 and 3)

A sketch bundles the trained MSCN, the featurizer (vocabularies and
normalization constants), and the materialized samples.  Its interface
is a single call: consume a SQL query (or a structured
:class:`~repro.workload.query.Query`), return a cardinality estimate.
Sketches serialize to one compact binary payload — the paper's
"small footprint size (a few MiBs)" — and estimation is pure in-memory
arithmetic ("fast to query (within milliseconds)"): the forward pass
runs through a compiled, autograd-free
:class:`~repro.nn.inference.InferenceSession` against pooled buffers
(the autograd graph is reserved for training and parity testing; see
``docs/performance.md``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..cache import LRUCache
from ..errors import SketchError
from ..metrics import MIN_CARDINALITY
from ..nn.inference import InferenceSession
from ..nn.serialize import state_dict_from_bytes, state_dict_to_bytes
from ..sampling.bitmaps import PredicateMaskMemo, batch_bitmaps, query_bitmaps
from ..sampling.sampler import (
    MaterializedSamples,
    samples_from_payload,
    samples_to_payload,
)
from ..workload.query import Query
from .featurization import Featurizer
from .batches import CollateScratch, collate
from .mscn import MSCN

_SAMPLE_PREFIX = "sample."

#: Default capacity of the per-sketch estimate cache.  Entries are a
#: (Query, float) pair, so even the maximum footprint is tiny next to
#: the materialized samples.
DEFAULT_ESTIMATE_CACHE_SIZE = 8192

#: Globally unique snapshot tokens.  ``itertools.count`` is safe to
#: advance from multiple threads under CPython's GIL, and tokens are
#: never reused — unlike ``id()``, which the process-pool executor must
#: not key worker state on (a freed sketch's id can be recycled).
_SNAPSHOT_TOKENS = itertools.count(1)


class _SampleCatalog:
    """Adapter letting the featurizer resolve string literals against the
    sketch's own samples (the full database is not available at
    estimation time — that is the whole point of a sketch)."""

    def __init__(self, samples: MaterializedSamples):
        self._samples = samples

    def table(self, name: str):
        return self._samples.for_table(name)


@dataclass
class DeepSketch:
    """A trained, queryable Deep Sketch.

    ``model`` may be ``None`` for an **estimation-only** sketch restored
    from a :class:`SketchSnapshot` (the process-pool executor's worker
    replica): such a sketch estimates through its shipped
    :class:`~repro.nn.inference.InferenceSession` exactly like a full
    one, but cannot be retrained, recompiled, or re-serialized.
    """

    name: str
    featurizer: Featurizer
    model: MSCN | None
    samples: MaterializedSamples
    metadata: dict = field(default_factory=dict)
    #: Dtype of the compiled inference session ("float64" or "float32").
    #: float32 roughly halves forward cost at ~1e-7 relative error in the
    #: normalized prediction, which denormalization amplifies to ~1e-5
    #: relative in the cardinality; see docs/performance.md before
    #: opting in.
    inference_dtype: str = "float64"

    def __post_init__(self):
        if self.model is not None:
            self.model.eval()
        if self.inference_dtype not in ("float64", "float32"):
            raise SketchError(
                f"inference_dtype must be 'float64' or 'float32', "
                f"got {self.inference_dtype!r}"
            )
        self._catalog = _SampleCatalog(self.samples)
        self._cache = LRUCache(maxsize=DEFAULT_ESTIMATE_CACHE_SIZE)
        self._mask_memo = PredicateMaskMemo(self.samples)
        self._session: InferenceSession | None = None
        self._scratch = CollateScratch()
        self._snapshot_token = next(_SNAPSHOT_TOKENS)
        # Collating straight at the session dtype makes the session's
        # input conversion a zero-copy passthrough either way.
        self._batch_dtype = np.dtype(self.inference_dtype)

    # ------------------------------------------------------------------
    # estimation (Figure 1b)
    # ------------------------------------------------------------------
    @property
    def cache(self) -> LRUCache:
        """The per-sketch estimate result cache (keyed by canonical query)."""
        return self._cache

    @property
    def inference_session(self) -> InferenceSession:
        """The compiled forward pass serving this sketch's estimates.

        Compiled lazily from the current model weights and invalidated
        by :meth:`clear_cache` (retrain/rebuild), so it always reflects
        the weights the caches were filled under.
        """
        if self._session is None:
            if self.model is None:
                raise SketchError(
                    f"sketch {self.name!r} is an estimation-only snapshot "
                    "with no model to compile a session from"
                )
            self._session = InferenceSession(self.model, dtype=self.inference_dtype)
        return self._session

    @property
    def snapshot_token(self) -> int:
        """Identity of the current weights/caches generation.

        Unique across all sketches in the process and bumped by
        :meth:`clear_cache`, so anything holding derived state (the
        process-pool executor's shipped worker replicas) can detect
        both "different sketch under the same name" and "same sketch,
        retrained" with one integer comparison.
        """
        return self._snapshot_token

    def _predict_batch(self, batch) -> np.ndarray:
        """Normalized predictions for a collated batch (compiled path)."""
        return self.inference_session.run(batch)

    def clear_cache(self) -> None:
        """Invalidate cached estimates (and memoized predicate masks).

        Called by the demo manager when a sketch is dropped or replaced,
        and by anything that mutates the model or samples in place.
        Also drops the compiled inference session, which snapshots the
        model weights — the next estimate recompiles from the weights as
        they are then — and advances :attr:`snapshot_token` so shipped
        worker replicas are recognized as stale.  An estimation-only
        sketch keeps its session (there is no model to recompile from);
        it only forgets cached results.
        """
        self._cache.clear()
        self._mask_memo = PredicateMaskMemo(self.samples)
        if self.model is not None:
            self._session = None
        self._snapshot_token = next(_SNAPSHOT_TOKENS)

    def _coerce(self, query: Query | str) -> Query:
        if isinstance(query, str):
            from ..db.sql import parse_sql

            query = parse_sql(query)
        return query

    def estimate(self, query: Query | str, use_cache: bool = True) -> float:
        """Cardinality estimate for ``query`` (SQL text or structured).

        Results are memoized per canonical query (``use_cache=False``
        forces a fresh forward pass).  Raises
        :class:`~repro.errors.SketchError` when the query uses a table
        outside the subset this sketch was defined on.
        """
        query = self._coerce(query)
        self._check_tables(query)
        if use_cache:
            hit = self._cache.get(query)
            if hit is not None:
                return hit
        bitmaps = query_bitmaps(self.samples, query)
        features = self.featurizer.featurize_query(query, bitmaps, db=self._catalog)
        batch = collate([features], dtype=self._batch_dtype, scratch=self._scratch)
        prediction = float(self._predict_batch(batch)[0])
        value = max(self.featurizer.denormalize_label(prediction), MIN_CARDINALITY)
        if use_cache:
            self._cache.put(query, value)
        return value

    def _check_tables(self, query: Query) -> None:
        outside = {t.table for t in query.tables} - set(self.featurizer.tables)
        if outside:
            raise SketchError(
                f"query references tables {sorted(outside)} outside this "
                f"sketch's subset {self.tables}"
            )

    def estimate_many(
        self,
        queries: list[Query | str],
        use_cache: bool = True,
        feature_cache=None,
    ) -> np.ndarray:
        """Batched estimation: one network pass for all uncached queries.

        The fast path shares work across the batch — each distinct
        predicate mask is evaluated against the samples once
        (:func:`~repro.sampling.bitmaps.batch_bitmaps`), featurization
        reuses rows, duplicate queries collapse onto one model slot, and
        cached queries skip the model entirely.  The forward pass runs
        through the compiled :attr:`inference_session` (autograd-free,
        pooled buffers), as does :meth:`estimate`, so the two paths stay
        numerically identical to each other.  ``feature_cache`` (a
        :class:`repro.serve.feature_cache.FeatureCache`) lets the
        structure-row reuse persist across calls and across sketches for
        templated workloads.
        """
        if not queries:
            return np.empty(0)
        parsed = [self._coerce(q) for q in queries]
        for query in parsed:
            self._check_tables(query)

        results = np.empty(len(parsed), dtype=np.float64)
        # Collapse to distinct uncached queries: `slots` maps each input
        # position to its position in the model batch (-1 = cache hit).
        slots = np.full(len(parsed), -1, dtype=np.int64)
        distinct: list[Query] = []
        slot_of: dict[Query, int] = {}
        for i, query in enumerate(parsed):
            if use_cache:
                hit = self._cache.get(query)
                if hit is not None:
                    results[i] = hit
                    continue
            slot = slot_of.get(query)
            if slot is None:
                slot = len(distinct)
                distinct.append(query)
                slot_of[query] = slot
            slots[i] = slot

        if distinct:
            bitmaps = batch_bitmaps(self.samples, distinct, memo=self._mask_memo)
            features = self.featurizer.featurize_batch(
                distinct, bitmaps, db=self._catalog, template_cache=feature_cache
            )
            predictions = self._predict_batch(
                collate(features, dtype=self._batch_dtype, scratch=self._scratch)
            )
            values = np.maximum(
                self.featurizer.denormalize_label(predictions), MIN_CARDINALITY
            )
            needs_model = np.flatnonzero(slots >= 0)
            results[needs_model] = values[slots[needs_model]]
            if use_cache:
                for i in needs_model:
                    self._cache.put(parsed[i], float(results[i]))
        return results

    @property
    def tables(self) -> list[str]:
        """The table subset this sketch was defined on."""
        return list(self.featurizer.tables)

    # ------------------------------------------------------------------
    # estimation-only snapshots (process-pool serving workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> "SketchSnapshot":
        """A picklable, estimation-only replica of this sketch.

        The payload is the compiled :attr:`inference_session` (weights
        only — no autograd model), the featurizer manifest, and the
        materialized-sample arrays: everything :meth:`estimate_many`
        needs and nothing it doesn't.  :meth:`SketchSnapshot.restore`
        rehydrates it in another process without retraining, rebuilding
        samples, or recompiling weights.  ``token`` captures
        :attr:`snapshot_token` at snapshot time so holders can tell when
        the replica has gone stale.
        """
        sample_arrays, sample_manifest = samples_to_payload(self.samples)
        return SketchSnapshot(
            name=self.name,
            token=self.snapshot_token,
            inference_dtype=self.inference_dtype,
            featurizer_manifest=self.featurizer.to_manifest(),
            sample_arrays=sample_arrays,
            sample_manifest=sample_manifest,
            session=self.inference_session,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # serialization and footprint
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the whole sketch (model + samples + featurizer)."""
        if self.model is None:
            raise SketchError(
                f"sketch {self.name!r} is an estimation-only snapshot; "
                "only the original (model-bearing) sketch serializes"
            )
        payload = {
            f"model.{k}": v for k, v in self.model.state_dict().items()
        }
        sample_arrays, sample_manifest = samples_to_payload(self.samples)
        payload.update(sample_arrays)
        meta = {
            "name": self.name,
            "architecture": self.model.architecture(),
            "featurizer": self.featurizer.to_manifest(),
            "samples": sample_manifest,
            "metadata": self.metadata,
            "inference_dtype": self.inference_dtype,
        }
        return state_dict_to_bytes(payload, meta=meta)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DeepSketch":
        """Inverse of :meth:`to_bytes`."""
        arrays, meta = state_dict_from_bytes(blob)
        for key in ("name", "architecture", "featurizer", "samples"):
            if key not in meta:
                raise SketchError(f"sketch payload is missing {key!r} metadata")
        model = MSCN.from_architecture(meta["architecture"])
        model.load_state_dict(
            {
                k[len("model.") :]: v
                for k, v in arrays.items()
                if k.startswith("model.")
            }
        )
        samples = samples_from_payload(
            {k: v for k, v in arrays.items() if k.startswith(_SAMPLE_PREFIX)},
            meta["samples"],
        )
        return cls(
            name=str(meta["name"]),
            featurizer=Featurizer.from_manifest(meta["featurizer"]),
            model=model,
            samples=samples,
            metadata=dict(meta.get("metadata", {})),
            # Pre-PR-3 payloads have no inference_dtype; default float64.
            inference_dtype=str(meta.get("inference_dtype", "float64")),
        )

    def save(self, path: str) -> int:
        """Write the sketch to ``path``; returns the footprint in bytes."""
        blob = self.to_bytes()
        with open(path, "wb") as f:
            f.write(blob)
        return len(blob)

    @classmethod
    def load(cls, path: str) -> "DeepSketch":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())

    def footprint_bytes(self) -> int:
        """Serialized size — the paper's "few MiBs" footprint claim."""
        return len(self.to_bytes())

    def __repr__(self) -> str:
        params = "-" if self.model is None else self.model.num_parameters()
        return (
            f"DeepSketch({self.name!r}, tables={self.tables}, "
            f"params={params}, "
            f"sample_size={self.samples.sample_size})"
        )


@dataclass
class SketchSnapshot:
    """Picklable estimation-only view of a :class:`DeepSketch`.

    Produced by :meth:`DeepSketch.snapshot` and consumed by the serving
    layer's process-pool executor: the parent pickles one of these per
    sketch into each worker, and :meth:`restore` turns it back into an
    estimation-only ``DeepSketch`` (``model=None``, session pre-set)
    whose ``estimate``/``estimate_many`` run the exact same compiled
    arithmetic as the parent's — the worker never retrains, never
    re-materializes samples, and never touches autograd.
    """

    name: str
    token: int
    inference_dtype: str
    featurizer_manifest: dict
    sample_arrays: dict
    sample_manifest: dict
    session: InferenceSession
    metadata: dict = field(default_factory=dict)

    def restore(self) -> DeepSketch:
        """Rehydrate an estimation-only sketch from this snapshot."""
        sketch = DeepSketch(
            name=self.name,
            featurizer=Featurizer.from_manifest(self.featurizer_manifest),
            model=None,
            samples=samples_from_payload(self.sample_arrays, self.sample_manifest),
            metadata=dict(self.metadata),
            inference_dtype=self.inference_dtype,
        )
        sketch._session = self.session
        return sketch

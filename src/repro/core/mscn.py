"""The multi-set convolutional network (MSCN).

"While the Deep Sets model only addresses single sets, our model —
called multi-set convolutional network (MSCN) — represents three sets
(tables, joins, and predicates) and can capture correlations between
sets.  On a high level ... for each set, it has a separate module,
comprised of one fully-connected multi-layer perceptron (MLP) per set
element with shared parameters.  We average module outputs, concatenate
them, and feed them into a final output MLP, which captures correlations
between sets and outputs a cardinality estimate."  (paper, Section 2)

Architecture (matching the reference implementation):

    table set  (B,S_t,d_t) --MLP-> (B,S_t,h) --masked avg-> (B,h) \
    join set   (B,S_j,d_j) --MLP-> (B,S_j,h) --masked avg-> (B,h)  +-concat->
    pred set   (B,S_p,d_p) --MLP-> (B,S_p,h) --masked avg-> (B,h) /
                               (B,3h) --MLP-> (B,h) --Linear+sigmoid-> (B,)

Every MLP is two layers with ReLU; the output passes through a sigmoid,
so predictions live in (0, 1) like the normalized log labels.
"""

from __future__ import annotations

from ..errors import TrainingError
from ..rng import SeedLike, make_rng
from ..nn.functional import masked_mean
from ..nn.layers import Linear, ReLU, Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor, concat
from .batches import Batch


class MSCN(Module):
    """The three-set MSCN cardinality model."""

    def __init__(
        self,
        table_dim: int,
        join_dim: int,
        predicate_dim: int,
        hidden_units: int = 64,
        seed: SeedLike = None,
    ):
        super().__init__()
        if hidden_units <= 0:
            raise TrainingError(f"hidden_units must be positive, got {hidden_units}")
        rng = make_rng(seed)
        self.table_dim = table_dim
        self.join_dim = join_dim
        self.predicate_dim = predicate_dim
        self.hidden_units = hidden_units

        def set_module(in_dim: int) -> Sequential:
            return Sequential(
                Linear(in_dim, hidden_units, rng=rng),
                ReLU(),
                Linear(hidden_units, hidden_units, rng=rng),
                ReLU(),
            )

        self.table_mlp = self.register_module("table_mlp", set_module(table_dim))
        self.join_mlp = self.register_module("join_mlp", set_module(join_dim))
        self.predicate_mlp = self.register_module(
            "predicate_mlp", set_module(predicate_dim)
        )
        self.out_mlp = self.register_module(
            "out_mlp",
            Sequential(
                Linear(3 * hidden_units, hidden_units, rng=rng),
                ReLU(),
                Linear(hidden_units, 1, rng=rng),
            ),
        )

    def forward(self, batch: Batch) -> Tensor:
        """Normalized log-cardinality predictions, shape (B,)."""
        table_repr = masked_mean(
            self.table_mlp(Tensor(batch.tables)), batch.table_mask
        )
        join_repr = masked_mean(self.join_mlp(Tensor(batch.joins)), batch.join_mask)
        pred_repr = masked_mean(
            self.predicate_mlp(Tensor(batch.predicates)), batch.predicate_mask
        )
        combined = concat([table_repr, join_repr, pred_repr], axis=1)
        out = self.out_mlp(combined).sigmoid()
        return out.reshape(out.shape[0])

    def compile(self, dtype="float64"):
        """Snapshot the current weights into a compiled inference session.

        The session (:class:`~repro.nn.inference.InferenceSession`) runs
        the same forward as :meth:`forward` as a flat sequence of
        in-place numpy calls against pooled buffers — no autograd nodes,
        no per-call allocation on repeated batch shapes.  It does not
        track later weight updates; recompile after training.
        """
        from ..nn.inference import InferenceSession

        return InferenceSession(self, dtype=dtype)

    def architecture(self) -> dict:
        """JSON-able architecture description for serialization."""
        return {
            "table_dim": self.table_dim,
            "join_dim": self.join_dim,
            "predicate_dim": self.predicate_dim,
            "hidden_units": self.hidden_units,
        }

    @classmethod
    def from_architecture(cls, arch: dict, seed: SeedLike = 0) -> "MSCN":
        try:
            return cls(
                table_dim=int(arch["table_dim"]),
                join_dim=int(arch["join_dim"]),
                predicate_dim=int(arch["predicate_dim"]),
                hidden_units=int(arch["hidden_units"]),
                seed=seed,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrainingError(f"malformed MSCN architecture: {exc}") from exc

"""Padded, masked batches of featurized queries.

MSCN consumes whole sets per query; queries in a batch have different
set sizes, so each set is padded to the batch maximum and a mask marks
the real elements (averaging in the model honors the mask).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import TrainingError
from ..rng import SeedLike, make_rng
from .featurization import QueryFeatures


@dataclass
class Batch:
    """Dense batch: three padded feature tensors plus their masks."""

    tables: np.ndarray          # (B, S_t, table_dim)
    table_mask: np.ndarray      # (B, S_t)
    joins: np.ndarray           # (B, S_j, join_dim)
    join_mask: np.ndarray       # (B, S_j)
    predicates: np.ndarray      # (B, S_p, predicate_dim)
    predicate_mask: np.ndarray  # (B, S_p)

    @property
    def size(self) -> int:
        return self.tables.shape[0]


def _pad_set(rows: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length (s_i, d) arrays into (B, max_s, d) + mask."""
    max_s = max(r.shape[0] for r in rows)
    dim = rows[0].shape[1]
    data = np.zeros((len(rows), max_s, dim))
    mask = np.zeros((len(rows), max_s))
    for i, r in enumerate(rows):
        data[i, : r.shape[0], :] = r
        mask[i, : r.shape[0]] = 1.0
    return data, mask


def collate(features: Sequence[QueryFeatures]) -> Batch:
    """Collate featurized queries into one padded batch."""
    if not features:
        raise TrainingError("cannot collate an empty batch")
    dims = {(f.tables.shape[1], f.joins.shape[1], f.predicates.shape[1]) for f in features}
    if len(dims) != 1:
        raise TrainingError(f"inconsistent feature dimensions in batch: {dims}")
    tables, table_mask = _pad_set([f.tables for f in features])
    joins, join_mask = _pad_set([f.joins for f in features])
    predicates, predicate_mask = _pad_set([f.predicates for f in features])
    return Batch(tables, table_mask, joins, join_mask, predicates, predicate_mask)


@dataclass
class TrainingSet:
    """Featurized queries plus normalized labels, with batching."""

    features: list[QueryFeatures]
    labels: np.ndarray  # normalized log labels in [0, 1]

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if len(self.features) != len(self.labels):
            raise TrainingError(
                f"{len(self.features)} feature sets but {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.features)

    def split(self, validation_fraction: float, seed: SeedLike = None) -> tuple["TrainingSet", "TrainingSet"]:
        """Shuffled train/validation split."""
        if not 0.0 < validation_fraction < 1.0:
            raise TrainingError(
                f"validation fraction must be in (0, 1), got {validation_fraction}"
            )
        rng = make_rng(seed)
        order = rng.permutation(len(self))
        n_val = max(int(round(len(self) * validation_fraction)), 1)
        if n_val >= len(self):
            raise TrainingError("training set too small to split")
        val_idx, train_idx = order[:n_val], order[n_val:]
        return (
            TrainingSet([self.features[i] for i in train_idx], self.labels[train_idx]),
            TrainingSet([self.features[i] for i in val_idx], self.labels[val_idx]),
        )

    def minibatches(
        self, batch_size: int, shuffle: bool = True, seed: SeedLike = None
    ) -> Iterator[tuple[Batch, np.ndarray]]:
        """Yield (batch, labels) minibatches."""
        if batch_size <= 0:
            raise TrainingError(f"batch size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            make_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield (
                collate([self.features[i] for i in idx]),
                self.labels[idx],
            )

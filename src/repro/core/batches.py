"""Padded, masked batches of featurized queries.

MSCN consumes whole sets per query; queries in a batch have different
set sizes, so each set is padded to the batch maximum and a mask marks
the real elements (averaging in the model honors the mask).

Two throughput features live here alongside the plain collation path:

* :class:`CollateScratch` — a thread-local pool of collation buffers
  keyed by (shape, dtype), so hot serving loops that collate the same
  batch shapes over and over (``DeepSketch.estimate``/``estimate_many``)
  stop allocating six fresh arrays per call;
* precollation — :class:`TrainingSet` pads the *whole* dataset to its
  maxima once (:meth:`TrainingSet.precollated`) and then serves every
  minibatch of every epoch as slice views (plus one vectorized gather
  per shuffled epoch), replacing the per-epoch Python re-collation
  loop.  Padding to dataset maxima instead of batch maxima only adds
  masked all-zero elements, which contribute exactly nothing through
  the masked mean, so training numerics are unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import TrainingError
from ..pools import DEFAULT_MAX_SHAPES, ArrayPool
from ..rng import SeedLike, make_rng
from .featurization import QueryFeatures

#: A scratch pool holding more distinct (shape, dtype) buffers than this
#: is cleared — a backstop against unbounded shape churn.
MAX_SCRATCH_SHAPES = DEFAULT_MAX_SHAPES


@dataclass
class Batch:
    """Dense batch: three padded feature tensors plus their masks."""

    tables: np.ndarray          # (B, S_t, table_dim)
    table_mask: np.ndarray      # (B, S_t)
    joins: np.ndarray           # (B, S_j, join_dim)
    join_mask: np.ndarray       # (B, S_j)
    predicates: np.ndarray      # (B, S_p, predicate_dim)
    predicate_mask: np.ndarray  # (B, S_p)

    @property
    def size(self) -> int:
        return self.tables.shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self.tables.dtype

    def astype(self, dtype) -> "Batch":
        """This batch with every array converted to ``dtype`` (copies)."""
        dtype = np.dtype(dtype)
        return Batch(
            tables=self.tables.astype(dtype),
            table_mask=self.table_mask.astype(dtype),
            joins=self.joins.astype(dtype),
            join_mask=self.join_mask.astype(dtype),
            predicates=self.predicates.astype(dtype),
            predicate_mask=self.predicate_mask.astype(dtype),
        )

    def slice(self, start: int, stop: int) -> "Batch":
        """Zero-copy view of rows ``[start, stop)`` of every array."""
        return Batch(
            tables=self.tables[start:stop],
            table_mask=self.table_mask[start:stop],
            joins=self.joins[start:stop],
            join_mask=self.join_mask[start:stop],
            predicates=self.predicates[start:stop],
            predicate_mask=self.predicate_mask[start:stop],
        )


class CollateScratch(ArrayPool):
    """Thread-local pool of zeroed collation buffers, keyed by shape+dtype.

    ``collate(..., scratch=...)`` draws its output arrays from here
    instead of allocating: a repeated batch shape reuses (and re-zeroes)
    the same buffers.  The returned :class:`Batch` therefore aliases the
    pool — it is valid until the **same thread** collates again, which
    is exactly the lifetime of a serving micro-batch (collate, run the
    model, read out the predictions).  Buffers are per-thread, so
    concurrent callers never share scratch space.  (The ``tag`` passed
    by :func:`_pad_set` keeps same-shaped sets — e.g. joins and
    predicates with equal dims — from aliasing within one collation.)
    """

    def __init__(self):
        super().__init__(zeroed=True, max_shapes=MAX_SCRATCH_SHAPES)


def _pad_set(
    rows: list[np.ndarray],
    dtype=np.float64,
    scratch: CollateScratch | None = None,
    tag: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length (s_i, d) arrays into (B, max_s, d) + mask.

    ``dtype`` sets the output arrays' type (float64 default, float32
    opt-in for the compiled inference path); ``scratch`` reuses pooled
    buffers instead of allocating.  ``tag`` keeps the data and mask of
    different sets from colliding on equal shapes in the pool.
    """
    max_s = max(r.shape[0] for r in rows)
    dim = rows[0].shape[1]
    if scratch is not None:
        data = scratch.array((len(rows), max_s, dim), dtype, tag=f"{tag}.data")
        mask = scratch.array((len(rows), max_s), dtype, tag=f"{tag}.mask")
    else:
        data = np.zeros((len(rows), max_s, dim), dtype=dtype)
        mask = np.zeros((len(rows), max_s), dtype=dtype)
    for i, r in enumerate(rows):
        data[i, : r.shape[0], :] = r
        mask[i, : r.shape[0]] = 1.0
    return data, mask


def collate(
    features: Sequence[QueryFeatures],
    dtype=np.float64,
    scratch: CollateScratch | None = None,
) -> Batch:
    """Collate featurized queries into one padded batch.

    With ``scratch`` the batch's arrays are pooled buffers owned by the
    calling thread and valid until its next scratch collation — the
    zero-allocation path used by the serving hot loops.
    """
    if not features:
        raise TrainingError("cannot collate an empty batch")
    dims = {(f.tables.shape[1], f.joins.shape[1], f.predicates.shape[1]) for f in features}
    if len(dims) != 1:
        raise TrainingError(f"inconsistent feature dimensions in batch: {dims}")
    tables, table_mask = _pad_set(
        [f.tables for f in features], dtype, scratch, tag="tables"
    )
    joins, join_mask = _pad_set(
        [f.joins for f in features], dtype, scratch, tag="joins"
    )
    predicates, predicate_mask = _pad_set(
        [f.predicates for f in features], dtype, scratch, tag="predicates"
    )
    return Batch(tables, table_mask, joins, join_mask, predicates, predicate_mask)


@dataclass
class TrainingSet:
    """Featurized queries plus normalized labels, with batching."""

    features: list[QueryFeatures]
    labels: np.ndarray  # normalized log labels in [0, 1]

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if len(self.features) != len(self.labels):
            raise TrainingError(
                f"{len(self.features)} feature sets but {len(self.labels)} labels"
            )
        self._dense: Batch | None = None
        self._shuffled: Batch | None = None
        # Held (non-blocking) by the shuffled iterator currently using
        # the shared _shuffled scratch; see _permuted.
        self._shuffled_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.features)

    def split(self, validation_fraction: float, seed: SeedLike = None) -> tuple["TrainingSet", "TrainingSet"]:
        """Shuffled train/validation split."""
        if not 0.0 < validation_fraction < 1.0:
            raise TrainingError(
                f"validation fraction must be in (0, 1), got {validation_fraction}"
            )
        rng = make_rng(seed)
        order = rng.permutation(len(self))
        n_val = max(int(round(len(self) * validation_fraction)), 1)
        if n_val >= len(self):
            raise TrainingError("training set too small to split")
        val_idx, train_idx = order[:n_val], order[n_val:]
        return (
            TrainingSet([self.features[i] for i in train_idx], self.labels[train_idx]),
            TrainingSet([self.features[i] for i in val_idx], self.labels[val_idx]),
        )

    # ------------------------------------------------------------------
    # precollated minibatching
    # ------------------------------------------------------------------
    def precollated(self) -> Batch:
        """The whole dataset as one batch, padded to dataset maxima.

        Built lazily on first use and cached; every epoch's minibatches
        are views (or permuted copies) of these arrays, so per-epoch
        re-collation of individual queries never happens again.
        """
        if self._dense is None:
            self._dense = collate(self.features)
        return self._dense

    def _permuted(self, order: np.ndarray) -> tuple[Batch, bool]:
        """The precollated arrays gathered into ``order`` (one vectorized
        take per array), plus whether the shared scratch was used.

        The gather destination is a scratch batch reused across epochs.
        If another shuffled iteration over this dataset is still active
        (interleaved epochs, or a second thread), the scratch is busy —
        its views must not be overwritten — so a private batch is
        allocated for this iteration instead.
        """
        dense = self.precollated()
        if not self._shuffled_lock.acquire(blocking=False):
            return Batch(
                tables=np.take(dense.tables, order, axis=0),
                table_mask=np.take(dense.table_mask, order, axis=0),
                joins=np.take(dense.joins, order, axis=0),
                join_mask=np.take(dense.join_mask, order, axis=0),
                predicates=np.take(dense.predicates, order, axis=0),
                predicate_mask=np.take(dense.predicate_mask, order, axis=0),
            ), False
        try:
            if self._shuffled is None:
                self._shuffled = Batch(
                    tables=np.empty_like(dense.tables),
                    table_mask=np.empty_like(dense.table_mask),
                    joins=np.empty_like(dense.joins),
                    join_mask=np.empty_like(dense.join_mask),
                    predicates=np.empty_like(dense.predicates),
                    predicate_mask=np.empty_like(dense.predicate_mask),
                )
            out = self._shuffled
            np.take(dense.tables, order, axis=0, out=out.tables)
            np.take(dense.table_mask, order, axis=0, out=out.table_mask)
            np.take(dense.joins, order, axis=0, out=out.joins)
            np.take(dense.join_mask, order, axis=0, out=out.join_mask)
            np.take(dense.predicates, order, axis=0, out=out.predicates)
            np.take(dense.predicate_mask, order, axis=0, out=out.predicate_mask)
        except BaseException:
            # The caller only releases once it owns the scratch; if the
            # gather itself fails the lock must not leak.
            self._shuffled_lock.release()
            raise
        return out, True

    def minibatches(
        self, batch_size: int, shuffle: bool = True, seed: SeedLike = None
    ) -> Iterator[tuple[Batch, np.ndarray]]:
        """Yield (batch, labels) minibatches.

        Batches are slice views of the precollated (and, when shuffling,
        per-epoch permuted) dataset arrays: valid while their iteration
        is live, which covers every consumer that processes one
        minibatch at a time.  Sets are padded to dataset maxima — the
        extra elements are masked out and contribute nothing.
        """
        if batch_size <= 0:
            raise TrainingError(f"batch size must be positive, got {batch_size}")
        order = np.arange(len(self))
        owns_scratch = False
        if shuffle:
            make_rng(seed).shuffle(order)
            source, owns_scratch = self._permuted(order)
        else:
            source = self.precollated()
        try:
            for start in range(0, len(self), batch_size):
                stop = min(start + batch_size, len(self))
                yield source.slice(start, stop), self.labels[order[start:stop]]
        finally:
            if owns_scratch:
                self._shuffled_lock.release()

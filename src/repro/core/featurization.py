"""Query featurization for the MSCN model (paper Section 2).

"The featurization of a query is very straightforward.  Based on the
training data, we enumerate tables, columns, joins, and predicate types
(=, <, and >) and represent them as unique one-hot vectors.  We
represent each literal in a query as a value val (val ∈ [0, 1]),
normalized using the minimum and maximum values of the respective
column.  Similarly, we logarithmize and then normalize cardinalities
(labels) using the maximum cardinality present in the training data."

A query becomes three sets of feature vectors:

* **table set** — one-hot table id ⊕ the table's qualifying-sample
  bitmap (so runtime sampling information enters the model);
* **join set** — one-hot join id (joins are identified by their
  table-level signature, e.g. ``movie_keyword.movie_id=title.id``);
* **predicate set** — one-hot column ⊕ one-hot operator ⊕ normalized
  literal value.

Empty join/predicate sets are encoded as a single all-zero element with
an active mask bit, following the reference implementation.

String literals are featurized via their dictionary codes, min–max
normalized over the code domain (the original MSCN handles only numeric
columns; dictionary encoding is the standard extension and is what the
demo relies on for columns like ``keyword.keyword``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import FeaturizationError
from ..db.database import Database
from ..db.types import DType
from ..workload.query import Query
from ..workload.generator import WorkloadSpec


@dataclass(frozen=True)
class QueryFeatures:
    """The three feature sets of one query."""

    tables: np.ndarray      # (n_tables, table_dim)
    joins: np.ndarray       # (n_joins or 1, join_dim)
    predicates: np.ndarray  # (n_predicates or 1, predicate_dim)


def _one_hot(index: int, size: int) -> np.ndarray:
    vec = np.zeros(size)
    vec[index] = 1.0
    return vec


def _canonical_join(side_a: str, side_b: str) -> str:
    """Order-independent join signature ``min=max`` over the two sides."""
    first, second = sorted([side_a, side_b])
    return f"{first}={second}"


class _BatchRowMemo:
    """Feature rows shared across one featurization batch.

    Rows are reused read-only (``np.stack``/``np.concatenate`` copy), so
    sharing is safe and keeps batched featurization numerically
    identical to the per-query path.  ``predicate_prefixes`` memoizes
    the literal-independent part of a predicate row (column one-hot ⊕
    operator one-hot) keyed by ``(column key, op)``; ``predicate_rows``
    memoizes full rows including the normalized literal.
    """

    __slots__ = ("table_onehots", "join_rows", "predicate_rows", "predicate_prefixes")

    def __init__(self):
        self.table_onehots: dict[str, np.ndarray] = {}
        self.join_rows: dict[str, np.ndarray] = {}
        self.predicate_rows: dict[tuple, np.ndarray] = {}
        self.predicate_prefixes: dict[tuple, np.ndarray] = {}


def template_key(query: Query) -> tuple:
    """Canonical *shape* of a query: everything except predicate literals.

    Two queries share a template when they touch the same tables (with
    the same aliases), the same join edges, and the same
    ``(alias, column, op)`` predicate slots — the classic parameterized
    workload ("same query, different constants").  All structure-derived
    feature rows are a pure function of the template (plus the
    featurizer's vocabularies); only the normalized-literal slot of each
    predicate row depends on the constants.  The serving layer's shared
    feature cache (:mod:`repro.serve.feature_cache`) is keyed by this.
    """
    return (
        query.tables,
        query.joins,
        tuple((p.alias, p.column, p.op) for p in query.predicates),
    )


@dataclass(frozen=True)
class TemplateFeatures:
    """Literal-independent feature structure of one query template.

    Everything here is a pure function of ``template_key(query)`` and
    the owning featurizer's vocabularies, so it can be cached across
    queries (and across time) and shared read-only:

    * ``table_onehots`` — one-hot table ids aligned with the query's
      canonically sorted table refs (bitmaps are appended per query);
    * ``joins`` — the complete stacked join feature array (no
      per-query component at all);
    * ``predicate_prefixes`` — column one-hot ⊕ operator one-hot per
      predicate slot, aligned with the query's canonical predicate
      order (the normalized literal is appended per query);
    * ``predicate_keys`` — the ``"table.column"`` key per slot, so the
      assembly step can normalize literals without re-deriving them.

    ``featurizer`` pins the vocabulary the rows were built against; a
    cache hit is only valid when it is *the same object* (a rebuilt
    sketch gets a fresh featurizer, invalidating entries by identity).
    """

    featurizer: "Featurizer"
    table_onehots: tuple[np.ndarray, ...]
    joins: np.ndarray
    predicate_prefixes: tuple[np.ndarray, ...]
    predicate_keys: tuple[str, ...]


@dataclass
class Featurizer:
    """Vocabularies and normalization constants for one sketch.

    Construction enumerates the vocabularies from a database and a
    workload spec (equivalent to enumerating them from training data,
    but deterministic and closed under everything the generator can
    produce).  Label bounds are fitted on training labels via
    :meth:`fit_labels`.
    """

    tables: list[str]
    joins: list[str]
    columns: list[str]                    # "table.column" keys
    operators: list[str]
    sample_size: int
    column_bounds: dict[str, tuple[float, float]]
    min_log_label: float = 0.0
    max_log_label: float = 1.0
    #: Ablation switch: with ``use_bitmaps=False`` the table features
    #: carry only the one-hot table id (the "static features only" MSCN
    #: variant) — the paper's runtime-sampling input is disabled.
    use_bitmaps: bool = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: Database,
        spec: WorkloadSpec,
        sample_size: int,
        use_bitmaps: bool = True,
    ) -> "Featurizer":
        tables = sorted(spec.tables)
        joins = sorted(
            _canonical_join(f"{fk.table}.{fk.column}", f"{fk.ref_table}.{fk.ref_column}")
            for fk in db.foreign_keys
            if fk.table in spec.tables and fk.ref_table in spec.tables
        )
        columns = []
        bounds: dict[str, tuple[float, float]] = {}
        for table_name in tables:
            for column_name in spec.columns_of(table_name):
                key = f"{table_name}.{column_name}"
                columns.append(key)
                bounds[key] = db.table(table_name).column(column_name).min_max()
        # The operator vocabulary always covers the engine's full set
        # (not just the training spec's): the demo serves year-grouping
        # templates by issuing >=/< range queries against the sketch, so
        # those operators must be featurizable even if training only
        # exercised {=, <, >}.
        from ..ops import OPERATORS

        operators = sorted(set(spec.operators) | set(OPERATORS))
        return cls(
            tables=tables,
            joins=joins,
            columns=sorted(columns),
            operators=operators,
            sample_size=sample_size,
            column_bounds=bounds,
            use_bitmaps=use_bitmaps,
        )

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def table_dim(self) -> int:
        return len(self.tables) + self.sample_size

    @property
    def join_dim(self) -> int:
        return max(len(self.joins), 1)

    @property
    def predicate_dim(self) -> int:
        return len(self.columns) + len(self.operators) + 1

    # ------------------------------------------------------------------
    # label normalization
    # ------------------------------------------------------------------
    def fit_labels(self, cardinalities: np.ndarray) -> None:
        """Fit min/max of log labels from training cardinalities."""
        cards = np.maximum(np.asarray(cardinalities, dtype=np.float64), 1.0)
        if cards.size == 0:
            raise FeaturizationError("cannot fit labels on an empty training set")
        logs = np.log(cards)
        low, high = float(logs.min()), float(logs.max())
        if high <= low:
            high = low + 1.0  # degenerate training set; keep the map invertible
        self.min_log_label = low
        self.max_log_label = high

    @property
    def log_label_span(self) -> float:
        return self.max_log_label - self.min_log_label

    def normalize_label(self, cardinality):
        """Map cardinalities to [0, 1] (log scale, clipped).

        Accepts a scalar (returns ``float``) or an array of any shape
        (returns a float64 array, elementwise identical to the scalar
        path) — the serving and training pipelines pass whole label
        vectors through in one call instead of a Python loop.
        """
        cards = np.maximum(np.asarray(cardinality, dtype=np.float64), 1.0)
        norm = np.clip(
            (np.log(cards) - self.min_log_label) / self.log_label_span, 0.0, 1.0
        )
        if norm.ndim == 0:
            return float(norm)
        return norm

    def denormalize_label(self, value):
        """Inverse of :meth:`normalize_label` (scalar or array, like it)."""
        value = np.clip(np.asarray(value, dtype=np.float64), 0.0, 1.0)
        cards = np.exp(value * self.log_label_span + self.min_log_label)
        if cards.ndim == 0:
            return float(cards)
        return cards

    # ------------------------------------------------------------------
    # literal normalization
    # ------------------------------------------------------------------
    def normalize_literal(self, db_column, key: str, literal) -> float:
        """Map a literal to [0, 1] over the column's value bounds.

        An ``in`` tuple featurizes as the mean of its members' normalized
        values — the one-slot summary of the member set; the exact
        membership semantics still reach the model through the
        qualifying-sample bitmaps.
        """
        if isinstance(literal, tuple):
            if not literal:
                raise FeaturizationError("cannot featurize an empty 'in' literal")
            values = [
                self.normalize_literal(db_column, key, member) for member in literal
            ]
            return float(np.mean(values))
        low, high = self.column_bounds[key]
        if db_column is not None and db_column.dtype is DType.STRING:
            code = db_column.encode_literal(literal)
            raw = float(code) if code is not None else low
        else:
            raw = float(literal)
        if high <= low:
            return 0.0
        return float(np.clip((raw - low) / (high - low), 0.0, 1.0))

    # ------------------------------------------------------------------
    # featurization
    # ------------------------------------------------------------------
    def _join_signature(self, query: Query, join) -> str:
        left_table = query.alias_table(join.left_alias)
        right_table = query.alias_table(join.right_alias)
        return _canonical_join(
            f"{left_table}.{join.left_column}",
            f"{right_table}.{join.right_column}",
        )

    def _index_maps(self) -> tuple[dict, dict, dict, dict]:
        """(table, join, column, operator) -> position lookups.

        Built once per featurizer: the vocabularies are fixed at
        construction, and rebuilding four dicts per featurized query is
        pure overhead on the estimation hot path.
        """
        maps = self.__dict__.get("_cached_index_maps")
        if maps is None:
            maps = (
                {t: i for i, t in enumerate(self.tables)},
                {j: i for i, j in enumerate(self.joins)},
                {c: i for i, c in enumerate(self.columns)},
                {o: i for i, o in enumerate(self.operators)},
            )
            self.__dict__["_cached_index_maps"] = maps
        return maps

    def featurize_query(
        self,
        query: Query,
        bitmaps: dict[str, np.ndarray],
        db: Database | None = None,
        template_cache=None,
    ) -> QueryFeatures:
        """Featurize one query given its per-alias sample bitmaps.

        ``db`` is needed only to encode string literals; purely numeric
        queries featurize without it.  ``template_cache`` (any object
        with the :class:`repro.serve.feature_cache.FeatureCache`
        ``lookup``/``store`` protocol) short-circuits structure-row
        construction for known templates.  Raises
        :class:`~repro.errors.FeaturizationError` for anything outside
        the vocabularies (unknown table, join, column, or operator).
        """
        return self._featurize_one(query, bitmaps, db, _BatchRowMemo(), template_cache)

    def featurize_batch(
        self,
        queries: Sequence[Query],
        bitmaps: Sequence[dict[str, np.ndarray]],
        db: Database | None = None,
        template_cache=None,
    ) -> list[QueryFeatures]:
        """Featurize a whole batch, sharing row construction work.

        ``bitmaps`` is aligned with ``queries`` (one per-alias dict per
        query, e.g. the output of
        :func:`repro.sampling.bitmaps.batch_bitmaps`).  Join and
        predicate feature rows are memoized across the batch — serving
        workloads repeat join signatures and literals heavily — and the
        resulting features are numerically identical to per-query
        :meth:`featurize_query` calls.  With a ``template_cache``, the
        memoization additionally persists *across* batches, keyed by
        :func:`template_key`.
        """
        if len(queries) != len(bitmaps):
            raise FeaturizationError(
                f"{len(queries)} queries but {len(bitmaps)} bitmap sets"
            )
        memo = _BatchRowMemo()
        return [
            self._featurize_one(query, query_bitmaps, db, memo, template_cache)
            for query, query_bitmaps in zip(queries, bitmaps)
        ]

    def _featurize_one(
        self,
        query: Query,
        bitmaps: dict[str, np.ndarray],
        db: Database | None,
        memo: "_BatchRowMemo",
        template_cache=None,
    ) -> QueryFeatures:
        template = None
        if template_cache is not None:
            key = template_key(query)
            template = template_cache.lookup(self, key)
        if template is None:
            template = self._build_template(query, memo)
            if template_cache is not None:
                template_cache.store(self, key, template)
        return self._assemble(template, query, bitmaps, db, memo)

    def _build_template(self, query: Query, memo: "_BatchRowMemo") -> TemplateFeatures:
        """Build the literal-independent structure rows for ``query``.

        This is the vocabulary-validation point: unknown tables, joins,
        columns, and operators raise here, before any per-query work.
        """
        table_index, join_index, column_index, op_index = self._index_maps()

        table_onehots = []
        for ref in sorted(query.tables):
            if ref.table not in table_index:
                raise FeaturizationError(
                    f"table {ref.table!r} is outside this sketch's vocabulary "
                    f"{self.tables}"
                )
            onehot = memo.table_onehots.get(ref.table)
            if onehot is None:
                onehot = _one_hot(table_index[ref.table], len(self.tables))
                memo.table_onehots[ref.table] = onehot
            table_onehots.append(onehot)

        if query.joins:
            join_rows = []
            for join in query.joins:
                signature = self._join_signature(query, join)
                row = memo.join_rows.get(signature)
                if row is None:
                    if signature not in join_index:
                        raise FeaturizationError(
                            f"join {signature!r} is outside this sketch's vocabulary"
                        )
                    row = _one_hot(join_index[signature], self.join_dim)
                    memo.join_rows[signature] = row
                join_rows.append(row)
            joins = np.stack(join_rows, axis=0)
        else:
            joins = np.zeros((1, self.join_dim))

        prefixes = []
        keys = []
        for pred in query.predicates:
            table_name = query.alias_table(pred.alias)
            key = f"{table_name}.{pred.column}"
            prefix = memo.predicate_prefixes.get((key, pred.op))
            if prefix is None:
                if key not in column_index:
                    raise FeaturizationError(
                        f"predicate column {key!r} is outside this sketch's "
                        "vocabulary"
                    )
                if pred.op not in op_index:
                    raise FeaturizationError(
                        f"operator {pred.op!r} is outside this sketch's "
                        f"vocabulary {self.operators}"
                    )
                prefix = np.concatenate(
                    [
                        _one_hot(column_index[key], len(self.columns)),
                        _one_hot(op_index[pred.op], len(self.operators)),
                    ]
                )
                memo.predicate_prefixes[(key, pred.op)] = prefix
            prefixes.append(prefix)
            keys.append(key)

        return TemplateFeatures(
            featurizer=self,
            table_onehots=tuple(table_onehots),
            joins=joins,
            predicate_prefixes=tuple(prefixes),
            predicate_keys=tuple(keys),
        )

    def _assemble(
        self,
        template: TemplateFeatures,
        query: Query,
        bitmaps: dict[str, np.ndarray],
        db: Database | None,
        memo: "_BatchRowMemo",
    ) -> QueryFeatures:
        """Combine cached structure rows with per-query bitmaps/literals.

        Only the per-query inputs are touched here — sample bitmaps for
        the table set, normalized literals for the predicate set — so a
        template-cache hit costs exactly the work that *cannot* be
        shared between two instances of the same template.  The arrays
        produced are bit-identical to an uncached featurization: rows
        are assembled by the same ``np.concatenate`` calls on the same
        operands.
        """
        table_rows = []
        for onehot, ref in zip(template.table_onehots, sorted(query.tables)):
            bitmap = bitmaps.get(ref.alias)
            if bitmap is None:
                raise FeaturizationError(f"missing bitmap for alias {ref.alias!r}")
            bitmap = np.asarray(bitmap, dtype=np.float64)
            if bitmap.shape != (self.sample_size,):
                raise FeaturizationError(
                    f"bitmap for {ref.alias!r} has shape {bitmap.shape}, "
                    f"expected ({self.sample_size},)"
                )
            if not self.use_bitmaps:
                bitmap = np.zeros_like(bitmap)
            table_rows.append(np.concatenate([onehot, bitmap]))
        tables = np.stack(table_rows, axis=0)

        if query.predicates:
            pred_rows = []
            for prefix, key, pred in zip(
                template.predicate_prefixes, template.predicate_keys, query.predicates
            ):
                memo_key = (key, pred.op, pred.literal)
                row = memo.predicate_rows.get(memo_key)
                if row is None:
                    db_column = (
                        db.table(query.alias_table(pred.alias)).column(pred.column)
                        if db is not None
                        else None
                    )
                    value = self.normalize_literal(db_column, key, pred.literal)
                    row = np.concatenate([prefix, np.array([value])])
                    memo.predicate_rows[memo_key] = row
                pred_rows.append(row)
            predicates = np.stack(pred_rows, axis=0)
        else:
            predicates = np.zeros((1, self.predicate_dim))

        return QueryFeatures(
            tables=tables, joins=template.joins, predicates=predicates
        )

    # ------------------------------------------------------------------
    # serialization (the featurizer travels inside the sketch payload)
    # ------------------------------------------------------------------
    def to_manifest(self) -> dict:
        return {
            "tables": self.tables,
            "joins": self.joins,
            "columns": self.columns,
            "operators": self.operators,
            "sample_size": self.sample_size,
            "column_bounds": {k: list(v) for k, v in self.column_bounds.items()},
            "min_log_label": self.min_log_label,
            "max_log_label": self.max_log_label,
            "use_bitmaps": self.use_bitmaps,
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "Featurizer":
        try:
            return cls(
                tables=list(manifest["tables"]),
                joins=list(manifest["joins"]),
                columns=list(manifest["columns"]),
                operators=list(manifest["operators"]),
                sample_size=int(manifest["sample_size"]),
                column_bounds={
                    k: (float(v[0]), float(v[1]))
                    for k, v in manifest["column_bounds"].items()
                },
                min_log_label=float(manifest["min_log_label"]),
                max_log_label=float(manifest["max_log_label"]),
                use_bitmaps=bool(manifest.get("use_bitmaps", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FeaturizationError(f"malformed featurizer manifest: {exc}") from exc

"""The four-step sketch creation pipeline (paper Figure 1a).

1. **Define** — select a subset of tables, the number of materialized
   samples, training queries, and epochs.
2. **Generate training queries** — uniformly choose tables, columns,
   and predicate types; draw literals from the database.
3. **Execute training queries** — against the database to obtain true
   cardinalities, and against the materialized samples to obtain
   qualifying bitmaps.  (The demo parallelizes this across HyPer
   instances; here label execution is chunked so progress events fire
   at the same granularity.)
4. **Train** — featurize static query features and bitmaps, train the
   MSCN for the specified number of epochs.

Queries with a true cardinality of zero are discarded before training,
following the reference implementation (their log-label is undefined).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import SketchError
from ..rng import SeedLike, make_rng, spawn
from ..db.database import Database
from ..db.executor import execute_count
from ..sampling.bitmaps import query_bitmaps
from ..sampling.sampler import materialize_samples
from ..workload.generator import TrainingQueryGenerator, WorkloadSpec
from ..workload.query import Query
from .batches import TrainingSet
from .featurization import Featurizer
from .mscn import MSCN
from .sketch import DeepSketch
from .training import Trainer, TrainingConfig, TrainingResult

#: Pipeline stages, in order, as named in Figure 1a.
STAGES = ("define", "generate", "execute", "train")


@dataclass(frozen=True)
class SketchConfig:
    """Everything step 1 lets the user choose (plus model knobs)."""

    sample_size: int = 1000
    n_training_queries: int = 10_000
    epochs: int = 25
    hidden_units: int = 64
    batch_size: int = 256
    learning_rate: float = 1e-3
    loss: str = "qerror"
    #: Chunk size for label execution; models the demo's parallel HyPer
    #: instances (one progress event per chunk).
    label_chunk_size: int = 500
    #: Ablation switch: train without the qualifying-sample bitmaps
    #: (static query features only).
    use_sample_bitmaps: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.sample_size <= 0:
            raise SketchError(f"sample_size must be positive, got {self.sample_size}")
        if self.n_training_queries < 10:
            raise SketchError(
                f"need at least 10 training queries, got {self.n_training_queries}"
            )


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick: stage name, work done, work total."""

    stage: str
    current: int
    total: int
    message: str = ""

    @property
    def fraction(self) -> float:
        return self.current / self.total if self.total else 1.0


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class BuildReport:
    """What happened during a build, stage by stage."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    n_queries_generated: int = 0
    n_zero_cardinality_dropped: int = 0
    max_training_cardinality: float = 0.0
    training: TrainingResult | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


class SketchBuilder:
    """Runs the Figure 1a pipeline and hands back a queryable sketch."""

    def __init__(
        self,
        db: Database,
        spec: WorkloadSpec,
        config: SketchConfig | None = None,
        progress: ProgressCallback | None = None,
    ):
        self.db = db
        self.spec = spec
        self.config = config or SketchConfig()
        self._progress = progress or (lambda event: None)

    def _emit(self, stage: str, current: int, total: int, message: str = "") -> None:
        self._progress(ProgressEvent(stage, current, total, message))

    # ------------------------------------------------------------------
    # pipeline steps
    # ------------------------------------------------------------------
    def _execute_labels(
        self, queries: list[Query]
    ) -> tuple[list[Query], np.ndarray]:
        """True cardinalities for each query, dropping empty results."""
        kept: list[Query] = []
        labels: list[int] = []
        chunk = max(self.config.label_chunk_size, 1)
        for start in range(0, len(queries), chunk):
            for query in queries[start : start + chunk]:
                cardinality = execute_count(self.db, query)
                if cardinality > 0:
                    kept.append(query)
                    labels.append(cardinality)
            self._emit(
                "execute",
                min(start + chunk, len(queries)),
                len(queries),
                "executing training queries",
            )
        return kept, np.asarray(labels, dtype=np.float64)

    def build(
        self,
        name: str,
        seed: SeedLike = None,
        training_queries: list[Query] | None = None,
    ) -> tuple[DeepSketch, BuildReport]:
        """Run all four stages and return the sketch plus a report.

        ``training_queries`` replaces the uniform generator of step 2
        with a user-supplied workload — the paper's "instead of
        generating queries ... one could also use past user queries".
        Each query must stay within the sketch's table subset.
        """
        rng = make_rng(self.config.seed if seed is None else seed)
        sample_rng, query_rng, model_rng, train_rng = spawn(rng, 4)
        report = BuildReport()

        # 1 -- define: materialize the per-table samples.
        start = time.perf_counter()
        self._emit("define", 0, 1, "materializing samples")
        samples = materialize_samples(
            self.db, self.spec.tables, self.config.sample_size, seed=sample_rng
        )
        self._emit("define", 1, 1)
        report.stage_seconds["define"] = time.perf_counter() - start

        # 2 -- training queries: generated uniformly, or a past workload.
        start = time.perf_counter()
        if training_queries is None:
            generator = TrainingQueryGenerator(self.db, self.spec, seed=query_rng)
            queries = generator.draw_many(self.config.n_training_queries)
        else:
            queries = list(training_queries)
            allowed = set(self.spec.tables)
            for query in queries:
                outside = {t.table for t in query.tables} - allowed
                if outside:
                    raise SketchError(
                        f"workload query uses tables {sorted(outside)} outside "
                        f"the sketch's subset {sorted(allowed)}"
                    )
        report.n_queries_generated = len(queries)
        self._emit("generate", len(queries), len(queries), "collected queries")
        report.stage_seconds["generate"] = time.perf_counter() - start

        # 3 -- execute: labels from the database, bitmaps from samples.
        start = time.perf_counter()
        kept, labels = self._execute_labels(queries)
        report.n_zero_cardinality_dropped = len(queries) - len(kept)
        if len(kept) < 10:
            raise SketchError(
                f"only {len(kept)} of {len(queries)} training queries had "
                "non-zero results; increase n_training_queries or data size"
            )
        report.max_training_cardinality = float(labels.max())
        report.stage_seconds["execute"] = time.perf_counter() - start

        # 4 -- featurize and train.
        start = time.perf_counter()
        featurizer = Featurizer.build(
            self.db,
            self.spec,
            self.config.sample_size,
            use_bitmaps=self.config.use_sample_bitmaps,
        )
        featurizer.fit_labels(labels)
        features = [
            featurizer.featurize_query(q, query_bitmaps(samples, q), db=self.db)
            for q in kept
        ]
        normalized = featurizer.normalize_label(labels)
        dataset = TrainingSet(features, normalized)
        model = MSCN(
            table_dim=featurizer.table_dim,
            join_dim=featurizer.join_dim,
            predicate_dim=featurizer.predicate_dim,
            hidden_units=self.config.hidden_units,
            seed=model_rng,
        )
        trainer = Trainer(
            model,
            featurizer,
            TrainingConfig(
                epochs=self.config.epochs,
                batch_size=self.config.batch_size,
                learning_rate=self.config.learning_rate,
                loss=self.config.loss,
            ),
        )
        total_epochs = self.config.epochs
        report.training = trainer.fit(
            dataset,
            callback=lambda stats: self._emit(
                "train",
                stats.epoch,
                total_epochs,
                f"epoch {stats.epoch}: val mean q-error {stats.val_qerror_mean:.2f}",
            ),
            seed=train_rng,
        )
        report.stage_seconds["train"] = time.perf_counter() - start

        sketch = DeepSketch(
            name=name,
            featurizer=featurizer,
            model=model,
            samples=samples,
            metadata={
                "dataset": self.db.name,
                "n_training_queries": len(kept),
                "epochs": self.config.epochs,
                "hidden_units": self.config.hidden_units,
                "final_val_mean_qerror": report.training.final_val_mean_qerror,
            },
        )
        return sketch, report


def build_sketch(
    db: Database,
    spec: WorkloadSpec,
    name: str = "sketch",
    config: SketchConfig | None = None,
    progress: ProgressCallback | None = None,
    seed: SeedLike = None,
) -> tuple[DeepSketch, BuildReport]:
    """One-call convenience wrapper around :class:`SketchBuilder`."""
    return SketchBuilder(db, spec, config=config, progress=progress).build(name, seed=seed)

"""MSCN training loop (paper Figure 1a, step 4).

"We featurize the training queries and train the MSCN model for the
specified number of epochs."  Training minimizes the mean q-error of
denormalized predictions with Adam; per-epoch training loss and
validation q-error statistics are recorded so the demo's monitoring UI
(here: repro.demo.monitor) can display progress, and so that the
"25 epochs are usually enough" observation can be checked (F1a bench).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import TrainingError
from ..rng import SeedLike, make_rng, spawn
from ..metrics import QErrorSummary, qerrors, summarize_qerrors
from ..nn.loss import MSELoss, QErrorLoss
from ..nn.optim import Adam
from .batches import TrainingSet
from .featurization import Featurizer
from .mscn import MSCN


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters; defaults follow the reference implementation."""

    epochs: int = 25
    batch_size: int = 256
    learning_rate: float = 1e-3
    loss: str = "qerror"  # or "mse"
    validation_fraction: float = 0.1
    #: Early stopping: stop when the validation mean q-error has not
    #: improved for this many consecutive epochs (None = run all epochs,
    #: matching the demo where the user fixes the epoch count up front).
    patience: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {self.epochs}")
        if self.loss not in ("qerror", "mse"):
            raise TrainingError(f"unknown loss {self.loss!r}")
        if self.patience is not None and self.patience <= 0:
            raise TrainingError(f"patience must be positive, got {self.patience}")


@dataclass
class EpochStats:
    """Bookkeeping for one epoch."""

    epoch: int
    train_loss: float
    val_qerror_mean: float
    val_qerror_median: float
    seconds: float


@dataclass
class TrainingResult:
    """Everything the training run produced, for monitoring and benches."""

    epochs: list[EpochStats] = field(default_factory=list)
    validation_summary: QErrorSummary | None = None
    total_seconds: float = 0.0
    #: True when early stopping ended the run before the epoch budget.
    stopped_early: bool = False

    @property
    def final_val_mean_qerror(self) -> float:
        if not self.epochs:
            raise TrainingError("no epochs recorded")
        return self.epochs[-1].val_qerror_mean

    def loss_curve(self) -> np.ndarray:
        return np.array([e.train_loss for e in self.epochs])

    def val_curve(self) -> np.ndarray:
        return np.array([e.val_qerror_mean for e in self.epochs])


#: Callback signature: called after every epoch with the fresh stats.
EpochCallback = Callable[[EpochStats], None]


def validation_qerrors(
    model: MSCN, featurizer: Featurizer, dataset: TrainingSet, batch_size: int = 512
) -> np.ndarray:
    """Q-errors of the model on a (featurized) dataset.

    Uses the autograd forward (the training-path oracle) but vectorized
    label denormalization — the per-element Python loop was a measurable
    slice of every epoch on large validation sets.
    """
    model.eval()
    errors: list[np.ndarray] = []
    for batch, labels in dataset.minibatches(batch_size, shuffle=False):
        preds = model(batch).numpy()
        est = featurizer.denormalize_label(preds)
        true = featurizer.denormalize_label(labels)
        errors.append(np.maximum(est / true, true / est))
    model.train()
    return np.concatenate(errors) if errors else np.empty(0)


class Trainer:
    """Runs the MSCN optimization loop."""

    def __init__(self, model: MSCN, featurizer: Featurizer, config: TrainingConfig | None = None):
        self.model = model
        self.featurizer = featurizer
        self.config = config or TrainingConfig()
        if self.config.loss == "qerror":
            self.loss_fn = QErrorLoss(log_max_card=featurizer.log_label_span)
        else:
            self.loss_fn = MSELoss()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

    def fit(
        self,
        dataset: TrainingSet,
        callback: EpochCallback | None = None,
        seed: SeedLike = None,
    ) -> TrainingResult:
        """Train for the configured number of epochs.

        The dataset is split once into train/validation; validation
        q-error statistics are computed after every epoch (the quantity
        the paper watches to declare "25 epochs are usually enough").
        """
        if len(dataset) < 10:
            raise TrainingError(
                f"training set of {len(dataset)} queries is too small"
            )
        rng = make_rng(self.config.seed if seed is None else seed)
        train_set, val_set = dataset.split(self.config.validation_fraction, seed=rng)
        result = TrainingResult()
        start_all = time.perf_counter()
        best_val = float("inf")
        stale_epochs = 0
        for epoch in range(1, self.config.epochs + 1):
            start = time.perf_counter()
            losses = []
            for batch, labels in train_set.minibatches(
                self.config.batch_size, shuffle=True, seed=rng
            ):
                self.optimizer.zero_grad()
                preds = self.model(batch)
                loss = self.loss_fn(preds, labels)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            val_errors = validation_qerrors(self.model, self.featurizer, val_set)
            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)),
                val_qerror_mean=float(val_errors.mean()),
                val_qerror_median=float(np.median(val_errors)),
                seconds=time.perf_counter() - start,
            )
            result.epochs.append(stats)
            if callback is not None:
                callback(stats)
            if self.config.patience is not None:
                if stats.val_qerror_mean < best_val - 1e-9:
                    best_val = stats.val_qerror_mean
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        result.stopped_early = True
                        break
        result.total_seconds = time.perf_counter() - start_all
        result.validation_summary = summarize_qerrors(
            validation_qerrors(self.model, self.featurizer, val_set)
        )
        return result


# ----------------------------------------------------------------------
# template-level generalization evaluation
# ----------------------------------------------------------------------
#
# The paper's headline claim is that the learned estimator generalizes
# to queries it was not trained on.  A uniform query-level split only
# tests held-out *literals*; the DSB-style methodology splits by
# *template* (see repro.workload.splits), so the test side contains
# query shapes the model never saw.  These helpers evaluate a trained
# sketch per template and run the full experiment: train on the
# training templates' instances, report q-error tails for held-out
# literals (in-template) vs held-out templates (cross-template).


@dataclass
class TemplateEvalResult:
    """Per-template q-error summaries of one sketch on one suite."""

    per_template: dict[str, QErrorSummary]
    overall: QErrorSummary

    def tails(self) -> dict[str, dict[str, float]]:
        """name -> {p50, p95, p99, max, count} (JSON/bench-friendly)."""
        block = {}
        for name, summary in self.per_template.items():
            block[name] = {
                "p50": summary.median,
                "p95": summary.p95,
                "p99": summary.p99,
                "max": summary.max,
                "count": summary.count,
            }
        return block


def evaluate_on_suite(sketch, suite) -> TemplateEvalResult:
    """Per-template q-errors of ``sketch`` on a labeled suite.

    Estimation runs through :meth:`~repro.core.sketch.DeepSketch.
    estimate_many` (one batched pass over the whole suite); errors are
    summarized per template *and* overall — tails are reported per
    template so a bad held-out template cannot be averaged away.
    """
    if not getattr(suite, "labeled", False):
        raise TrainingError("suite must be labeled to evaluate against")
    queries, cards = suite.labeled_pairs()
    estimates = sketch.estimate_many(queries)
    errors = qerrors(estimates, cards)
    per_template: dict[str, QErrorSummary] = {}
    offset = 0
    for entry in suite.templates:
        chunk = errors[offset : offset + len(entry)]
        offset += len(entry)
        per_template[entry.name] = summarize_qerrors(chunk)
    return TemplateEvalResult(
        per_template=per_template, overall=summarize_qerrors(errors)
    )


@dataclass
class GeneralizationReport:
    """The in-template vs cross-template experiment, in one block."""

    train_templates: list[str]
    test_templates: list[str]
    n_train_queries: int
    in_template: TemplateEvalResult
    cross_template: TemplateEvalResult
    sketch: object
    build_report: object

    @property
    def cross_template_p99(self) -> float:
        """Worst per-template p99 on the held-out templates (never averaged)."""
        return max(s.p99 for s in self.cross_template.per_template.values())

    def to_json(self) -> dict:
        return {
            "train_templates": self.train_templates,
            "test_templates": self.test_templates,
            "n_train_queries": self.n_train_queries,
            "in_template": {
                "per_template": self.in_template.tails(),
                "overall": self.in_template.overall.as_dict(),
            },
            "cross_template": {
                "per_template": self.cross_template.tails(),
                "overall": self.cross_template.overall.as_dict(),
                "p99": self.cross_template_p99,
            },
        }


def run_generalization_experiment(
    db,
    spec,
    suite,
    sketch_config=None,
    test_fraction: float = 0.25,
    holdout_fraction: float = 0.2,
    seed: SeedLike = None,
    name: str = "generalization",
) -> GeneralizationReport:
    """Train on training templates, evaluate in- vs cross-template.

    1. ``split_by_template`` holds out whole templates (cross-template
       test side).
    2. ``split_within_template`` further holds literals out of the
       training templates (in-template test side).
    3. A sketch is built on the remaining training instances
       (``SketchBuilder.build(training_queries=...)`` — the paper's
       "one could also use past user queries" hook).
    4. Both held-out sides are evaluated per template.

    ``suite`` is labeled here if it is not already.
    """
    from ..workload.splits import split_by_template, split_within_template
    from .builder import SketchBuilder

    rng = make_rng(seed)
    outer_rng, inner_rng, build_rng = spawn(rng, 3)
    if not suite.labeled:
        suite = suite.label(db)
    outer = split_by_template(suite, test_fraction, seed=outer_rng)
    inner = split_within_template(outer.train, holdout_fraction, seed=inner_rng)

    builder = SketchBuilder(db, spec, config=sketch_config)
    sketch, build_report = builder.build(
        name, seed=build_rng, training_queries=inner.train.queries()
    )
    return GeneralizationReport(
        train_templates=outer.train_names,
        test_templates=outer.test_names,
        n_train_queries=inner.train.n_queries,
        in_template=evaluate_on_suite(sketch, inner.test),
        cross_template=evaluate_on_suite(sketch, outer.test),
        sketch=sketch,
        build_report=build_report,
    )

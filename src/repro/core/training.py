"""MSCN training loop (paper Figure 1a, step 4).

"We featurize the training queries and train the MSCN model for the
specified number of epochs."  Training minimizes the mean q-error of
denormalized predictions with Adam; per-epoch training loss and
validation q-error statistics are recorded so the demo's monitoring UI
(here: repro.demo.monitor) can display progress, and so that the
"25 epochs are usually enough" observation can be checked (F1a bench).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import TrainingError
from ..rng import SeedLike, make_rng
from ..metrics import QErrorSummary, summarize_qerrors
from ..nn.loss import MSELoss, QErrorLoss
from ..nn.optim import Adam
from .batches import TrainingSet
from .featurization import Featurizer
from .mscn import MSCN


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters; defaults follow the reference implementation."""

    epochs: int = 25
    batch_size: int = 256
    learning_rate: float = 1e-3
    loss: str = "qerror"  # or "mse"
    validation_fraction: float = 0.1
    #: Early stopping: stop when the validation mean q-error has not
    #: improved for this many consecutive epochs (None = run all epochs,
    #: matching the demo where the user fixes the epoch count up front).
    patience: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {self.epochs}")
        if self.loss not in ("qerror", "mse"):
            raise TrainingError(f"unknown loss {self.loss!r}")
        if self.patience is not None and self.patience <= 0:
            raise TrainingError(f"patience must be positive, got {self.patience}")


@dataclass
class EpochStats:
    """Bookkeeping for one epoch."""

    epoch: int
    train_loss: float
    val_qerror_mean: float
    val_qerror_median: float
    seconds: float


@dataclass
class TrainingResult:
    """Everything the training run produced, for monitoring and benches."""

    epochs: list[EpochStats] = field(default_factory=list)
    validation_summary: QErrorSummary | None = None
    total_seconds: float = 0.0
    #: True when early stopping ended the run before the epoch budget.
    stopped_early: bool = False

    @property
    def final_val_mean_qerror(self) -> float:
        if not self.epochs:
            raise TrainingError("no epochs recorded")
        return self.epochs[-1].val_qerror_mean

    def loss_curve(self) -> np.ndarray:
        return np.array([e.train_loss for e in self.epochs])

    def val_curve(self) -> np.ndarray:
        return np.array([e.val_qerror_mean for e in self.epochs])


#: Callback signature: called after every epoch with the fresh stats.
EpochCallback = Callable[[EpochStats], None]


def validation_qerrors(
    model: MSCN, featurizer: Featurizer, dataset: TrainingSet, batch_size: int = 512
) -> np.ndarray:
    """Q-errors of the model on a (featurized) dataset.

    Uses the autograd forward (the training-path oracle) but vectorized
    label denormalization — the per-element Python loop was a measurable
    slice of every epoch on large validation sets.
    """
    model.eval()
    errors: list[np.ndarray] = []
    for batch, labels in dataset.minibatches(batch_size, shuffle=False):
        preds = model(batch).numpy()
        est = featurizer.denormalize_label(preds)
        true = featurizer.denormalize_label(labels)
        errors.append(np.maximum(est / true, true / est))
    model.train()
    return np.concatenate(errors) if errors else np.empty(0)


class Trainer:
    """Runs the MSCN optimization loop."""

    def __init__(self, model: MSCN, featurizer: Featurizer, config: TrainingConfig | None = None):
        self.model = model
        self.featurizer = featurizer
        self.config = config or TrainingConfig()
        if self.config.loss == "qerror":
            self.loss_fn = QErrorLoss(log_max_card=featurizer.log_label_span)
        else:
            self.loss_fn = MSELoss()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

    def fit(
        self,
        dataset: TrainingSet,
        callback: EpochCallback | None = None,
        seed: SeedLike = None,
    ) -> TrainingResult:
        """Train for the configured number of epochs.

        The dataset is split once into train/validation; validation
        q-error statistics are computed after every epoch (the quantity
        the paper watches to declare "25 epochs are usually enough").
        """
        if len(dataset) < 10:
            raise TrainingError(
                f"training set of {len(dataset)} queries is too small"
            )
        rng = make_rng(self.config.seed if seed is None else seed)
        train_set, val_set = dataset.split(self.config.validation_fraction, seed=rng)
        result = TrainingResult()
        start_all = time.perf_counter()
        best_val = float("inf")
        stale_epochs = 0
        for epoch in range(1, self.config.epochs + 1):
            start = time.perf_counter()
            losses = []
            for batch, labels in train_set.minibatches(
                self.config.batch_size, shuffle=True, seed=rng
            ):
                self.optimizer.zero_grad()
                preds = self.model(batch)
                loss = self.loss_fn(preds, labels)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            val_errors = validation_qerrors(self.model, self.featurizer, val_set)
            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)),
                val_qerror_mean=float(val_errors.mean()),
                val_qerror_median=float(np.median(val_errors)),
                seconds=time.perf_counter() - start,
            )
            result.epochs.append(stats)
            if callback is not None:
                callback(stats)
            if self.config.patience is not None:
                if stats.val_qerror_mean < best_val - 1e-9:
                    best_val = stats.val_qerror_mean
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        result.stopped_early = True
                        break
        result.total_seconds = time.perf_counter() - start_all
        result.validation_summary = summarize_qerrors(
            validation_qerrors(self.model, self.featurizer, val_set)
        )
        return result

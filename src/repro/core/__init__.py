"""The paper's contribution: MSCN featurization, model, training, sketches."""

from .batches import Batch, TrainingSet, collate
from .builder import (
    BuildReport,
    ProgressEvent,
    STAGES,
    SketchBuilder,
    SketchConfig,
    build_sketch,
)
from .estimator import CardinalityEstimator, estimate_sql
from .maintenance import (
    DriftReport,
    RefreshResult,
    detect_drift,
    refresh_sketch,
    try_refresh_sketch,
)
from .featurization import Featurizer, QueryFeatures
from .mscn import MSCN
from .sketch import DeepSketch
from .training import (
    EpochStats,
    GeneralizationReport,
    TemplateEvalResult,
    Trainer,
    TrainingConfig,
    TrainingResult,
    evaluate_on_suite,
    run_generalization_experiment,
    validation_qerrors,
)

__all__ = [
    "Featurizer",
    "QueryFeatures",
    "Batch",
    "TrainingSet",
    "collate",
    "MSCN",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "EpochStats",
    "validation_qerrors",
    "DeepSketch",
    "SketchBuilder",
    "SketchConfig",
    "BuildReport",
    "ProgressEvent",
    "STAGES",
    "build_sketch",
    "CardinalityEstimator",
    "estimate_sql",
    "DriftReport",
    "RefreshResult",
    "detect_drift",
    "refresh_sketch",
    "try_refresh_sketch",
    "TemplateEvalResult",
    "GeneralizationReport",
    "evaluate_on_suite",
    "run_generalization_experiment",
]

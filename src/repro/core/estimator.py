"""The estimator interface shared by the sketch and all baselines.

"The interface of a sketch is very simple, it consumes a SQL query and
returns a cardinality estimate." (paper Figure 1b).  Every estimator in
this repository — the Deep Sketch, the HyPer-style and PostgreSQL-style
baselines, pure sampling, and the truth oracle — implements this
protocol, so the benchmark harnesses treat them uniformly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..workload.query import Query


@runtime_checkable
class CardinalityEstimator(Protocol):
    """Anything that maps a query to an estimated result size."""

    #: Display name used in result tables (e.g. "Deep Sketch").
    name: str

    def estimate(self, query: Query) -> float:
        """Estimated COUNT(*) of ``query`` (always >= 1)."""
        ...


def estimate_sql(estimator: CardinalityEstimator, sql: str) -> float:
    """Convenience: parse a SQL string and estimate it."""
    from ..db.sql import parse_sql

    return estimator.estimate(parse_sql(sql))
